//! Record/replay round-trip properties (ISSUE 10, satellite 4) and the
//! recording-path failure-mode pins (satellites 1 and 3).
//!
//! The tentpole's core claim is a determinism property: a recorded run
//! replayed through the same program produces a **bit-identical schedule**
//! — same grant stream, same schedule hash, same retired-order hash, same
//! user-visible outputs — both fault-free and under injected faults. The
//! failure half of the contract is equally load-bearing: truncated or
//! corrupted recordings, divergent replays, and cross-mode replays must
//! all fail *loudly* with named errors, never unwind a worker or silently
//! drift.

use gprs_chaos::programs::register_gprs;
use gprs_core::chaos::{ChaosEvent, ChaosPlan, VictimSelector};
use gprs_core::exception::{ExceptionKind, InjectorConfig};
use gprs_core::persist::unique_temp_dir;
use gprs_core::recording::{DriveMode, RecordedOutcome, Recording, RecordingError};
use gprs_runtime::prelude::*;
use gprs_runtime::report::RunReport;
use gprs_sim::costs::CYCLES_PER_SEC;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::{build, TraceParams};
use std::sync::Arc;

fn record_pooled(program: &str, plan: Option<&ChaosPlan>, path: &std::path::Path) -> RunReport {
    let mut b = GprsBuilder::new().workers(4);
    register_gprs(program, &mut b);
    if let Some(p) = plan {
        b = b.chaos(p);
    }
    b.record(path).record_meta(program, 0).build().run().expect("recorded run completes")
}

fn replay_pooled(program: &str, rec: Arc<Recording>) -> Result<RunReport, RunError> {
    let mut b = GprsBuilder::new().workers(4);
    register_gprs(program, &mut b);
    let plan = rec
        .header
        .chaos
        .as_deref()
        .map(|t| ChaosPlan::parse(t).expect("header chaos text parses"));
    if let Some(p) = &plan {
        b = b.chaos(p);
    }
    b.replay(rec).build().run()
}

/// Clean round trip on every pooled campaign program: the recording's
/// footer digests match the recorded run's report, the replay completes,
/// and schedule hash, retired hash and all thread outputs are bit-equal.
#[test]
fn record_replay_round_trip_is_bit_identical_clean() {
    let dir = unique_temp_dir("replay-clean");
    for program in ["chain", "nested", "histogram"] {
        let path = dir.join(format!("{program}.gprs"));
        let recorded = record_pooled(program, None, &path);
        let rec = Arc::new(Recording::load(&path).expect("recording loads"));
        assert_eq!(rec.header.mode, DriveMode::Pool);
        assert_eq!(rec.header.workload, program);
        assert_eq!(rec.outcome, RecordedOutcome::Complete);
        assert_eq!(rec.sched_hash, recorded.telemetry.schedule_hash, "{program}");
        assert_eq!(rec.retired_hash, recorded.telemetry.retired_hash, "{program}");
        assert!(!rec.events.is_empty(), "{program} recorded no events");

        let replayed = replay_pooled(program, rec.clone()).expect("replay completes");
        assert_eq!(replayed.telemetry.schedule_hash, recorded.telemetry.schedule_hash);
        assert_eq!(replayed.telemetry.retired_hash, recorded.telemetry.retired_hash);
        assert_eq!(replayed.outputs.len(), recorded.outputs.len());
        for tid in recorded.outputs.keys() {
            assert_eq!(
                replayed.output::<u64>(*tid),
                recorded.output::<u64>(*tid),
                "thread {tid} output diverged replaying {program}"
            );
        }
    }
}

/// Same property under injected faults. The chaos overlay travels in the
/// recording header and is re-armed from there (exactly what the CLI
/// does), so this also pins the header round trip. Victim selection is
/// `Holder` — a deterministic function of the grant stream — so the
/// recorded and replayed runs squash identical sub-threads.
#[test]
fn record_replay_round_trip_is_bit_identical_under_faults() {
    let dir = unique_temp_dir("replay-faults");
    let plan = ChaosPlan::new()
        .with(
            ChaosEvent::at_grant(7)
                .kind(ExceptionKind::SoftFault)
                .victim(VictimSelector::Holder),
        )
        .with(
            ChaosEvent::at_grant(15)
                .kind(ExceptionKind::ThermalEmergency)
                .victim(VictimSelector::Holder),
        );
    for program in ["chain", "histogram"] {
        let path = dir.join(format!("{program}.gprs"));
        let recorded = record_pooled(program, Some(&plan), &path);
        assert!(recorded.stats.exceptions > 0, "plan must actually fire");
        let rec = Arc::new(Recording::load(&path).expect("recording loads"));
        assert_eq!(
            rec.header.chaos.as_deref(),
            Some(plan.to_text().as_str()),
            "chaos overlay must travel in the header"
        );
        let replayed = replay_pooled(program, rec.clone()).expect("replay completes");
        assert_eq!(replayed.telemetry.schedule_hash, recorded.telemetry.schedule_hash);
        assert_eq!(replayed.telemetry.retired_hash, recorded.telemetry.retired_hash);
        for tid in recorded.outputs.keys() {
            assert_eq!(
                replayed.output::<u64>(*tid),
                recorded.output::<u64>(*tid),
                "thread {tid} output diverged replaying {program} under faults"
            );
        }
    }
}

/// Session-mode round trip plus the cross-mode rejection regression
/// (satellite 3): a session recording replays bit-identically through a
/// session, and replaying it through the worker pool fails loudly with a
/// named mode mismatch — before the first grant, not as silent drift.
#[test]
fn session_recordings_replay_in_session_mode_only() {
    let dir = unique_temp_dir("replay-mode");
    let path = dir.join("session.gprs");
    let mut b = GprsBuilder::new().workers(4);
    register_gprs("chain", &mut b);
    let mut session = b.record(&path).record_meta("chain", 0).build().into_session();
    while session.run_quantum(8) == QuantumOutcome::Yielded {}
    let recorded = session.finish().expect("session run completes");
    let rec = Arc::new(Recording::load(&path).expect("recording loads"));
    assert_eq!(rec.header.mode, DriveMode::Session);

    // Replaying through a session reproduces the run bit-for-bit.
    let mut b = GprsBuilder::new().workers(4);
    register_gprs("chain", &mut b);
    let mut session = b.replay(rec.clone()).build().into_session();
    while session.run_quantum(8) == QuantumOutcome::Yielded {}
    let replayed = session.finish().expect("session replay completes");
    assert_eq!(replayed.telemetry.schedule_hash, recorded.telemetry.schedule_hash);
    assert_eq!(replayed.telemetry.retired_hash, recorded.telemetry.retired_hash);

    // Replaying through the pool is refused by name.
    let err = replay_pooled("chain", rec).expect_err("cross-mode replay must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("replay mode mismatch") && msg.contains("session"),
        "unexpected cross-mode error: {msg}"
    );
}

/// Satellite 1 pin: truncated and corrupted recording files surface named
/// `RecordingError` variants at load time, and a tape that lies about the
/// schedule poisons the replay with a named divergence instead of
/// panicking a worker.
#[test]
fn damaged_recordings_fail_loudly_not_silently() {
    let dir = unique_temp_dir("replay-damage");
    let path = dir.join("victim.gprs");
    record_pooled("chain", None, &path);
    let text = std::fs::read_to_string(&path).expect("recording exists");

    // Truncation: cut the footer off. The loader names the event count it
    // managed to read rather than pretending the run ended cleanly.
    let cut = text.lines().filter(|l| !l.is_empty()).count() - 1;
    let truncated: String = text
        .lines()
        .take(cut)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, &truncated).unwrap();
    match Recording::load(&path) {
        Err(RecordingError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }

    // Corruption: flip a byte mid-line. The per-line checksum catches it.
    let mut corrupt = text.clone().into_bytes();
    let mid = corrupt.len() / 2;
    corrupt[mid] = corrupt[mid].wrapping_add(1);
    std::fs::write(&path, &corrupt).unwrap();
    assert!(
        matches!(Recording::load(&path), Err(RecordingError::Corrupt { .. })),
        "flipped byte must surface as Corrupt"
    );

    // A tampered tape (valid file, wrong schedule): swap one event's
    // thread. The replay poisons with a named divergence at that index.
    std::fs::write(&path, &text).unwrap();
    let mut rec = Recording::load(&path).expect("restored recording loads");
    let target = rec.events.len() / 2;
    rec.events[target].thread = rec.events[target].thread.wrapping_add(17);
    let err =
        replay_pooled("chain", Arc::new(rec)).expect_err("divergent tape must poison");
    let msg = err.to_string();
    assert!(
        msg.contains("replay divergence"),
        "divergence must be named, got: {msg}"
    );

    // A tape cut short in memory (events dropped, footer intact) poisons
    // past-the-end instead of letting the live run outrun the recording.
    let mut short = Recording::load(&path).expect("recording loads");
    short.events.truncate(short.events.len() / 2);
    let err = replay_pooled("chain", Arc::new(short))
        .expect_err("short tape must poison");
    assert!(
        err.to_string().contains("replay"),
        "short-tape failure must be replay-attributed: {err}"
    );

    // Recording and replaying in one run is refused by name.
    let mut b = GprsBuilder::new().workers(4);
    register_gprs("chain", &mut b);
    let rec = Arc::new(Recording::load(&path).expect("recording loads"));
    let err = b
        .record(dir.join("other.gprs"))
        .replay(rec)
        .build()
        .run()
        .expect_err("record+replay must be rejected");
    assert!(err.to_string().contains("cannot record and replay"));
}

/// Simulator round trip, clean: record through `with_record`, replay
/// through `with_replay`, and the grant stream — schedule hash and
/// retired-order hash — is bit-identical. `pbzip2` exercises channels
/// (the recorded run has wasted polls, which the tape elides — replay
/// reproduces the *order*, not the poll timing); `histogram` is
/// poll-free, so there the entire result is reproduced field-for-field.
#[test]
fn sim_record_replay_round_trip_is_bit_identical() {
    let dir = unique_temp_dir("replay-sim");
    let p = TraceParams::paper().scaled(0.01);
    for name in ["pbzip2", "histogram"] {
        let w = build(name, &p);
        let path = dir.join(format!("{name}.gprs"));
        let recorded = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_record(&path, 42));
        assert!(recorded.completed, "{name} recorded run must complete");
        let rec = Arc::new(Recording::load(&path).expect("recording loads"));
        assert_eq!(rec.header.mode, DriveMode::Sim);
        assert_eq!(rec.header.workload, name);
        assert_eq!(rec.header.seed, 42);
        assert_eq!(rec.outcome, RecordedOutcome::Complete);
        assert_eq!(rec.sched_hash, recorded.telemetry.schedule_hash, "{name}");
        assert_eq!(rec.retired_hash, recorded.telemetry.retired_hash, "{name}");

        let replayed = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_replay(rec));
        assert_eq!(replayed.replay_divergence, None, "{name}");
        assert!(replayed.completed, "{name} replay must complete");
        assert_eq!(replayed.telemetry.schedule_hash, recorded.telemetry.schedule_hash);
        assert_eq!(replayed.telemetry.retired_hash, recorded.telemetry.retired_hash);
        if recorded.polls == 0 {
            assert_eq!(replayed, recorded, "{name}: poll-free replay must be exact");
        }
    }
}

/// Simulator round trip under Poisson-injected exceptions. Injection is a
/// function of *virtual time*, which the tape only preserves on poll-free
/// schedules (wasted polls are elided), so this uses `histogram` — no
/// channels, `polls == 0` — where the replayed clock, hence every
/// injection, recovery and squash, lands cycle-for-cycle where it was
/// recorded. The replay side re-arms the same injector, exactly as a
/// harness replaying a faulted sim experiment must.
#[test]
fn sim_record_replay_round_trip_under_injected_faults() {
    let dir = unique_temp_dir("replay-sim-faults");
    let p = TraceParams::paper().scaled(0.01);
    let w = build("histogram", &p);
    let clean = run_gprs(&w, &GprsSimConfig::balance_aware(8));
    assert!(clean.completed);
    // The scaled-down trace finishes in a few million virtual cycles, so
    // the paper's 6/sec rate would never fire — crank it until it does.
    let inj = InjectorConfig::paper(1_500.0, 8, CYCLES_PER_SEC).with_seed(17);
    let cap = clean.finish_cycles.saturating_mul(200);
    let path = dir.join("histogram-faults.gprs");

    let recorded = run_gprs(
        &w,
        &GprsSimConfig::balance_aware(8)
            .with_exceptions(inj.clone())
            .with_time_cap(cap)
            .with_record(&path, 17),
    );
    assert!(recorded.completed, "{recorded}");
    assert!(recorded.exceptions > 0, "injector must actually fire");
    assert_eq!(recorded.polls, 0, "histogram must stay poll-free");
    let rec = Arc::new(Recording::load(&path).expect("recording loads"));
    assert_eq!(rec.outcome, RecordedOutcome::Complete);

    let replayed = run_gprs(
        &w,
        &GprsSimConfig::balance_aware(8)
            .with_exceptions(inj)
            .with_time_cap(cap)
            .with_replay(rec),
    );
    assert_eq!(replayed.replay_divergence, None);
    assert_eq!(replayed, recorded, "faulted replay must be exact");
}

/// Sim-side failure pins: a tampered tape diverges loudly (named message,
/// `completed == false`), a sim recording refuses to replay under the
/// runtime (and vice versa), and record+replay in one config is rejected.
#[test]
fn sim_replay_failures_are_named() {
    let dir = unique_temp_dir("replay-sim-damage");
    let p = TraceParams::paper().scaled(0.01);
    let w = build("histogram", &p);
    let path = dir.join("histogram.gprs");
    run_gprs(&w, &GprsSimConfig::balance_aware(8).with_record(&path, 1));
    let pristine = Recording::load(&path).expect("recording loads");

    // Tampered grant: the replay aborts at that index with a named
    // divergence and degrades to DNC.
    let mut bad = pristine.clone();
    let target = bad.events.len() / 2;
    bad.events[target].thread = bad.events[target].thread.wrapping_add(13);
    let r = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_replay(Arc::new(bad)));
    assert!(!r.completed);
    let msg = r.replay_divergence.expect("divergence must be named");
    assert!(msg.contains("replay divergence"), "unexpected: {msg}");

    // Cross-mode: a sim recording is refused by the pooled runtime...
    let err = replay_pooled("chain", Arc::new(pristine.clone()))
        .expect_err("sim recording must not drive the pool");
    assert!(err.to_string().contains("replay mode mismatch"));

    // ...and a pool recording is refused by the sim.
    let pool_path = dir.join("pool.gprs");
    record_pooled("chain", None, &pool_path);
    let pool_rec = Arc::new(Recording::load(&pool_path).expect("recording loads"));
    let r = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_replay(pool_rec.clone()));
    assert!(!r.completed);
    let msg = r.replay_divergence.expect("mode mismatch must be named");
    assert!(msg.contains("replay mode mismatch"), "unexpected: {msg}");

    // Record + replay in one config is refused before the first grant.
    let r = run_gprs(
        &w,
        &GprsSimConfig::balance_aware(8)
            .with_record(dir.join("other.gprs"), 0)
            .with_replay(Arc::new(pristine)),
    );
    assert!(!r.completed);
    let msg = r.replay_divergence.expect("combination must be refused by name");
    assert!(msg.contains("cannot record and replay"), "unexpected: {msg}");
}

/// The serving layer's post-mortem artifact (tentpole wiring): a fresh
/// durable job writes `recording.gprs` into its durable directory, and
/// that recording is a complete debugging handle — it names the job's
/// canonical spec, was captured in session mode (so `gprs-replay state`
/// works on it), replays to a Verified outcome with the job's own report
/// digests, and walks to any intermediate precise state.
#[test]
fn durable_serve_jobs_leave_a_replayable_recording() {
    use gprs_replay::{replay_recording, state_at, ReplayOptions, ReplayOutcome};
    use gprs_serve::{JobSpec, PoolConfig, ServePool};

    let root = unique_temp_dir("replay-serve-recording");
    let pool = ServePool::start(PoolConfig {
        workers: 1,
        quantum: 16,
        durable_root: Some(root.clone()),
    });
    // An injected job: the recording must also carry the chaos overlay so
    // the replay re-arms the same faults.
    let spec = JobSpec::new("beacon", 3).faults(7);
    let ticket = pool.handle().submit(spec.clone()).expect("submits");
    let seq = ticket.seq();
    let outcome = ticket.wait();
    let report = outcome.report.as_ref().expect("job completes");
    pool.shutdown();

    let rec_path = root
        .join(format!("job-{seq:08}"))
        .join(gprs_serve::pool::RECORDING_FILE);
    let rec = Recording::load(&rec_path).expect("durable dir holds the recording");
    assert_eq!(rec.header.mode, DriveMode::Session, "pool jobs run as sessions");
    assert_eq!(rec.header.workload, "beacon");
    assert_eq!(
        rec.header.spec.as_deref(),
        Some(spec.canonical_line().as_str()),
        "the recording is self-describing: its spec line rebuilds the job"
    );
    assert!(rec.header.chaos.is_some(), "the fault overlay travels in the header");
    assert_eq!(rec.outcome, RecordedOutcome::Complete);
    assert_eq!(rec.sched_hash, report.telemetry.schedule_hash);
    assert_eq!(rec.retired_hash, report.telemetry.retired_hash);

    // The recording replays standalone — no pool, no durable dir — and
    // reproduces the served run's digests exactly.
    let rec = Arc::new(rec);
    match replay_recording(&rec, &ReplayOptions::default()).expect("spec rebuilds") {
        ReplayOutcome::Verified { events, schedule, retired } => {
            assert_eq!(events, rec.events.len() as u64);
            assert_eq!(schedule, report.telemetry.schedule_hash);
            assert_eq!(retired, report.telemetry.retired_hash);
        }
        other => panic!("expected Verified, got {other:?}"),
    }

    // Time travel: park mid-tape and inspect the quiesced state.
    assert!(rec.events.len() > 8, "need a tape worth walking");
    let mid = state_at(&rec, Some(5), &ReplayOptions::default()).expect("mid state");
    assert!(mid.replayed.expect("replay armed") >= 5);
    assert!(mid.poisoned.is_none());
    let end = state_at(&rec, None, &ReplayOptions::default()).expect("final state");
    assert_eq!(end.schedule_digest, rec.sched_hash);
    assert_eq!(end.retired_digest, rec.retired_hash);

    let _ = std::fs::remove_dir_all(root);
}

/// Resumed durable jobs re-verify their retired prefix against the old
/// epoch's log — re-recording over the original schedule artifact would
/// clobber the post-mortem evidence, so the recording hook stays off on
/// the resume path (`build_job_durable_recorded` with `resume` set).
#[test]
fn resumed_durable_jobs_do_not_clobber_recordings() {
    use gprs_core::persist::{FileBackend, PersistBackend};
    use gprs_serve::spec::build_job_durable_recorded;
    use gprs_serve::JobSpec;

    let dir = unique_temp_dir("replay-serve-resume");
    let spec = JobSpec::new("beacon", 1);
    let rec_path = dir.join(gprs_serve::pool::RECORDING_FILE);

    // Crash a fresh recorded job mid-flight (drop the session).
    {
        let backend = Arc::new(FileBackend::open(&dir).expect("durable dir opens"));
        let mut session =
            build_job_durable_recorded(&spec, 0, 0, backend, None, Some(&rec_path))
                .expect("spec is servable")
                .into_session();
        let mut quanta = 0;
        while session.run_quantum(8) == QuantumOutcome::Yielded && quanta < 3 {
            quanta += 1;
        }
        // Dropped unfinished: no recording was sealed.
    }
    assert!(
        !rec_path.exists(),
        "an unfinished run must not leave a sealed recording"
    );
    // Plant a sentinel where the recording would go; the resume must not
    // overwrite it even though the same path is passed in.
    std::fs::write(&rec_path, "sentinel").expect("sentinel writes");

    let backend = Arc::new(FileBackend::open(&dir).expect("durable dir reopens"));
    let image = backend.load().expect("durable image loads");
    let mut session =
        build_job_durable_recorded(&spec, 0, 0, backend, Some(&image), Some(&rec_path))
            .expect("resume rebuilds")
            .into_session();
    while session.run_quantum(8) == QuantumOutcome::Yielded {}
    session.finish().expect("resumed job completes");

    let text = std::fs::read_to_string(&rec_path).expect("sentinel still there");
    assert_eq!(text, "sentinel", "the resume path must never re-record");
    let _ = std::fs::remove_dir_all(dir);
}

/// A cancelled run's recording must not claim `complete`: its tape is a
/// prefix, and a replay that consumes the whole prefix while live threads
/// remain would read as a divergence. The footer is stamped poisoned with
/// the cancellation note instead, so replaying the tape to its end is
/// classified as a *reproduction* of the recorded stop — the same
/// post-mortem contract as a genuinely failed run.
#[test]
fn cancelled_runs_record_an_honest_footer_and_reproduce() {
    use gprs_replay::{replay_recording, ReplayOptions, ReplayOutcome};

    let dir = unique_temp_dir("replay-cancelled");
    let path = dir.join("cancelled.gprs");
    let mut b = GprsBuilder::new().workers(2);
    register_gprs("pbzip", &mut b);
    let mut session = b
        .record(&path)
        .record_meta("pbzip", 0)
        .build()
        .into_session();
    assert_eq!(session.run_quantum(8), QuantumOutcome::Yielded, "job outlives one quantum");
    session.cancel();
    let report = session.finish().expect("cancelled sessions report their partial run");

    let rec = Recording::load(&path).expect("cancelled run still seals its recording");
    match &rec.outcome {
        RecordedOutcome::Poisoned(note) => {
            assert!(note.contains("cancelled"), "unexpected note: {note}")
        }
        RecordedOutcome::Complete => panic!("a prefix tape must not claim complete"),
    }
    assert_eq!(rec.sched_hash, report.telemetry.schedule_hash);
    assert_eq!(rec.retired_hash, report.telemetry.retired_hash);

    match replay_recording(&Arc::new(rec), &ReplayOptions::default()).expect("rebuilds") {
        ReplayOutcome::Reproduced { original, .. } => {
            assert!(original.contains("cancelled"), "unexpected: {original}")
        }
        other => panic!("expected Reproduced, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(dir);
}
