//! The paper's headline claims, asserted against the simulator at reduced
//! scale — every claim here is a statement from §4 of the paper.

use gprs_bench::{
    cpr_run, gprs_run, harmonic_mean, injector, layered_costs, paper_workload, pthreads_baseline,
    CostLayer, CONTEXTS,
};
use gprs_core::order::ScheduleKind;
use gprs_sim::costs::secs_to_cycles;
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::{info, pbzip2_with, TraceParams, PROGRAMS};

const SCALE: f64 = 0.05;

/// "The round-robin order severely degrades Pbzip2's performance …
/// resulting in an overhead of 1014.4%. When the basic balance-aware
/// schedule was applied … the overhead dropped to 34.14%."
#[test]
fn round_robin_serializes_pbzip2_balance_aware_recovers() {
    let w = paper_workload("pbzip2", SCALE, false);
    let base = pthreads_baseline(&w);
    let cap = base.finish_cycles * 40;
    let rr = gprs_run(&w, ScheduleKind::RoundRobin, CostLayer::OrderingOnly, cap);
    let ba = gprs_run(&w, ScheduleKind::BalanceBasic, CostLayer::OrderingOnly, cap);
    let rr_rel = rr.relative_to(&base).unwrap_or(f64::INFINITY);
    let ba_rel = ba.relative_to(&base).expect("balance-aware completes");
    assert!(rr_rel > 5.0, "round-robin must serialize: {rr_rel:.2}");
    assert!(ba_rel < 2.2, "balance-aware must recover: {ba_rel:.2}");
}

/// The weighted scheme stays in the balance-aware regime (both are an
/// order of magnitude below round-robin's serialization). In the paper,
/// 4:4:1 weights further cut Pbzip2's overhead from 34% to 11%; in this
/// reproduction's trace dynamics the basic schedule already keeps the
/// reader fed, so weighted ≈ basic (recorded in EXPERIMENTS.md).
#[test]
fn weighted_schedule_stays_in_balance_aware_regime() {
    let w = paper_workload("pbzip2", SCALE, false);
    let base = pthreads_baseline(&w);
    let cap = base.finish_cycles * 40;
    let basic = gprs_run(&w, ScheduleKind::BalanceBasic, CostLayer::Full, cap);
    let weighted = gprs_run(&w, ScheduleKind::BalanceWeighted, CostLayer::Full, cap);
    let rr = gprs_run(&w, ScheduleKind::RoundRobin, CostLayer::Full, cap);
    let b = basic.relative_to(&base).unwrap();
    let wgt = weighted.relative_to(&base).unwrap();
    let r = rr.relative_to(&base).unwrap_or(f64::INFINITY);
    assert!(wgt <= b * 1.25, "weighted {wgt:.2} vs basic {b:.2}");
    assert!(wgt * 3.0 < r, "weighted {wgt:.2} far below round-robin {r:.2}");
}

/// "P-CPR's checkpointing penalty was worse than GPRS despite the ordering
/// and ROL overheads of GPRS" — on harmonic mean across the programs.
#[test]
fn cpr_checkpointing_costs_more_than_gprs_overall() {
    let mut cpr_rels = Vec::new();
    let mut gprs_rels = Vec::new();
    for prog in &PROGRAMS {
        let w = paper_workload(prog.name, SCALE, false);
        let base = pthreads_baseline(&w);
        let cap = base.finish_cycles * 40;
        let p = cpr_run(
            &w,
            prog.cpr_interval_secs * SCALE.max(0.02),
            prog.cpr_record_ms,
            prog.cpr_restore_ms,
            cap,
        );
        let g = gprs_run(&w, ScheduleKind::BalanceBasic, CostLayer::Full, cap);
        if let (Some(pr), Some(gr)) = (p.relative_to(&base), g.relative_to(&base)) {
            cpr_rels.push(pr);
            gprs_rels.push(gr);
        }
    }
    let cpr_hm = harmonic_mean(&cpr_rels).unwrap();
    let gprs_hm = harmonic_mean(&gprs_rels).unwrap();
    assert!(
        cpr_hm > gprs_hm,
        "CPR checkpointing HM {cpr_hm:.3} must exceed GPRS HM {gprs_hm:.3}"
    );
}

/// Figure 10's qualitative content: at the paper's high rates GPRS
/// completes where CPR does not. Like the figure harness (and the paper's
/// ten averaged runs), each scheme runs under three seeded exception
/// schedules; CPR "tips" if any schedule fails, GPRS must survive all.
#[test]
fn gprs_survives_high_rates_where_cpr_tips() {
    for name in ["barnes-hut", "dedup", "reverse-index"] {
        let prog = info(name);
        let w = paper_workload(name, 0.2, false);
        let base = pthreads_baseline(&w);
        let cap = base.finish_cycles * 12;
        let mut cpr_tipped = false;
        for seed in [99u64, 7, 1234] {
            let inj = injector(prog.fig10_high_rate, CONTEXTS, seed);
            // Exception rates are per wall-clock second, so the checkpoint
            // interval must stay unscaled too (only the input shrinks).
            let mut ccfg = FreeRunConfig::cpr(
                CONTEXTS,
                secs_to_cycles(prog.cpr_interval_secs),
            )
            .with_exceptions(inj.clone())
            .with_time_cap(cap);
            ccfg.costs.cpr_record = secs_to_cycles(prog.cpr_record_ms / 1e3);
            ccfg.costs.cpr_restore = secs_to_cycles(prog.cpr_restore_ms / 1e3);
            let cpr = run_free(&w, &ccfg);
            cpr_tipped |= !cpr.completed;
            let mut gcfg = GprsSimConfig::balance_aware(CONTEXTS)
                .with_exceptions(inj)
                .with_time_cap(cap);
            gcfg.costs = layered_costs(CostLayer::Full);
            let gprs = run_gprs(&w, &gcfg);
            assert!(gprs.completed, "{name}: GPRS must survive seed {seed}");
        }
        assert!(
            cpr_tipped,
            "{name}: CPR should tip at {}/s in at least one schedule",
            prog.fig10_high_rate
        );
    }
}

/// Figure 11(c): CPR tipping is flat in the context count; GPRS tipping
/// scales with it.
#[test]
fn tipping_scales_with_contexts_for_gprs_only() {
    use gprs_sim::tipping::{find_tipping_rate, TippingScheme};
    let tip = |n: u32, gprs: bool| {
        let p = TraceParams::paper().scaled(0.05).with_contexts(n);
        let w = pbzip2_with(&p, n.saturating_sub(2).max(1) as usize);
        if gprs {
            let free = run_gprs(&w, &GprsSimConfig::balance_aware(n));
            find_tipping_rate(
                &w,
                &TippingScheme::Gprs(
                    GprsSimConfig::balance_aware(n)
                        .with_time_cap(free.finish_cycles * 20),
                ),
                0.5,
                0.2,
                3,
            )
            .estimate()
        } else {
            let free = run_free(&w, &FreeRunConfig::cpr(n, secs_to_cycles(1.0)));
            find_tipping_rate(
                &w,
                &TippingScheme::Cpr(
                    FreeRunConfig::cpr(n, secs_to_cycles(1.0))
                        .with_time_cap(free.finish_cycles * 20),
                ),
                0.5,
                0.2,
                3,
            )
            .estimate()
        }
    };
    let cpr4 = tip(4, false);
    let cpr16 = tip(16, false);
    let g4 = tip(4, true);
    let g16 = tip(16, true);
    assert!(cpr16 / cpr4 < 2.0, "CPR flat: {cpr4:.2} -> {cpr16:.2}");
    assert!(g16 / g4 > 1.6, "GPRS scales: {g4:.2} -> {g16:.2}");
    assert!(g16 > cpr16 * 3.0, "GPRS far above CPR at 16 contexts");
}

/// Figure 9: fine-grained Pthreads degrades, fine-grained GPRS improves.
#[test]
fn fine_grain_helps_gprs_hurts_pthreads() {
    let coarse = paper_workload("barnes-hut", SCALE, false);
    let fine = paper_workload("barnes-hut", SCALE, true);
    let base = pthreads_baseline(&coarse);
    let cap = base.finish_cycles * 10;
    let pt_fine = run_free(&fine, &FreeRunConfig::pthreads(CONTEXTS).with_time_cap(cap));
    let g_fine = gprs_run(&fine, ScheduleKind::BalanceBasic, CostLayer::Full, cap);
    let pt = pt_fine.relative_to(&base).expect("completes");
    let g = g_fine.relative_to(&base).expect("completes");
    assert!(pt > 1.1, "fine Pthreads degrades: {pt:.2}");
    assert!(g < 1.0, "fine GPRS improves: {g:.2}");
}
