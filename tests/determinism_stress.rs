//! Cross-worker-count determinism stress for the lock-decomposition PR.
//!
//! The refactor's oracle is the pair of telemetry hashes: `schedule_hash`
//! (folded at grant) and `retired_hash` (folded at retirement). These tests
//! pin both against the goldens recorded from the seed engine
//! (`crates/bench/goldens/determinism.txt`, the same file `perfsuite`
//! verifies) and assert bit-identity across 1/2/4/8 workers on the real
//! runtime — any divergence means the fast-path/wakeup/hand-off changes
//! altered the executed order, not just its cost.

use gprs_bench::injector;
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::prelude::*;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::programs::{build_pbzip_pipeline, HistogramWorker};
use gprs_workloads::traces::{build, TraceParams, PROGRAMS};
use std::collections::HashMap;

/// Parses the committed golden file into `key -> (schedule, retired)`.
fn seed_goldens() -> HashMap<String, (u64, u64)> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../bench/goldens/determinism.txt"
    );
    let text = std::fs::read_to_string(path).expect("committed golden file");
    let mut map = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let key = it.next().expect("key").to_string();
        let parse = |s: &str| {
            u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex hash")
        };
        let schedule = parse(it.next().expect("schedule hash"));
        let retired = parse(it.next().expect("retired hash"));
        map.insert(key, (schedule, retired));
    }
    map
}

fn check(goldens: &HashMap<String, (u64, u64)>, key: &str, schedule: u64, retired: u64) {
    let &(gs, gr) = goldens
        .get(key)
        .unwrap_or_else(|| panic!("{key}: missing from the committed goldens"));
    assert_eq!(
        (schedule, retired),
        (gs, gr),
        "{key}: determinism hashes drifted from the seed goldens"
    );
}

/// All ten paper workloads on the simulator, fault-free and under the
/// seeded deterministic injector, must reproduce the seed engine's hashes
/// exactly (same parameters as the perfsuite determinism section — they
/// are part of the golden contract).
#[test]
fn sim_workloads_match_seed_goldens() {
    let goldens = seed_goldens();
    let params = TraceParams::paper().scaled(0.04);
    for prog in &PROGRAMS {
        let w = build(prog.name, &params);
        let clean = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        check(
            &goldens,
            &format!("sim/{}/clean", prog.name),
            clean.telemetry.schedule_hash,
            clean.telemetry.retired_hash,
        );
        // Injection rate derived from the deterministic fault-free finish
        // time, capped so a recovery storm still terminates — both inputs
        // are deterministic, so the injected hashes are too.
        let rate = 8.0 * gprs_sim::costs::CYCLES_PER_SEC as f64 / clean.finish_cycles as f64;
        let cfg = GprsSimConfig::balance_aware(8)
            .with_exceptions(injector(rate, 8, 0xD37E))
            .with_time_cap(clean.finish_cycles.saturating_mul(12));
        let injected = run_gprs(&w, &cfg);
        check(
            &goldens,
            &format!("sim/{}/injected", prog.name),
            injected.telemetry.schedule_hash,
            injected.telemetry.retired_hash,
        );
    }
}

/// The disjoint fetch-add chain: pure grant/checkpoint/retire traffic, the
/// exact path the OrderGate fast path and batched retirement rewrote.
struct Chain {
    atomic: AtomicHandle,
    rounds: u32,
    done: u32,
}

impl Checkpoint for Chain {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}

impl ThreadProgram for Chain {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.done == self.rounds {
            return Step::exit_unit();
        }
        self.done += 1;
        self.atomic.fetch_add(1)
    }
}

fn chain_hashes(workers: usize) -> (u64, u64) {
    let mut b = GprsBuilder::new().workers(workers);
    for _ in 0..8 {
        let a = b.atomic(0);
        b.thread(Chain { atomic: a, rounds: 64, done: 0 }, GroupId::new(0), 1);
    }
    let t = b.build().run().unwrap().telemetry;
    (t.schedule_hash, t.retired_hash)
}

fn pbzip_hashes(workers: usize, input: &[u8]) -> (u64, u64) {
    let mut b = GprsBuilder::new().workers(workers);
    let _ = build_pbzip_pipeline(&mut b, input.to_vec(), 2048, 2);
    let t = b.build().run().unwrap().telemetry;
    (t.schedule_hash, t.retired_hash)
}

fn histogram_hashes(workers: usize, data: &[u8]) -> (u64, u64) {
    let mut b = GprsBuilder::new().workers(workers);
    let acc = b.mutex(vec![0u64; 256]);
    for chunk in data.chunks(4_000) {
        b.thread(HistogramWorker::new(chunk.to_vec(), acc), GroupId::new(0), 1);
    }
    let t = b.build().run().unwrap().telemetry;
    (t.schedule_hash, t.retired_hash)
}

/// Real-runtime cross-worker identity: the same program must produce
/// bit-identical schedule and retired-order hashes at 1, 2, 4 and 8
/// workers, and those hashes must equal the seed goldens.
#[test]
fn runtime_hashes_identical_across_worker_counts() {
    let goldens = seed_goldens();
    let pbzip_input = generate_corpus(30_000, 11);
    let histo_data = generate_corpus(32_000, 5);
    type HashFn = Box<dyn Fn(usize) -> (u64, u64)>;
    let programs: [(&str, HashFn); 3] = [
        ("rt/fetchadd", Box::new(chain_hashes)),
        ("rt/pbzip", Box::new(move |w| pbzip_hashes(w, &pbzip_input))),
        ("rt/histogram", Box::new(move |w| histogram_hashes(w, &histo_data))),
    ];
    for (key, run) in &programs {
        let runs: Vec<(u64, u64)> = [1usize, 2, 4, 8].iter().map(|&w| run(w)).collect();
        for (w, r) in [1usize, 2, 4, 8].iter().zip(&runs) {
            assert_eq!(
                *r, runs[0],
                "{key}: hashes differ between 1 and {w} workers"
            );
        }
        check(&goldens, key, runs[0].0, runs[0].1);
    }
}

/// Run-to-run stress at the highest worker count: real threads race for
/// the token every iteration, yet the granted order (and therefore both
/// hashes) must never move.
#[test]
fn runtime_hashes_stable_across_repeated_runs() {
    let first = chain_hashes(8);
    for i in 0..10 {
        assert_eq!(chain_hashes(8), first, "run {i} diverged at 8 workers");
    }
}
