//! Workspace integration tests: real kernels on the real GPRS runtime,
//! end-to-end, with and without fault injection.

use gprs_core::exception::ExceptionKind;
use gprs_core::ids::GroupId;
use gprs_runtime::cpr::CprBuilder;
use gprs_runtime::GprsBuilder;
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::kernels::text::{byte_histogram, generate_text};
use gprs_workloads::programs::{
    build_pbzip_pipeline, decode_pbzip_output, HistogramWorker, WordCountWorker,
};
use std::collections::BTreeMap;
use std::time::Duration;

fn storm(ctl: gprs_runtime::Controller, period: Duration) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut n = 0;
        while !ctl.is_finished() {
            if ctl.inject_on_busy(ExceptionKind::SoftFault) {
                n += 1;
            }
            std::thread::sleep(period);
        }
        n
    })
}

#[test]
fn pbzip_pipeline_exact_under_storm_and_across_schedules() {
    let input = generate_corpus(120_000, 77);
    for schedule in [
        gprs_core::order::ScheduleKind::RoundRobin,
        gprs_core::order::ScheduleKind::BalanceBasic,
        gprs_core::order::ScheduleKind::BalanceWeighted,
    ] {
        let mut b = GprsBuilder::new().workers(3).schedule(schedule);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 4096, 3);
        let gprs = b.build();
        let injector = storm(gprs.controller(), Duration::from_micros(500));
        let report = gprs.run().unwrap();
        injector.join().unwrap();
        let decoded = decode_pbzip_output(report.file_contents(file.index())).unwrap();
        assert_eq!(decoded, input, "schedule {schedule:?}");
    }
}

#[test]
fn histogram_on_gprs_equals_kernel_reference() {
    let data = generate_corpus(64_000, 5);
    let reference = byte_histogram(&data);
    let mut b = GprsBuilder::new().workers(4);
    let acc = b.mutex(vec![0u64; 256]);
    for chunk in data.chunks(8_000) {
        b.thread(HistogramWorker::new(chunk.to_vec(), acc), GroupId::new(0), 1);
    }
    // A final auditor polls the accumulator until every byte is merged.
    struct Auditor {
        acc: gprs_runtime::handles::MutexHandle<Vec<u64>>,
        expected: u64,
        stage: u8,
    }
    impl gprs_core::history::Checkpoint for Auditor {
        type Snapshot = u8;
        fn checkpoint(&self) -> u8 {
            self.stage
        }
        fn restore(&mut self, s: &u8) {
            self.stage = *s;
        }
    }
    impl gprs_runtime::program::ThreadProgram for Auditor {
        fn step(
            &mut self,
            ctx: &mut gprs_runtime::ctx::StepCtx<'_>,
        ) -> gprs_runtime::program::Step {
            use gprs_runtime::program::Step;
            match self.stage {
                0 => {
                    self.stage = 1;
                    self.acc.lock()
                }
                _ => {
                    let (total, snapshot): (u64, Vec<u64>) =
                        ctx.with_lock(&self.acc, |bins| (bins.iter().sum(), bins.clone()));
                    if total == self.expected {
                        Step::exit(snapshot)
                    } else {
                        ctx.unlock(&self.acc);
                        self.stage = 0;
                        self.acc.lock()
                    }
                }
            }
        }
    }
    let auditor = b.thread(
        Auditor {
            acc,
            expected: data.len() as u64,
            stage: 0,
        },
        GroupId::new(1),
        1,
    );
    let gprs = b.build();
    let injector = storm(gprs.controller(), Duration::from_micros(400));
    let report = gprs.run().unwrap();
    injector.join().unwrap();
    let bins: Vec<u64> = report.output(auditor);
    assert_eq!(bins, reference.to_vec());
}

#[test]
fn wordcount_identical_on_gprs_and_cpr_executors() {
    let text = generate_text(6_000, 21);
    let cut = text[..text.len() / 2].rfind(' ').unwrap();
    let shards = [text[..cut].to_string(), text[cut..].to_string()];

    let mut gb = GprsBuilder::new().workers(2);
    let gacc = gb.mutex(BTreeMap::<String, u64>::new());
    let gtids: Vec<_> = shards
        .iter()
        .map(|s| gb.thread(WordCountWorker::new(s.clone(), gacc), GroupId::new(0), 1))
        .collect();
    let greport = gb.build().run().unwrap();
    let gsum: u64 = gtids.iter().map(|&t| greport.output::<u64>(t)).sum();

    let mut cb = CprBuilder::new().workers(2).checkpoint_every(4);
    let cacc = cb.mutex(BTreeMap::<String, u64>::new());
    let ctids: Vec<_> = shards
        .iter()
        .map(|s| cb.thread(WordCountWorker::new(s.clone(), cacc), GroupId::new(0), 1))
        .collect();
    let crt = cb.build();
    let cctl = crt.controller();
    let h = std::thread::spawn(move || {
        for _ in 0..4 {
            std::thread::sleep(Duration::from_micros(300));
            cctl.inject();
        }
    });
    let creport = crt.run().unwrap();
    h.join().unwrap();
    let csum: u64 = ctids.iter().map(|&t| creport.output::<u64>(t)).sum();
    assert_eq!(gsum, csum);
}

#[test]
fn runtime_is_deterministic_for_kernel_pipelines() {
    let input = generate_corpus(60_000, 13);
    let run = |workers: usize| {
        let mut b = GprsBuilder::new().workers(workers);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 2);
        let report = b.build().run().unwrap();
        (
            report.telemetry.schedule_hash,
            report.file_contents(file.index()).to_vec(),
        )
    };
    let (t1, f1) = run(1);
    let (t4, f4) = run(4);
    assert_eq!(t1, t4, "schedule hashes must match across worker counts");
    assert_eq!(f1, f4, "archives must be bit-identical");
}
