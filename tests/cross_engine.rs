//! Cross-engine consistency: the analytic model, the simulator and the
//! real runtime must tell the same story.

use gprs_core::model::{CostParams, Scheme};
use gprs_core::order::ScheduleKind;
use gprs_runtime::GprsBuilder;
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::{build, TraceParams};

/// The analytic bound (e* GPRS / e* CPR = n) brackets the simulator's
/// measured tipping ratio ordering: GPRS above CPR, growing with n.
#[test]
fn model_and_simulator_agree_on_ordering() {
    let params = CostParams::paper_default();
    for n in [2u32, 8, 24] {
        let p = params.with_contexts(n);
        assert!(
            p.max_exception_rate(Scheme::Gprs) > p.max_exception_rate(Scheme::CprSoftware)
        );
        assert!(
            p.checkpoint_penalty(Scheme::CprSoftware)
                > p.checkpoint_penalty(Scheme::Gprs) + p.ordering_penalty()
        );
    }
}

/// Simulator determinism across repeated runs of every benchmark trace.
#[test]
fn simulator_runs_are_reproducible() {
    for name in ["pbzip2", "dedup", "canneal", "re"] {
        let w = build(name, &TraceParams::paper().scaled(0.01));
        let a = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        let b = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        assert_eq!(a, b, "{name}");
        let c = run_free(&w, &FreeRunConfig::pthreads(8));
        let d = run_free(&w, &FreeRunConfig::pthreads(8));
        assert_eq!(c, d, "{name}");
    }
}

/// Both deterministic schedules drive the same pipeline to the same
/// byte-exact archive on the real runtime (the *performance* contrast
/// between them is the simulator's Figure 8; at runtime scale on a small
/// host both complete, and their grant traces legitimately differ).
#[test]
fn runtime_schedules_agree_on_results() {
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::{build_pbzip_pipeline, decode_pbzip_output};
    let input = generate_corpus(80_000, 4);
    let archive = |schedule| {
        let mut b = GprsBuilder::new().workers(2).schedule(schedule);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 3);
        let report = b.build().run().unwrap();
        report.file_contents(file.index()).to_vec()
    };
    let rr = archive(ScheduleKind::RoundRobin);
    let ba = archive(ScheduleKind::BalanceBasic);
    assert_eq!(decode_pbzip_output(&rr).unwrap(), input);
    assert_eq!(decode_pbzip_output(&ba).unwrap(), input);
}

/// Exceptions never change any engine's answer: sim finish-state equality
/// is covered in the sim crate; here the runtime's WAL/ROL stats stay
/// consistent (every created sub-thread either retires or is squashed).
#[test]
fn runtime_accounting_balances() {
    use gprs_core::exception::ExceptionKind;
    use gprs_core::ids::GroupId;
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::build_pbzip_pipeline;
    let input = generate_corpus(60_000, 6);
    let mut b = GprsBuilder::new().workers(2);
    let _ = build_pbzip_pipeline(&mut b, input, 2048, 2);
    let _ = GroupId::new(0);
    let gprs = b.build();
    let ctl = gprs.controller();
    let h = std::thread::spawn(move || {
        while !ctl.is_finished() {
            ctl.inject_on_busy(ExceptionKind::SoftFault);
            std::thread::sleep(std::time::Duration::from_micros(700));
        }
    });
    let report = gprs.run().unwrap();
    h.join().unwrap();
    let s = report.stats;
    assert_eq!(
        s.subthreads,
        s.retired + s.squashed,
        "every sub-thread retires or is squashed: {s:?}"
    );
    assert!(s.exceptions >= s.recoveries);
}
