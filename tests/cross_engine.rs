//! Cross-engine consistency: the analytic model, the simulator and the
//! real runtime must tell the same story.

use gprs_core::model::{CostParams, Scheme};
use gprs_core::order::ScheduleKind;
use gprs_runtime::GprsBuilder;
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::{build, TraceParams};

/// The analytic bound (e* GPRS / e* CPR = n) brackets the simulator's
/// measured tipping ratio ordering: GPRS above CPR, growing with n.
#[test]
fn model_and_simulator_agree_on_ordering() {
    let params = CostParams::paper_default();
    for n in [2u32, 8, 24] {
        let p = params.with_contexts(n);
        assert!(
            p.max_exception_rate(Scheme::Gprs) > p.max_exception_rate(Scheme::CprSoftware)
        );
        assert!(
            p.checkpoint_penalty(Scheme::CprSoftware)
                > p.checkpoint_penalty(Scheme::Gprs) + p.ordering_penalty()
        );
    }
}

/// Simulator determinism across repeated runs of every benchmark trace.
#[test]
fn simulator_runs_are_reproducible() {
    for name in ["pbzip2", "dedup", "canneal", "re"] {
        let w = build(name, &TraceParams::paper().scaled(0.01));
        let a = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        let b = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        assert_eq!(a, b, "{name}");
        let c = run_free(&w, &FreeRunConfig::pthreads(8));
        let d = run_free(&w, &FreeRunConfig::pthreads(8));
        assert_eq!(c, d, "{name}");
    }
}

/// Both deterministic schedules drive the same pipeline to the same
/// byte-exact archive on the real runtime (the *performance* contrast
/// between them is the simulator's Figure 8; at runtime scale on a small
/// host both complete, and their grant traces legitimately differ).
#[test]
fn runtime_schedules_agree_on_results() {
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::{build_pbzip_pipeline, decode_pbzip_output};
    let input = generate_corpus(80_000, 4);
    let archive = |schedule| {
        let mut b = GprsBuilder::new().workers(2).schedule(schedule);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 3);
        let report = b.build().run().unwrap();
        report.file_contents(file.index()).to_vec()
    };
    let rr = archive(ScheduleKind::RoundRobin);
    let ba = archive(ScheduleKind::BalanceBasic);
    assert_eq!(decode_pbzip_output(&rr).unwrap(), input);
    assert_eq!(decode_pbzip_output(&ba).unwrap(), input);
}

/// Exceptions never change any engine's answer: sim finish-state equality
/// is covered in the sim crate; here the runtime's WAL/ROL stats stay
/// consistent (every created sub-thread either retires or is squashed).
#[test]
fn runtime_accounting_balances() {
    use gprs_core::exception::ExceptionKind;
    use gprs_core::ids::GroupId;
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::build_pbzip_pipeline;
    let input = generate_corpus(60_000, 6);
    let mut b = GprsBuilder::new().workers(2);
    let _ = build_pbzip_pipeline(&mut b, input, 2048, 2);
    let _ = GroupId::new(0);
    let gprs = b.build();
    let ctl = gprs.controller();
    let h = std::thread::spawn(move || {
        while !ctl.is_finished() {
            ctl.inject_on_busy(ExceptionKind::SoftFault);
            std::thread::sleep(std::time::Duration::from_micros(700));
        }
    });
    let report = gprs.run().unwrap();
    h.join().unwrap();
    let s = report.stats;
    assert_eq!(
        s.subthreads,
        s.retired + s.squashed,
        "every sub-thread retires or is squashed: {s:?}"
    );
    assert!(s.exceptions >= s.recoveries);
}

// ---------------------------------------------------------------------------
// Telemetry determinism (gprs-telemetry schedule / retired-order hashes)
// ---------------------------------------------------------------------------

/// Repeated same-seed runs produce byte-identical streaming schedule
/// hashes: three simulator workloads, plus the real runtime across worker
/// counts (the hash replaces the old capped grant-trace vector).
#[test]
fn schedule_hashes_are_reproducible() {
    for name in ["pbzip2", "dedup", "canneal"] {
        let w = build(name, &TraceParams::paper().scaled(0.01));
        let a = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        let b = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        assert_ne!(a.telemetry.schedule_hash, 0, "{name}");
        assert_eq!(a.telemetry.schedule_hash, b.telemetry.schedule_hash, "{name}");
        assert_eq!(a.telemetry.retired_hash, b.telemetry.retired_hash, "{name}");
        assert_eq!(a.telemetry.schedule_grants, b.telemetry.schedule_grants, "{name}");
    }
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::build_pbzip_pipeline;
    let input = generate_corpus(60_000, 21);
    let run = |workers: usize| {
        let mut b = GprsBuilder::new().workers(workers);
        let _ = build_pbzip_pipeline(&mut b, input.clone(), 2048, 2);
        let r = b.build().run().unwrap();
        (r.telemetry.schedule_hash, r.telemetry.retired_hash)
    };
    let one = run(1);
    let four = run(4);
    assert_ne!(one.0, 0);
    assert_eq!(one, four, "hashes must not depend on the worker count");
}

/// An exception-injected pipeline converges to the fault-free
/// retired-order hash: squashed sub-threads never enter the hash, and
/// their re-executions retire the same logical steps in the same
/// per-thread order. The schedule hash legitimately differs (re-executed
/// sub-threads are fresh grants).
#[test]
fn retired_hash_converges_after_recovery() {
    use gprs_core::exception::ExceptionKind;
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::build_pbzip_pipeline;
    let input = generate_corpus(60_000, 17);
    let clean = {
        let mut b = GprsBuilder::new().workers(2);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 2);
        let r = b.build().run().unwrap();
        (r.telemetry.retired_hash, r.file_contents(file.index()).to_vec())
    };
    let mut b = GprsBuilder::new().workers(2);
    let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 2);
    let gprs = b.build();
    let ctl = gprs.controller();
    let h = std::thread::spawn(move || {
        while !ctl.is_finished() {
            ctl.inject_on_busy(ExceptionKind::SoftFault);
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
    });
    let report = gprs.run().unwrap();
    h.join().unwrap();
    assert_eq!(
        report.telemetry.retired_hash, clean.0,
        "recovered run must retire the same logical order"
    );
    assert_eq!(report.file_contents(file.index()), clean.1.as_slice());
}

/// The simulator engines make the same convergence promise as the runtime
/// (`retired_hash_converges_after_recovery` above): an exception-injected
/// sim run re-enters retirement in total order, so it converges to the
/// clean run's retired-order hash under both recovery scopes. The
/// checkpointing engine has no reorder list at all — its retired digest is
/// the empty hash whether or not exceptions strike, injected runs included.
#[test]
fn sim_retired_hash_converges_after_recovery() {
    use gprs_core::exception::InjectorConfig;
    use gprs_sim::gprs::RecoveryScope;
    use gprs_sim::{secs_to_cycles, CYCLES_PER_SEC};

    let cap = secs_to_cycles(600.0);
    let mut squashed = 0;
    for name in ["pbzip2", "barnes-hut"] {
        let w = build(name, &TraceParams::paper().scaled(0.01));
        let clean = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        assert!(clean.completed, "{name}");
        for scope in [RecoveryScope::Selective, RecoveryScope::Basic] {
            for seed in [3u64, 17] {
                let inj = InjectorConfig::paper(6.0, 8, CYCLES_PER_SEC).with_seed(seed);
                let f = run_gprs(
                    &w,
                    &GprsSimConfig::balance_aware(8)
                        .with_recovery(scope)
                        .with_exceptions(inj)
                        .with_time_cap(cap),
                );
                assert!(f.completed, "{name} {scope:?} seed {seed}: {f}");
                squashed += f.squashed;
                assert_eq!(
                    f.telemetry.retired_hash, clean.telemetry.retired_hash,
                    "{name} {scope:?} seed {seed}: retired order must converge"
                );
                assert_eq!(
                    f.telemetry.retired_count, clean.telemetry.retired_count,
                    "{name} {scope:?} seed {seed}"
                );
            }
        }
    }
    assert!(squashed > 0, "injection must actually squash some work");

    let w = build("pbzip2", &TraceParams::paper().scaled(0.01));
    let interval = secs_to_cycles(1.0);
    let clean = run_free(&w, &FreeRunConfig::cpr(8, interval));
    let inj = InjectorConfig::paper(4.0, 8, CYCLES_PER_SEC).with_seed(3);
    let f = run_free(
        &w,
        &FreeRunConfig::cpr(8, interval)
            .with_exceptions(inj)
            .with_time_cap(cap),
    );
    assert!(f.completed, "{f}");
    assert_eq!(f.telemetry.retired_hash, clean.telemetry.retired_hash);
}

/// Telemetry counters are internally consistent at exit: every created
/// sub-thread either retired or was squashed, and the counters mirror the
/// engine's own statistics.
#[test]
fn telemetry_counters_balance() {
    use gprs_core::exception::ExceptionKind;
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::build_pbzip_pipeline;
    let input = generate_corpus(40_000, 9);
    let mut b = GprsBuilder::new().workers(2);
    let _ = build_pbzip_pipeline(&mut b, input, 2048, 2);
    let gprs = b.build();
    let ctl = gprs.controller();
    let h = std::thread::spawn(move || {
        while !ctl.is_finished() {
            ctl.inject_on_busy(ExceptionKind::SoftFault);
            std::thread::sleep(std::time::Duration::from_micros(900));
        }
    });
    let report = gprs.run().unwrap();
    h.join().unwrap();
    let t = &report.telemetry;
    assert_eq!(
        t.counter("subthreads_created"),
        t.counter("retired") + t.counter("squashed"),
        "creates = retires + squashes at exit: {:?}",
        t.counters
    );
    assert_eq!(t.counter("subthreads_created"), report.stats.subthreads);
    assert_eq!(t.counter("retired"), report.stats.retired);
    assert_eq!(t.counter("squashed"), report.stats.squashed);
    assert_eq!(t.counter("grants"), t.schedule_grants);
    assert_eq!(t.counter("retired"), t.retired_count);
    // WAL accounting: every appended record is either undone by recovery
    // or pruned at retirement (the engine drains the ROL before exit).
    assert_eq!(
        t.counter("wal_appends"),
        t.counter("wal_undos") + t.counter("wal_prunes"),
        "WAL records are all undone or pruned: {:?}",
        t.counters
    );
}
