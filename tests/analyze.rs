//! Soundness cross-checks for the `gprs-analyze` static workload analyzer:
//! the ten DRF benchmarks are proven race-free (and the dynamic detector
//! agrees), the seeded racy fixture is indicted on the right cell, reports
//! are bit-identical across repeated runs, the analysis pass elides or arms
//! the dynamic detector in both engines without perturbing determinism, and
//! the pbzip2 schedule suggestion actually beats round-robin. A property
//! pass generates random nested-lock and racy-pair workloads and checks
//! the analyzer's verdicts against the simulator.

use gprs_analyze::{analyze, CellVerdict, RecoveryAdvice};
use gprs_core::ids::{AtomicId, GroupId, LockId, ResourceId, ThreadId};
use gprs_core::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};
use gprs_runtime::GprsBuilder;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::{build, TraceParams};
use proptest::prelude::*;

/// The ten data-race-free benchmark traces of Table 2.
const DRF_PROGRAMS: [&str; 10] = [
    "barnes-hut",
    "blackscholes",
    "canneal",
    "swaptions",
    "histogram",
    "pbzip2",
    "dedup",
    "re",
    "wordcount",
    "reverse-index",
];

fn drf_workload(name: &str) -> Workload {
    build(name, &TraceParams::paper().scaled(0.01))
}

/// Soundness, benign direction: everything the analyzer proves DRF really
/// is — the dynamic happens-before detector finds zero races on it. Also
/// the `--deny warnings` CI precondition: the whole Table 2 suite must
/// carry no Error or Warning diagnostics.
#[test]
fn drf_suite_is_proven_and_dynamically_clean() {
    for name in DRF_PROGRAMS {
        let w = drf_workload(name);
        let rep = analyze(&w);
        assert_eq!(rep.advice, RecoveryAdvice::Selective, "{name}");
        assert!(rep.race_free(), "{name}: {rep}");
        assert_eq!(rep.errors(), 0, "{name}: {rep}");
        assert_eq!(rep.warnings(), 0, "{name}: {rep}");
        assert!(
            rep.cells
                .iter()
                .all(|c| c.verdict != CellVerdict::PotentialRace),
            "{name}"
        );
        // Dynamic cross-check: the detector agrees.
        let r = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_racecheck(true));
        assert!(r.completed, "{name}");
        assert_eq!(r.races, 0, "{name}: analyzer said DRF, detector disagrees");
    }
}

/// Soundness, indicting direction: the seeded racy histogram is classified
/// `PotentialRace` on exactly the cell the dynamic detector flags —
/// `AtomicId(0)` by construction — with two concrete sites and hybrid-CPR
/// advice.
#[test]
fn racy_fixture_is_indicted_on_the_shared_cell() {
    let w = build(
        "histogram-racy",
        &TraceParams::paper().scaled(0.02).with_contexts(4),
    );
    let rep = analyze(&w);
    assert_eq!(rep.advice, RecoveryAdvice::HybridCpr);
    assert!(!rep.race_free());
    assert_eq!(rep.potential_races(), 1);
    let cell = rep
        .cells
        .iter()
        .find(|c| c.verdict == CellVerdict::PotentialRace)
        .expect("one racy cell");
    assert_eq!(cell.cell, AtomicId::new(0));
    let (a, b) = cell.indicted.expect("an indicted pair");
    assert_ne!(a.thread, b.thread, "the pair spans two threads");

    // The dynamic detector indicts the same resource.
    let r = run_gprs(&w, &GprsSimConfig::balance_aware(4).with_racecheck(true));
    assert!(r.races > 0);
    let race = r.first_race.expect("races > 0 implies a report");
    assert_eq!(race.resource, ResourceId::Atomic(cell.cell));
}

/// Reports are pure functions of the workload: bit-identical (structurally
/// and as serialized JSON) across repeated runs.
#[test]
fn reports_are_bit_identical_across_runs() {
    for name in ["pbzip2", "histogram-racy", "deadlock-hazard"] {
        let p = TraceParams::paper().scaled(0.02);
        let (a, b) = (analyze(&build(name, &p)), analyze(&build(name, &p)));
        assert_eq!(a, b, "{name}");
        assert_eq!(a.to_json(), b.to_json(), "{name}");
    }
}

/// Acceptance: an `analysis(true)` run of a proven-DRF workload skips the
/// dynamic race detector (elision counter set, zero detector work) yet
/// retires the identical deterministic order as a racecheck-enabled run.
#[test]
fn sim_analysis_elides_racecheck_without_perturbing_order() {
    let w = drf_workload("pbzip2");
    let analyzed = run_gprs(
        &w,
        &GprsSimConfig::balance_aware(8)
            .with_racecheck(true)
            .with_analysis(true),
    );
    let checked = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_racecheck(true));
    assert!(analyzed.completed && checked.completed);

    let rep = analyzed.analysis.as_ref().expect("report embedded");
    assert!(rep.race_free());
    assert_eq!(analyzed.telemetry.counter("analysis_runs"), 1);
    assert_eq!(analyzed.telemetry.counter("analysis_racecheck_elided"), 1);
    assert_eq!(checked.telemetry.counter("analysis_runs"), 0);
    assert_eq!(analyzed.races, 0);

    // Same retired order with the detector elided.
    assert_eq!(analyzed.telemetry.retired_hash, checked.telemetry.retired_hash);
    assert_eq!(analyzed.telemetry.schedule_hash, checked.telemetry.schedule_hash);
    assert_eq!(analyzed.finish_cycles, checked.finish_cycles);
}

/// The converse arming direction: a potential-race verdict forces the
/// detector on even when the caller left it off, and the races are found.
#[test]
fn sim_analysis_arms_racecheck_on_potential_race() {
    let w = build(
        "histogram-racy",
        &TraceParams::paper().scaled(0.02).with_contexts(4),
    );
    let r = run_gprs(
        &w,
        &GprsSimConfig::balance_aware(4)
            .with_racecheck(false)
            .with_analysis(true),
    );
    assert!(r.completed);
    let rep = r.analysis.as_ref().expect("report embedded");
    assert_eq!(rep.advice, RecoveryAdvice::HybridCpr);
    assert!(r.races > 0, "advice must arm the detector");
    assert_eq!(r.telemetry.counter("analysis_potential_races"), 1);
    assert_eq!(r.telemetry.counter("analysis_racecheck_elided"), 0);
}

/// Runtime engine: `GprsBuilder::analyze(true)` with an attached model
/// elides the detector on a DRF model and arms it on a racy one, and the
/// report rides along in the `RunReport`.
#[test]
fn runtime_analysis_elides_and_arms() {
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::{build_pbzip_pipeline, build_racy_histogram};

    // DRF model: racecheck requested, analysis elides it.
    let input = generate_corpus(20_000, 7);
    let mut b = GprsBuilder::new()
        .workers(2)
        .racecheck(true)
        .analyze(true)
        .model(drf_workload("pbzip2"));
    let (_file, _) = build_pbzip_pipeline(&mut b, input, 2048, 2);
    let report = b.build().run().unwrap();
    let rep = report.analysis.as_ref().expect("report embedded");
    assert!(rep.race_free());
    assert_eq!(report.stats.races, 0);
    assert_eq!(report.telemetry.counter("analysis_runs"), 1);
    assert_eq!(report.telemetry.counter("analysis_racecheck_elided"), 1);

    // Racy model: racecheck off, analysis arms it and the detector fires.
    let input: Vec<u8> = (0..20_000u32)
        .map(|i| (i.wrapping_mul(31) % 251) as u8)
        .collect();
    let mut b = GprsBuilder::new()
        .workers(2)
        .racecheck(false)
        .analyze(true)
        .model(build(
            "histogram-racy",
            &TraceParams::paper().scaled(0.02).with_contexts(4),
        ));
    let (_probe, collector) = build_racy_histogram(&mut b, input.clone(), 4, 6);
    let report = b.build().run().unwrap();
    let rep = report.analysis.as_ref().expect("report embedded");
    assert_eq!(rep.advice, RecoveryAdvice::HybridCpr);
    assert!(report.stats.races > 0, "advice must arm the detector");
    assert_eq!(report.telemetry.counter("analysis_racecheck_elided"), 0);
    let _ = report.output::<Vec<u64>>(collector);
}

/// Acceptance: the channel-topology advisor's pbzip2 suggestion is
/// multi-group, and running it under the weighted balance-aware schedule
/// beats round-robin on simulated finish time.
#[test]
fn pbzip2_suggestion_beats_round_robin() {
    let w = build("pbzip2", &TraceParams::paper().scaled(0.05));
    let rep = analyze(&w);
    let suggestion = rep.suggestion.as_ref().expect("a pipeline suggestion");
    assert!(suggestion.is_multi_group(), "{rep}");
    let advised = suggestion.apply(&w);
    let weighted = run_gprs(&advised, &GprsSimConfig::weighted(24));
    let rr = run_gprs(&w, &GprsSimConfig::round_robin(24));
    assert!(weighted.completed && rr.completed);
    assert!(
        weighted.finish_cycles < rr.finish_cycles,
        "advised {} !< round-robin {}",
        weighted.finish_cycles,
        rr.finish_cycles
    );
}

/// The deadlock fixture draws a lock-cycle warning naming both locks, yet
/// the token-ordered engine still completes it deterministically.
#[test]
fn deadlock_hazard_warned_but_completes() {
    let w = build("deadlock-hazard", &TraceParams::paper().scaled(0.05));
    let rep = analyze(&w);
    assert_eq!(rep.lock_cycles.len(), 1, "{rep}");
    let cycle = &rep.lock_cycles[0];
    assert!(cycle.contains(&LockId::new(0)) && cycle.contains(&LockId::new(1)));
    assert!(rep
        .diagnostics
        .iter()
        .any(|d| d.code == "lock-cycle" && d.message.contains("L0") && d.message.contains("L1")));
    // Warning severity: the hazard must not block `gprs-lint` default mode.
    assert_eq!(rep.errors(), 0);
    assert_eq!(rep.warnings(), 1);
    let r = run_gprs(&w, &GprsSimConfig::balance_aware(4));
    assert!(r.completed, "token order serializes the hazard");
    let again = run_gprs(&w, &GprsSimConfig::balance_aware(4));
    assert_eq!(r.telemetry.retired_hash, again.telemetry.retired_hash);
}

/// Structural-invariant validation: torn thread specs come back as
/// diagnostics, not panics.
#[test]
fn structural_violations_surface_as_diagnostics() {
    let mut w = Workload::new(
        "torn",
        vec![ThreadSpec::new(ThreadId::new(0), GroupId::new(0), 1, vec![
            Segment::new(10, SimOp::End),
        ])],
    );
    // Break it after construction: zero weight and a segment after End.
    w.threads[0].weight = 0;
    w.threads[0].segments.push(Segment::new(5, SimOp::End));
    let rep = analyze(&w);
    assert!(rep.errors() >= 2, "{rep}");
    assert!(rep.diagnostics.iter().any(|d| d.code == "zero-weight"));
    assert!(rep.diagnostics.iter().any(|d| d.code == "structure"));
    assert!(!rep.race_free(), "structural errors block elision");
}

// ---------------------------------------------------------------------------
// Property passes
// ---------------------------------------------------------------------------

/// A random lock-only workload: threads run rounds of `Lock` segments with
/// optional nested locks drawn from a per-thread acquisition order.
fn arb_lock_workload() -> impl Strategy<Value = Workload> {
    (
        2u32..6,          // threads
        2usize..5,        // rounds
        2u64..5,          // lock count
        any::<bool>(),    // consistent (acyclic) global nesting order?
    )
        .prop_map(|(threads, rounds, locks, consistent)| {
            let specs = (0..threads)
                .map(|i| {
                    let segs = (0..rounds)
                        .flat_map(|r| {
                            let outer = LockId::new((u64::from(i) + r as u64) % locks);
                            // Consistent order nests strictly upward in lock-id
                            // order (acyclic by construction); inconsistent
                            // order rotates per thread with wraparound,
                            // manufacturing opposite nestings.
                            let nested = if consistent {
                                (outer.raw() + 1 < locks).then(|| LockId::new(outer.raw() + 1))
                            } else {
                                Some(LockId::new(
                                    (outer.raw() + 1 + u64::from(i)) % locks,
                                ))
                            };
                            let mut body = Segment::new(500, SimOp::Atomic {
                                atomic: AtomicId::new(u64::from(i)),
                            });
                            if let Some(n) = nested.filter(|&n| n != outer) {
                                body = body.with_nested(n);
                            }
                            [
                                Segment::new(1_000, SimOp::Lock {
                                    lock: outer,
                                    cs_work: 200,
                                }),
                                body,
                            ]
                        })
                        .collect();
                    ThreadSpec::new(ThreadId::new(i), GroupId::new(0), 1, segs)
                })
                .collect();
            Workload::new("prop-locks", specs)
        })
}

/// A pair of threads with plain accesses to one shared cell; the guard
/// arrangement decides whether it is racy.
fn arb_plain_pair() -> impl Strategy<Value = (Workload, bool)> {
    (0u8..3, 1u64..4, any::<bool>()).prop_map(|(guard, segs, writes)| {
        let cell = AtomicId::new(0);
        let merge = LockId::new(0);
        let kind = if writes {
            PlainKind::Update
        } else {
            PlainKind::Write
        };
        let spec = |i: u32| {
            let private = AtomicId::new(1 + u64::from(i));
            let body: Vec<Segment> = (0..segs)
                .flat_map(|_| match guard {
                    // Lock, then the access in the subsumed next segment:
                    // both threads share the guard — DRF.
                    0 => [
                        Segment::new(800, SimOp::Lock {
                            lock: merge,
                            cs_work: 100,
                        }),
                        Segment::new(400, SimOp::Atomic { atomic: private }).with_plain(cell, kind),
                    ],
                    // Disjoint private atomics: unordered, racy.
                    1 => [
                        Segment::new(800, SimOp::Atomic { atomic: private }),
                        Segment::new(400, SimOp::Atomic { atomic: private }).with_plain(cell, kind),
                    ],
                    // The nested critical section guards the access too.
                    _ => [
                        Segment::new(800, SimOp::Lock {
                            lock: merge,
                            cs_work: 100,
                        }),
                        Segment::new(400, SimOp::Atomic { atomic: private })
                            .with_nested(LockId::new(1))
                            .with_plain(cell, kind),
                    ],
                })
                .collect();
            ThreadSpec::new(ThreadId::new(i), GroupId::new(0), 1, body)
        };
        let racy = guard == 1;
        (Workload::new("prop-pair", vec![spec(0), spec(1)]), racy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// When the analyzer reports no lock-order cycle, the simulator
    /// completes the workload (no deadlock), deterministically.
    #[test]
    fn acyclic_lock_order_never_deadlocks(w in arb_lock_workload(), ctx in 1u32..6) {
        let rep = analyze(&w);
        if rep.lock_cycles.is_empty() {
            let a = run_gprs(&w, &GprsSimConfig::balance_aware(ctx));
            prop_assert!(a.completed, "analyzer saw no cycle yet the run stalled");
            let b = run_gprs(&w, &GprsSimConfig::balance_aware(ctx));
            prop_assert_eq!(a.telemetry.retired_hash, b.telemetry.retired_hash);
        } else {
            // Even with a hazard the token-ordered engine must finish.
            let a = run_gprs(&w, &GprsSimConfig::balance_aware(ctx));
            prop_assert!(a.completed);
        }
    }

    /// Generated cross-thread plain conflicts are always classified
    /// `PotentialRace` (and guarded ones never are), matching the
    /// dynamic detector's verdict.
    #[test]
    fn generated_racy_pairs_are_always_flagged(case in arb_plain_pair()) {
        let (w, racy) = case;
        let rep = analyze(&w);
        if racy {
            prop_assert_eq!(rep.advice, RecoveryAdvice::HybridCpr);
            prop_assert!(rep.potential_races() > 0, "{}", rep);
            let cell = rep.cells.iter()
                .find(|c| c.verdict == CellVerdict::PotentialRace)
                .expect("a racy cell");
            prop_assert!(cell.indicted.is_some());
        } else {
            prop_assert_eq!(rep.advice, RecoveryAdvice::Selective);
            prop_assert!(rep.race_free(), "{}", rep);
        }
        // Dynamic agreement in both directions.
        let r = run_gprs(&w, &GprsSimConfig::balance_aware(4).with_racecheck(true));
        prop_assert!(r.completed);
        prop_assert_eq!(racy, r.races > 0, "static {} vs dynamic {}", racy, r.races);
    }
}
