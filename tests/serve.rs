//! Integration tests for `gprs-serve`: the multi-tenant serving layer.
//!
//! The load-bearing claim is the acceptance criterion from the paper's
//! precision guarantee lifted to co-residency: a job executed one quantum
//! at a time on a shared worker pool, interleaved with hundreds of other
//! tenants and migrating between OS threads, retires **bit-identically**
//! to the same spec run solo. Everything else here (drain, halt, cancel,
//! deadlines, the socket driver) checks that the serving machinery stops
//! jobs only through the recovery gates — a balanced WAL ledger is the
//! observable proof.

use gprs_serve::{build_solo, JobSpec, JobStatus, PoolConfig, ServePool, WORKLOADS};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};

/// The deterministic mixed-tenant spec stream shared by the big tests:
/// four workloads, a handful of seeds, every third job carrying an
/// injected fault plan.
fn mixed_spec(i: usize) -> JobSpec {
    let workload = WORKLOADS[i % WORKLOADS.len()];
    let mut spec = JobSpec::new(workload, (i as u64) % 5 + 1);
    if i.is_multiple_of(3) {
        spec = spec.faults((i as u64) % 6 + 1);
    }
    spec
}

/// Solo golden (schedule hash, retired hash, retired count) per unique
/// spec, computed once and cached — the stream in [`mixed_spec`] repeats
/// with period 60.
fn solo_goldens(n: usize) -> BTreeMap<(String, u64, u64), (u64, u64, u64)> {
    let mut goldens = BTreeMap::new();
    for i in 0..n {
        let spec = mixed_spec(i);
        let key = (spec.workload.clone(), spec.seed, spec.fault_seed);
        goldens.entry(key).or_insert_with(|| {
            let report = build_solo(&spec)
                .expect("registry workload")
                .run()
                .expect("solo golden completes");
            (
                report.telemetry.schedule_hash,
                report.telemetry.retired_hash,
                report.telemetry.retired_count,
            )
        });
    }
    goldens
}

/// THE acceptance test: a 2-worker pool over 1000 queued mixed jobs —
/// some with injected exceptions recovering mid-pool — and every single
/// report is bit-identical to its solo golden. Tenancy, quantum
/// scheduling, worker migration, and co-resident recoveries are all
/// invisible to precision.
#[test]
fn a_thousand_mixed_tenants_match_their_solo_goldens() {
    const JOBS: usize = 1000;
    let goldens = solo_goldens(JOBS);
    let pool = ServePool::start(PoolConfig {
        workers: 2,
        quantum: 16,
        ..Default::default()
    });
    let handle = pool.handle();
    let tickets: Vec<_> = (0..JOBS)
        .map(|i| handle.submit(mixed_spec(i)).expect("pool is admitting"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let spec = mixed_spec(i);
        let outcome = ticket.wait();
        assert_eq!(outcome.status, JobStatus::Completed, "job {i} ({spec:?})");
        let report = outcome.report.expect("completed jobs carry a report");
        let (schedule, retired_hash, retired) =
            goldens[&(spec.workload.clone(), spec.seed, spec.fault_seed)];
        // Schedule-hash equality is the clean-run contract. Under
        // injection the grant *order* stays deterministic but the
        // in-flight set at a trigger is not (chaos oracle doc), so a
        // mid-recovery event's victim — and with it the post-recovery
        // schedule — is timing-sensitive; only the retired hash and
        // count are guaranteed for faulted jobs.
        if spec.fault_seed == 0 {
            assert_eq!(
                report.telemetry.schedule_hash, schedule,
                "job {i} ({spec:?}): schedule hash drifted under tenancy"
            );
        }
        assert_eq!(
            report.telemetry.retired_hash, retired_hash,
            "job {i} ({spec:?}): retired hash drifted under tenancy"
        );
        assert_eq!(report.telemetry.retired_count, retired, "job {i}");
    }
    let stats = pool.shutdown();
    assert_eq!(stats.submitted, JOBS as u64);
    assert_eq!(stats.completed, JOBS as u64);
    assert_eq!(stats.failed, 0);
    assert!(
        stats.yields > 0,
        "the 16-grant quantum must force real yields"
    );
}

/// Graceful shutdown begins while the queue is still full — including
/// jobs whose fault plans put them mid-recovery — and every job drains to
/// a complete, golden-identical report.
#[test]
fn graceful_shutdown_drains_in_flight_and_mid_recovery_jobs() {
    const JOBS: usize = 60;
    let goldens = solo_goldens(JOBS);
    let pool = ServePool::start(PoolConfig {
        workers: 2,
        quantum: 8,
        ..Default::default()
    });
    let handle = pool.handle();
    let tickets: Vec<_> = (0..JOBS)
        .map(|i| handle.submit(mixed_spec(i)).expect("pool is admitting"))
        .collect();
    // Shut down immediately: nothing has been waited on, most of the
    // backlog is still queued, some jobs are mid-quantum or mid-recovery.
    let stats = pool.shutdown();
    assert_eq!(stats.completed, JOBS as u64, "drain completes every job");
    assert!(
        handle.submit(JobSpec::new("fetchadd", 1)).is_err(),
        "admissions close once shutdown begins"
    );
    for (i, ticket) in tickets.into_iter().enumerate() {
        let spec = mixed_spec(i);
        let outcome = ticket.wait();
        assert_eq!(outcome.status, JobStatus::Completed, "job {i}");
        let report = outcome.report.expect("drained jobs carry a report");
        let (_, retired_hash, _) = goldens[&(spec.workload.clone(), spec.seed, spec.fault_seed)];
        assert_eq!(
            report.telemetry.retired_hash, retired_hash,
            "job {i}: a drain must not perturb the schedule"
        );
    }
}

/// A halting shutdown cancels the backlog instead of draining it, but
/// still only through the recovery gates: no job poisons, and every
/// cancelled job that ran leaves a balanced WAL ledger
/// (`appends == undos + prunes` — nothing in flight survived the stop).
#[test]
fn halting_shutdown_cancels_cleanly() {
    const JOBS: usize = 200;
    let pool = ServePool::start(PoolConfig {
        workers: 1,
        quantum: 4,
        ..Default::default()
    });
    let handle = pool.handle();
    let tickets: Vec<_> = (0..JOBS)
        .map(|i| handle.submit(mixed_spec(i)).expect("pool is admitting"))
        .collect();
    let stats = pool.shutdown_now();
    assert_eq!(stats.failed, 0, "a halt is not a crash");
    assert_eq!(stats.completed + stats.cancelled, JOBS as u64);
    assert!(stats.cancelled > 0, "a 1-worker pool cannot outrun the halt");
    for ticket in tickets {
        let outcome = ticket.wait();
        match outcome.status {
            JobStatus::Completed => {
                assert!(outcome.report.is_some());
            }
            JobStatus::Cancelled => {
                // Jobs stopped before their first quantum have no report;
                // jobs stopped mid-flight must show a balanced ledger.
                if let Some(report) = &outcome.report {
                    let t = &report.telemetry;
                    assert_eq!(
                        t.counter("wal_appends"),
                        t.counter("wal_undos") + t.counter("wal_prunes"),
                        "cancellation left WAL entries unaccounted for"
                    );
                }
            }
            other => panic!("halt produced {other:?}"),
        }
    }
}

/// A queued job cancelled before any worker claims it publishes a
/// `Cancelled` outcome without ever building an engine.
#[test]
fn cancel_of_a_queued_job_skips_execution() {
    let pool = ServePool::start(PoolConfig {
        workers: 1,
        quantum: 2,
        ..Default::default()
    });
    let handle = pool.handle();
    // A deep FIFO of real work ahead of the victim.
    let ahead: Vec<_> = (0..8)
        .map(|i| handle.submit(JobSpec::new("fetchadd", i + 1)).unwrap())
        .collect();
    let victim = handle.submit(JobSpec::new("pbzip", 3)).unwrap();
    victim.cancel();
    let outcome = victim.wait();
    assert_eq!(outcome.status, JobStatus::Cancelled);
    assert!(
        outcome.report.is_none(),
        "a never-claimed job must not fabricate a report"
    );
    assert_eq!(outcome.quanta, 0);
    for t in ahead {
        assert_eq!(t.wait().status, JobStatus::Completed);
    }
    pool.shutdown();
}

/// Quanta-denominated deadlines cancel at a deterministic precise-restart
/// point: the partial report is reproducible run over run, its ledger is
/// balanced, and its retired prefix is a strict prefix of the solo run.
#[test]
fn deadlines_cancel_at_a_deterministic_precise_point() {
    let spec = JobSpec::new("fetchadd", 11).deadline(3);
    let solo = build_solo(&JobSpec::new("fetchadd", 11))
        .unwrap()
        .run()
        .unwrap();
    let run = || {
        let pool = ServePool::start(PoolConfig {
            workers: 2,
            quantum: 4,
            ..Default::default()
        });
        let outcome = pool.handle().submit(spec.clone()).unwrap().wait();
        pool.shutdown();
        outcome
    };
    let first = run();
    let second = run();
    assert_eq!(first.status, JobStatus::DeadlineExceeded);
    assert_eq!(first.quanta, 3, "cancelled exactly at the deadline quantum");
    let report = first.report.as_ref().expect("deadline leaves a report");
    let twin = second.report.as_ref().expect("deadline leaves a report");
    assert_eq!(
        report.telemetry.retired_hash, twin.telemetry.retired_hash,
        "deadline cancellation must be reproducible"
    );
    assert!(
        report.telemetry.retired_count < solo.telemetry.retired_count,
        "the deadline fired before the job could finish"
    );
    let t = &report.telemetry;
    assert_eq!(
        t.counter("wal_appends"),
        t.counter("wal_undos") + t.counter("wal_prunes")
    );
}

/// The scheduling fairness claim: on one worker, a long job ahead of the
/// queue yields every quantum, so every small tenant behind it completes
/// before the long job does — the long job can never hold the pool for
/// more than one quantum at a time. Retried a few times because a
/// pathological OS preemption during the submit burst could let the
/// single worker sprint the long job to completion first.
#[test]
fn long_jobs_cannot_starve_small_tenants() {
    const SMALLS: usize = 8;
    let attempt = || -> bool {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            quantum: 4,
            ..Default::default()
        });
        let handle = pool.handle();
        // fetchadd/11 runs 52 grants = 13 quanta; each histogram small is
        // 10 grants = 3 quanta.
        let long = handle.submit(JobSpec::new("fetchadd", 11)).unwrap();
        let smalls: Vec<_> = (0..SMALLS)
            .map(|_| handle.submit(JobSpec::new("histogram", 11)).unwrap())
            .collect();
        let long_outcome = long.wait();
        assert_eq!(long_outcome.status, JobStatus::Completed);
        assert!(long_outcome.quanta > 1, "the long job must actually yield");
        let done = smalls
            .iter()
            .filter(|t| t.try_wait().is_some_and(|o| o.status == JobStatus::Completed))
            .count();
        pool.shutdown();
        done == SMALLS
    };
    assert!(
        (0..3).any(|_| attempt()),
        "small tenants repeatedly waited out an entire long job"
    );
}

/// The socket driver round-trips a mixed batch: every streamed report's
/// retired hash equals the solo golden, in submission order.
#[test]
fn socket_driver_streams_golden_identical_reports() {
    use gprs_serve::server::Server;

    let server = Server::bind(
        "127.0.0.1:0",
        PoolConfig {
            workers: 2,
            quantum: 16,
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("server runs"));

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut script = String::new();
    let batch: Vec<JobSpec> = (0..8).map(mixed_spec).collect();
    for spec in &batch {
        script.push_str(&format!("submit {} {}", spec.workload, spec.seed));
        if spec.fault_seed != 0 {
            script.push_str(&format!(" fault={}", spec.fault_seed));
        }
        script.push('\n');
    }
    script.push_str("wait\nshutdown\n");
    stream.write_all(script.as_bytes()).expect("send script");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    let reader = BufReader::new(stream);
    let lines: Vec<String> = reader.lines().map(|l| l.expect("read line")).collect();
    server_thread.join().expect("server thread");

    // 8 acks, 8 reports, wait summary, shutdown ack.
    assert_eq!(lines.len(), batch.len() * 2 + 2, "{lines:#?}");
    let reports = &lines[batch.len()..batch.len() * 2];
    for (spec, line) in batch.iter().zip(reports) {
        let golden = build_solo(spec).unwrap().run().unwrap();
        let expected = format!(
            "\"retired_hash\":\"{:#018x}\"",
            golden.telemetry.retired_hash
        );
        assert!(
            line.contains("\"status\":\"completed\""),
            "{spec:?}: {line}"
        );
        assert!(
            line.contains(&expected),
            "{spec:?}: wanted {expected} in {line}"
        );
    }
}

/// Sharded jobs take the blocking drive path — no session, no quantum
/// slicing — yet every report still matches the *unsharded* solo twin
/// bit-for-bit and carries the per-domain ledger. Sharding a workload
/// without a shard plan, or on a durable pool, is rejected at admission.
#[test]
fn sharded_jobs_run_blocking_and_match_unsharded_twins() {
    let pool = ServePool::start(PoolConfig {
        workers: 2,
        quantum: 16,
        ..Default::default()
    });
    let handle = pool.handle();
    // Mix sharded beacons with unsharded small jobs so the blocking pass
    // shares the pool with quantum-sliced tenants.
    let specs: Vec<JobSpec> = (0..12)
        .map(|i| {
            if i % 2 == 0 {
                JobSpec::new("beacon", i as u64 + 1).sharded()
            } else {
                JobSpec::new("fetchadd", i as u64)
            }
        })
        .collect();
    let tickets: Vec<_> = specs
        .iter()
        .map(|s| handle.submit(s.clone()).expect("pool is admitting"))
        .collect();
    for (spec, ticket) in specs.iter().zip(tickets) {
        let outcome = ticket.wait();
        assert_eq!(outcome.status, JobStatus::Completed, "{spec:?}");
        let report = outcome.report.as_ref().expect("completed jobs carry a report");
        let golden = build_solo(spec).unwrap().run().unwrap();
        assert_eq!(
            report.telemetry.retired_hash, golden.telemetry.retired_hash,
            "{spec:?}: sharded tenancy must be invisible to precision"
        );
        assert_eq!(report.shards.is_empty(), !spec.shard, "{spec:?}");
        if spec.shard {
            assert_eq!(outcome.quanta, 1, "one blocking pass, no slicing");
            let json = outcome.to_json();
            assert!(json.contains("\"domains\":"), "{json}");
        }
    }
    let Err(err) = handle.submit(JobSpec::new("mutex", 1).sharded()) else {
        panic!("shard flag on a planless workload must be rejected");
    };
    assert!(err.to_string().contains("no shard plan"), "{err}");
    pool.shutdown();

    let durable_root = gprs_core::persist::unique_temp_dir("gprs-serve-shard-reject");
    let pool = ServePool::start(PoolConfig {
        workers: 1,
        quantum: 16,
        durable_root: Some(durable_root.clone()),
    });
    let Err(err) = pool.handle().submit(JobSpec::new("beacon", 1).sharded()) else {
        panic!("sharded jobs on a durable pool must be rejected");
    };
    assert!(err.to_string().contains("durable"), "{err}");
    pool.shutdown();
    let _ = std::fs::remove_dir_all(durable_root);
}
