//! Differential oracle for static elision: every run with the
//! restartability proofs consumed (checkpoints skipped at proven
//! read-only boundaries, WAL undo records skipped for proven dead cells)
//! must be observably identical to the same run with elision off —
//! fault-free and under injection, on both engines. The proofs may only
//! remove recovery *cost*, never recovery *outcome*.

use gprs_chaos::oracle::check_runtime;
use gprs_chaos::seeded_plan;
use gprs_core::exception::InjectorConfig;
use gprs_runtime::report::RunReport;
use gprs_runtime::GprsBuilder;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_sim::costs::CYCLES_PER_SEC;
use gprs_workloads::programs::{beacon_model_rounds, build_beacon, build_beacon_rounds};
use gprs_workloads::traces::{build, TraceParams, PROGRAMS};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Simulator: checkpoint elision at proven read-only boundaries
// ---------------------------------------------------------------------------

/// Fault-free differential over the whole committed corpus: elision must
/// not move a single grant (the schedule hash folds every grant) or
/// retirement, and every boundary is either checkpointed or elided —
/// never both, never neither.
#[test]
fn sim_elision_is_invisible_on_clean_runs() {
    let params = TraceParams::paper().scaled(0.01);
    let mut total_elided = 0;
    for prog in &PROGRAMS {
        let w = build(prog.name, &params);
        let off = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        let on = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_elision(true));
        assert!(off.completed && on.completed, "{}", prog.name);
        assert_eq!(
            on.telemetry.schedule_hash, off.telemetry.schedule_hash,
            "{}: elision moved a grant",
            prog.name
        );
        assert_eq!(
            on.telemetry.retired_hash, off.telemetry.retired_hash,
            "{}: elision changed the retired order",
            prog.name
        );
        assert_eq!(on.telemetry.retired_count, off.telemetry.retired_count, "{}", prog.name);
        assert_eq!(
            on.checkpoints + on.checkpoints_elided,
            off.checkpoints,
            "{}: every boundary is checkpointed xor elided",
            prog.name
        );
        assert_eq!(off.checkpoints_elided, 0, "{}", prog.name);
        assert!(
            on.ckpt_cycles <= off.ckpt_cycles,
            "{}: elision may only remove recording cost",
            prog.name
        );
        total_elided += on.checkpoints_elided;
    }
    assert!(
        total_elided > 0,
        "the committed corpus must exercise the elision path"
    );
}

/// Injected differential: squashes restore from checkpoints, so skipping
/// proven-unneeded ones is exactly where an unsound proof would surface.
/// The elided injected run must converge to the elision-OFF fault-free
/// twin's retired order.
#[test]
fn sim_elision_is_invisible_under_injection() {
    for name in ["pbzip2", "barnes-hut", "histogram"] {
        let w = build(name, &TraceParams::paper().scaled(0.01));
        let clean_off = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        assert!(clean_off.completed, "{name}");
        for seed in [3u64, 17] {
            let inj = InjectorConfig::paper(6.0, 8, CYCLES_PER_SEC).with_seed(seed);
            let on = run_gprs(
                &w,
                &GprsSimConfig::balance_aware(8)
                    .with_elision(true)
                    .with_exceptions(inj)
                    .with_time_cap(clean_off.finish_cycles.saturating_mul(24)),
            );
            assert!(on.completed, "{name} seed {seed}: {on}");
            assert_eq!(
                on.telemetry.retired_hash, clean_off.telemetry.retired_hash,
                "{name} seed {seed}: elided recovery diverged"
            );
            assert_eq!(
                on.telemetry.retired_count, clean_off.telemetry.retired_count,
                "{name} seed {seed}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime: WAL undo elision for proven dead cells
// ---------------------------------------------------------------------------

fn beacon_run(rounds: &[u32], elide: bool, plan: Option<&gprs_core::chaos::ChaosPlan>) -> RunReport {
    let mut b = GprsBuilder::new().workers(4);
    let _ = build_beacon_rounds(&mut b, rounds);
    let mut b = b.model(beacon_model_rounds(rounds)).elide(elide);
    if let Some(p) = plan {
        b = b.chaos(p);
    }
    b.build().run().expect("beacon completes")
}

/// Clean differential: elision on vs off must agree on both streaming
/// hashes, skip exactly one undo record per beacon store, and keep the
/// WAL ledger balanced (elided records are never appended, so they need
/// neither undo nor prune).
#[test]
fn runtime_wal_elision_is_invisible_on_clean_runs() {
    let rounds = [16u32, 16, 16, 16];
    let off = beacon_run(&rounds, false, None);
    let on = beacon_run(&rounds, true, None);
    assert_eq!(on.telemetry.schedule_hash, off.telemetry.schedule_hash);
    assert_eq!(on.telemetry.retired_hash, off.telemetry.retired_hash);
    assert_eq!(on.telemetry.retired_count, off.telemetry.retired_count);
    let stores: u64 = rounds.iter().map(|&r| u64::from(r)).sum();
    assert_eq!(on.telemetry.counter("wal_records_elided"), stores);
    assert_eq!(off.telemetry.counter("wal_records_elided"), 0);
    assert_eq!(
        on.telemetry.counter("wal_appends") + stores,
        off.telemetry.counter("wal_appends"),
        "exactly the dead stores disappeared from the log"
    );
    for r in [&on, &off] {
        let t = &r.telemetry;
        assert_eq!(
            t.counter("wal_appends"),
            t.counter("wal_undos") + t.counter("wal_prunes"),
            "WAL ledger balances"
        );
    }
}

/// Injected differential: squashes drive the WAL undo path, where a
/// wrongly-elided record would leave state the recovery pass cannot
/// restore. The elided injected run must satisfy every chaos-oracle
/// invariant against the elision-OFF fault-free twin.
#[test]
fn runtime_wal_elision_is_invisible_under_injection() {
    let rounds = [20u32, 20, 20, 20];
    let clean_off = beacon_run(&rounds, false, None);
    for seed in [7u64, 23, 41] {
        let plan = seeded_plan(seed, clean_off.stats.grants);
        let on = beacon_run(&rounds, true, Some(&plan));
        let violations = check_runtime("elide/beacon", seed, &plan, &clean_off, &on);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert!(
            on.telemetry.counter("wal_records_elided")
                >= rounds.iter().map(|&r| u64::from(r)).sum::<u64>(),
            "re-executed dead stores are elided again"
        );
    }
}

/// The proofs are only trusted under a race-free verdict: a model whose
/// "dead" cell is actually shared plain state across threads must veto
/// elision entirely rather than skip undo records on racy data.
#[test]
fn racy_model_vetoes_wal_elision() {
    use gprs_core::ids::{AtomicId, GroupId, ThreadId};
    use gprs_core::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};
    // Two threads plain-write the SAME cell: dead (never observed) but racy.
    let seg = |t: u64| {
        Segment::new(100, SimOp::Atomic { atomic: AtomicId::new(1 + t) })
            .with_plain(AtomicId::new(0), PlainKind::Write)
    };
    let racy = Workload::new(
        "racy-beacon",
        (0..2)
            .map(|t| {
                ThreadSpec::new(ThreadId::new(t), GroupId::new(t), 1, vec![seg(u64::from(t))])
            })
            .collect::<Vec<_>>(),
    );
    assert!(!gprs_analyze::analyze(&racy).race_free());
    let mut b = GprsBuilder::new().workers(2);
    let _ = build_beacon(&mut b, 2, 4);
    // Attach the racy model: the ids do not even need to line up — the
    // point is that no proof from it may be consumed.
    let report = b.model(racy).elide(true).build().run().unwrap();
    assert_eq!(report.telemetry.counter("wal_records_elided"), 0);
}

// ---------------------------------------------------------------------------
// Property fuzz (satellite): random programs, both engines
// ---------------------------------------------------------------------------

/// A random well-formed trace program stressing the classifier's corners:
/// zero-work read-only segments, dead plain writes, live plain reads,
/// locks (whose openings must NOT elide the next boundary) and a balanced
/// producer/consumer pair.
fn arb_trace_program() -> impl Strategy<Value = gprs_core::workload::Workload> {
    use gprs_core::ids::{AtomicId, ChannelId, GroupId, LockId, ThreadId};
    use gprs_core::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};
    (
        2u32..6,        // threads
        1usize..7,      // segments each
        0u64..200_000,  // base work (0 makes boundaries elidable)
        any::<u64>(),   // per-case shape bits
        any::<bool>(),  // include a pipeline pair
    )
        .prop_map(|(threads, segs, work, bits, pipeline)| {
            let mut specs: Vec<ThreadSpec> = (0..threads)
                .map(|i| {
                    let body: Vec<Segment> = (0..segs)
                        .map(|k| {
                            let mix = bits
                                .rotate_left(i.wrapping_mul(7) ^ k as u32)
                                % 5;
                            let mut s = match mix {
                                // Zero-work atomic boundary: proven read-only.
                                0 => Segment::new(0, SimOp::Atomic {
                                    atomic: AtomicId::new(u64::from(i) % 3),
                                }),
                                // Lock opening: the NEXT boundary must not
                                // elide (cs runs inside that sub-thread).
                                1 => Segment::new(work, SimOp::Lock {
                                    lock: LockId::new(0),
                                    cs_work: 500,
                                }),
                                _ => Segment::new(work + k as u64 * 991, SimOp::Atomic {
                                    atomic: AtomicId::new(k as u64 % 3),
                                }),
                            };
                            if mix == 3 {
                                // Dead store: private cell, never read.
                                s = s.with_plain(
                                    AtomicId::new(100 + u64::from(i)),
                                    PlainKind::Write,
                                );
                            } else if mix == 4 {
                                // Live read of the same private cell: keeps
                                // the thread's dead-store candidate alive.
                                s = s.with_plain(
                                    AtomicId::new(100 + u64::from(i)),
                                    PlainKind::Read,
                                );
                            }
                            s
                        })
                        .collect();
                    ThreadSpec::new(ThreadId::new(i), GroupId::new(0), 1, body)
                })
                .collect();
            if pipeline {
                let chan = ChannelId::new(0);
                specs.push(ThreadSpec::new(
                    ThreadId::new(threads),
                    GroupId::new(1),
                    1,
                    (0..4).map(|_| Segment::new(work / 2, SimOp::Push { chan })).collect(),
                ));
                specs.push(ThreadSpec::new(
                    ThreadId::new(threads + 1),
                    GroupId::new(2),
                    1,
                    (0..4).map(|_| Segment::new(0, SimOp::Pop { chan })).collect(),
                ));
            }
            Workload::new("fuzz", specs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulator fuzz: elision on/off agree on both hashes fault-free,
    /// and on the retired order under injection; boundaries partition
    /// into checkpointed xor elided.
    #[test]
    fn fuzz_sim_elision_differential(w in arb_trace_program(), seed in 0u64..1000) {
        let off = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        let on = run_gprs(&w, &GprsSimConfig::balance_aware(4).with_elision(true));
        prop_assert!(off.completed && on.completed);
        prop_assert_eq!(on.telemetry.schedule_hash, off.telemetry.schedule_hash);
        prop_assert_eq!(on.telemetry.retired_hash, off.telemetry.retired_hash);
        prop_assert_eq!(on.checkpoints + on.checkpoints_elided, off.checkpoints);

        let inj = InjectorConfig::paper(8.0, 4, CYCLES_PER_SEC).with_seed(seed);
        let cap = off.finish_cycles.saturating_mul(60).max(10_000_000);
        let run_inj = |elide: bool| run_gprs(
            &w,
            &GprsSimConfig::balance_aware(4)
                .with_elision(elide)
                .with_exceptions(inj.clone())
                .with_time_cap(cap),
        );
        let (f_off, f_on) = (run_inj(false), run_inj(true));
        // Same deterministic injector: both complete or neither does.
        if f_off.completed && f_on.completed {
            prop_assert_eq!(f_on.telemetry.retired_hash, off.telemetry.retired_hash);
            prop_assert_eq!(f_off.telemetry.retired_hash, off.telemetry.retired_hash);
            prop_assert_eq!(f_on.telemetry.retired_count, f_off.telemetry.retired_count);
        }
    }

    /// Runtime fuzz: random beacon shapes under seeded chaos plans — the
    /// elided run must match the elision-off fault-free twin bit for bit
    /// and keep the WAL ledger balanced.
    #[test]
    fn fuzz_runtime_wal_elision_differential(
        rounds in proptest::collection::vec(1u32..12, 1..5),
        seed in 1u64..500,
    ) {
        let off = beacon_run(&rounds, false, None);
        let on = beacon_run(&rounds, true, None);
        prop_assert_eq!(on.telemetry.retired_hash, off.telemetry.retired_hash);
        prop_assert_eq!(on.telemetry.schedule_hash, off.telemetry.schedule_hash);
        let stores: u64 = rounds.iter().map(|&r| u64::from(r)).sum();
        prop_assert_eq!(on.telemetry.counter("wal_records_elided"), stores);

        let plan = seeded_plan(seed, off.stats.grants);
        let inj = beacon_run(&rounds, true, Some(&plan));
        prop_assert_eq!(inj.telemetry.retired_hash, off.telemetry.retired_hash);
        prop_assert_eq!(inj.telemetry.retired_count, off.telemetry.retired_count);
        let t = &inj.telemetry;
        prop_assert_eq!(
            t.counter("wal_appends"),
            t.counter("wal_undos") + t.counter("wal_prunes"),
            "WAL ledger balances under elision + injection"
        );
    }
}
