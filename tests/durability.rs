//! Durable-recovery integration tests: the persistent WAL + checkpoint
//! store end to end, across in-process "crashes" (the engine dropped
//! mid-flight, its durable directory left exactly as a SIGKILL would).
//!
//! Restart *is* recovery: a resumed run re-executes the job from its
//! durable `Spec` record and verifies itself retirement-by-retirement
//! against the durable `Retire` prefix, so these tests assert the
//! resumed run converges bit-identically to a never-crashed twin.

use gprs_core::persist::{
    corrupt_tail_for_testing, unique_temp_dir, DurableRecord, FileBackend, PersistBackend,
};
use gprs_runtime::report::RunReport;
use gprs_runtime::session::QuantumOutcome;
use gprs_serve::{build_job_durable, build_solo, JobSpec, PoolConfig, ServePool};
use std::path::Path;
use std::sync::Arc;

/// Runs a durable job for at most `quanta` 8-grant quanta, then drops the
/// session mid-flight (the in-process crash: no cancel, no finish, no
/// seal). Returns true if it crashed mid-flight, false if the job was
/// short enough to finish first.
fn crash_after(dir: &Path, spec: &JobSpec, quanta: u64) -> bool {
    let backend = Arc::new(FileBackend::open(dir).expect("durable dir opens"));
    let mut session = build_job_durable(spec, 0, 0, backend, None)
        .expect("registry workload")
        .into_session();
    for _ in 0..quanta {
        if session.run_quantum(8) == QuantumOutcome::Finished {
            let _ = session.finish().expect("finished run reports");
            return false;
        }
    }
    true // drop: the crash
}

/// Loads the durable image and replays the job to completion in the same
/// (cooperative-session) drive mode, under prefix verification.
fn resume(dir: &Path, spec: &JobSpec) -> (RunReport, u64, bool) {
    let backend = Arc::new(FileBackend::open(dir).expect("durable dir reopens"));
    let image = backend.load().expect("durable image loads");
    assert_eq!(
        image.spec.as_deref(),
        Some(spec.canonical_line().as_str()),
        "the durable log identifies the job"
    );
    let prefix = image.retired_len();
    let truncated = image.truncated;
    let mut session = build_job_durable(spec, 0, 0, backend, Some(&image))
        .expect("registry workload")
        .into_session();
    while session.run_quantum(8) == QuantumOutcome::Yielded {}
    (session.finish().expect("resumed run completes"), prefix, truncated)
}

#[test]
fn crash_restart_converges_to_the_fault_free_twin() {
    let spec = JobSpec::new("pbzip", 7).faults(3);
    let golden = build_solo(&spec).unwrap().run().unwrap();
    let dir = unique_temp_dir("gprs-test-crash");
    let crashed = crash_after(&dir, &spec, 3);
    assert!(crashed, "pbzip at 3×8 grants must still be mid-flight");
    let (report, prefix, truncated) = resume(&dir, &spec);
    assert!(!truncated, "clean crash leaves no torn tail to truncate");
    assert!(prefix > 0, "the crashed run retired a durable prefix");
    assert_eq!(
        report.telemetry.retired_hash, golden.telemetry.retired_hash,
        "resumed run must be bit-identical to the never-crashed twin"
    );
    assert_eq!(report.telemetry.retired_count, golden.telemetry.retired_count);
    assert_eq!(
        report.telemetry.counter("recovered_prefix_len"),
        prefix,
        "every durable retirement was verified against the replay"
    );
    assert!(report.telemetry.counter("fsyncs") > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_the_resume_still_converges() {
    let spec = JobSpec::new("mutex", 5).faults(2);
    let golden = build_solo(&spec).unwrap().run().unwrap();
    let dir = unique_temp_dir("gprs-test-torn");
    crash_after(&dir, &spec, 2);
    let tore = corrupt_tail_for_testing(&dir).expect("tail corruption applies");
    assert!(tore, "a mid-flight log has a tail record to tear");
    let (report, _prefix, truncated) = resume(&dir, &spec);
    assert!(truncated, "the loader must report the torn-tail truncation");
    assert_eq!(
        report.telemetry.retired_hash, golden.telemetry.retired_hash,
        "truncating to the newest consistent prefix still converges"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn completed_run_leaves_a_balanced_consistent_image() {
    let spec = JobSpec::new("fetchadd", 3);
    let dir = unique_temp_dir("gprs-test-complete");
    let backend = Arc::new(FileBackend::open(&dir).expect("durable dir opens"));
    let report = build_job_durable(&spec, 0, 0, backend.clone(), None)
        .unwrap()
        .run()
        .unwrap();
    let image = backend.load().expect("image loads");
    assert!(
        image.ledger_balanced(),
        "completion leaves no in-flight WAL suffix: {} appends, {} undos, {} prunes",
        image.appends,
        image.undos,
        image.prunes
    );
    assert_eq!(image.retired_len(), report.telemetry.retired_count);
    assert_eq!(
        image.retires.last().expect("non-empty run").digest,
        report.telemetry.retired_hash
    );
    if let Some(ckpt) = &image.checkpoint {
        // The merkle-verified checkpoint must agree with the retire
        // stream it summarizes.
        assert_eq!(
            ckpt.digest,
            image.retires[ckpt.retired as usize - 1].digest,
            "checkpoint digest matches the retire prefix it covers"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quiescent_crash_points_leave_a_balanced_ledger() {
    // A cooperative session parks at a quiescent point between quanta —
    // everything granted has retired — so every in-process crash image
    // carries a balanced durable ledger. This is the invariant the
    // halt-mid-recovery fixture sweep relies on.
    for workload in gprs_serve::WORKLOADS {
        for quanta in 1..=3u64 {
            let spec = JobSpec::new(*workload, 6).faults(4);
            let dir = unique_temp_dir("gprs-test-quiesced");
            if crash_after(&dir, &spec, quanta) {
                let image = FileBackend::open(&dir)
                    .expect("reopen")
                    .load()
                    .expect("a crashed image always loads");
                assert!(
                    image.ledger_balanced(),
                    "{workload} after {quanta} quanta: {} appends vs {} undos + {} prunes",
                    image.appends,
                    image.undos,
                    image.prunes
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn mid_quantum_kill_is_visible_as_an_unbalanced_ledger() {
    // A real SIGKILL can land between a synced Append and the Prune that
    // would balance it — something an in-process session drop can never
    // produce (it always parks quiesced). Model that torn interleaving
    // directly through the backend and check the loader surfaces it.
    let dir = unique_temp_dir("gprs-test-torn-quantum");
    let backend = FileBackend::open(&dir).expect("durable dir opens");
    backend
        .record(&DurableRecord::Spec { text: "synthetic".into() })
        .unwrap();
    for lsn in 1..=3u64 {
        backend
            .record(&DurableRecord::Append {
                lsn,
                subthread: lsn,
                checksum: 0xFEED ^ lsn,
                op: format!("op {lsn}"),
            })
            .unwrap();
    }
    backend
        .record(&DurableRecord::Prune { subthread: 1, count: 1 })
        .unwrap();
    backend.sync().unwrap();
    let image = backend.load().expect("torn image still loads");
    assert!(!image.ledger_balanced(), "two appends were never pruned");
    assert_eq!(image.appends, 3);
    assert_eq!(image.prunes, 1);
    assert_eq!(image.undos, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pool restart: a durable root with one queued-but-never-run job and one
/// crashed-mid-flight job. A freshly started pool adopts both, finishes
/// them, and their reports converge to the fault-free twins.
#[test]
fn pool_restart_resumes_durable_jobs() {
    let root = unique_temp_dir("gprs-test-pool");

    // Job 1: submitted (Spec recorded, synced) but never run — what a
    // pool crash right after admission leaves behind.
    let queued = JobSpec::new("fetchadd", 4);
    {
        let dir = root.join("job-00000001");
        let backend = FileBackend::open(&dir).expect("job dir opens");
        backend
            .record(&DurableRecord::Spec { text: queued.canonical_line() })
            .expect("spec records");
        backend.sync().expect("spec syncs");
    }

    // Job 2: crashed mid-flight with a durable retire prefix.
    let inflight = JobSpec::new("pbzip", 11).faults(2);
    let crashed = crash_after(&root.join("job-00000002"), &inflight, 3);
    assert!(crashed, "job 2 must be mid-flight at the pool crash");

    let mut pool = ServePool::start(PoolConfig {
        workers: 2,
        quantum: 16,
        durable_root: Some(root.clone()),
    });
    let resumed = pool.take_resumed();
    assert_eq!(resumed.len(), 2, "both durable jobs are adopted");
    for ticket in resumed {
        let id = ticket.id();
        let outcome = ticket.wait();
        let spec = if id == 1 { &queued } else { &inflight };
        let golden = build_solo(spec).unwrap().run().unwrap();
        let report = outcome
            .report
            .unwrap_or_else(|| panic!("resumed job {id} failed: {:?}", outcome.error));
        assert_eq!(
            report.telemetry.retired_hash, golden.telemetry.retired_hash,
            "resumed job {id} diverged from its fault-free twin"
        );
    }
    pool.shutdown();

    // Terminal outcomes leave DONE markers: a second restart adopts nothing.
    let mut pool = ServePool::start(PoolConfig {
        workers: 1,
        quantum: 16,
        durable_root: Some(root.clone()),
    });
    assert!(pool.take_resumed().is_empty(), "finished jobs are not re-run");
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
