//! Sharded order domains: differential tests of `GprsBuilder::build_sharded`
//! against the unsharded engine.
//!
//! The oracle leans on the retired-order hash's structure: each thread
//! accumulates its own `(retirement index, kind)` stream and the global
//! digest is a wrapping sum of per-thread finalizations, so a sharded run
//! — per-domain `OrderGate`s, reorder lists and WALs joined by sequence-
//! numbered edge queues — must reproduce the unsharded digest exactly, on
//! clean runs and under injected faults alike.

use gprs_core::chaos::{ChaosEvent, ChaosPlan};
use gprs_core::exception::ExceptionKind;
use gprs_runtime::report::RunReport;
use gprs_runtime::GprsBuilder;
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::kernels::dedup::generate_dedup_corpus;
use gprs_workloads::programs::{
    beacon_model, build_beacon, build_dedup_pipeline, build_pbzip_pipeline, dedup_model,
    decode_pbzip_output, pbzip_model,
};

/// Per-shard ledger invariants every sharded report must satisfy: the
/// domain digests wrapping-sum to the global retired hash, the retirement
/// counts sum to the global count, and each domain's WAL balances.
fn audit_shards(report: &RunReport, domains: usize) {
    assert_eq!(report.shards.len(), domains, "one ledger entry per domain");
    let mut hash_sum = 0u64;
    let mut retired = 0u64;
    for s in &report.shards {
        hash_sum = hash_sum.wrapping_add(s.retired_hash);
        retired += s.retired;
        assert_eq!(
            s.wal_appends,
            s.wal_undos + s.wal_prunes,
            "domain {} WAL ledger must balance",
            s.domain
        );
    }
    assert_eq!(hash_sum, report.telemetry.retired_hash, "shard digests sum to global");
    assert_eq!(retired, report.stats.retired, "shard retirements sum to global");
}

fn beacon_pair(workers: usize, rounds: u32, chaos: Option<&ChaosPlan>) -> (RunReport, RunReport) {
    let run = |sharded: bool| {
        let mut b = GprsBuilder::new().workers(2);
        build_beacon(&mut b, workers, rounds);
        b = b.model(beacon_model(workers, rounds));
        if let Some(plan) = chaos {
            b = b.chaos(plan);
        }
        if sharded {
            b.build_sharded().run().unwrap()
        } else {
            b.build().run().unwrap()
        }
    };
    (run(false), run(true))
}

#[test]
fn beacon_sharded_reproduces_unsharded_retired_order() {
    let (plain, sharded) = beacon_pair(4, 24, None);
    assert_eq!(sharded.telemetry.retired_hash, plain.telemetry.retired_hash);
    assert_eq!(sharded.stats.retired, plain.stats.retired);
    for t in 0..4 {
        let tid = gprs_core::ids::ThreadId::new(t);
        assert_eq!(
            sharded.output::<u64>(tid),
            plain.output::<u64>(tid),
            "worker {t} checksum agrees"
        );
    }
    assert!(plain.shards.is_empty(), "unsharded runs carry no shard ledger");
    audit_shards(&sharded, 4);
}

#[test]
fn beacon_sharded_converges_under_injected_faults() {
    // Grant-keyed soft faults land in domain 0 of the sharded run (and at
    // the same global grant indices unsharded); recovery must re-converge
    // both executions to the identical retired order.
    let plan = ChaosPlan::new()
        .with(ChaosEvent::at_grant(7).kind(ExceptionKind::SoftFault))
        .with(ChaosEvent::at_grant(19).kind(ExceptionKind::SoftFault).burst(2))
        .with(ChaosEvent::at_grant(41).kind(ExceptionKind::ApproximationError));
    let (clean, _) = beacon_pair(4, 24, None);
    let (_, sharded_faulty) = beacon_pair(4, 24, Some(&plan));
    assert!(sharded_faulty.stats.squashed > 0, "faults must actually land");
    assert_eq!(
        sharded_faulty.telemetry.retired_hash, clean.telemetry.retired_hash,
        "sharded recovery converges to the clean unsharded retired order"
    );
    for t in 0..4 {
        let tid = gprs_core::ids::ThreadId::new(t);
        assert_eq!(sharded_faulty.output::<u64>(tid), clean.output::<u64>(tid));
    }
    audit_shards(&sharded_faulty, 4);
}

#[test]
fn pbzip_pipeline_shards_into_three_domains_and_round_trips() {
    let input = generate_corpus(30_000, 7);
    let blocks = (input.len() as u64).div_ceil(2048);
    let run = |sharded: bool| {
        let mut b = GprsBuilder::new().workers(3);
        let (file, writer) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 3);
        b = b.model(pbzip_model(blocks, 3));
        let report = if sharded {
            b.build_sharded().run().unwrap()
        } else {
            b.build().run().unwrap()
        };
        (report, file, writer)
    };
    let (plain, pfile, pwriter) = run(false);
    let (sharded, sfile, swriter) = run(true);
    assert_eq!(sharded.telemetry.retired_hash, plain.telemetry.retired_hash);
    assert_eq!(sharded.stats.retired, plain.stats.retired);
    assert_eq!(sharded.output::<u64>(swriter), plain.output::<u64>(pwriter));
    // The writer reorders by sequence number, so both modes reproduce the
    // input byte-for-byte through the cross-domain edges.
    assert_eq!(
        decode_pbzip_output(sharded.file_contents(sfile.index())).unwrap(),
        input
    );
    assert_eq!(
        sharded.file_contents(sfile.index()),
        plain.file_contents(pfile.index()),
        "committed output bytes agree across modes"
    );
    audit_shards(&sharded, 3);
}

#[test]
fn pbzip_sharded_converges_under_injected_faults() {
    let input = generate_corpus(24_000, 5);
    let blocks = (input.len() as u64).div_ceil(2048);
    let run = |plan: Option<&ChaosPlan>| {
        let mut b = GprsBuilder::new().workers(3);
        let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 2);
        b = b.model(pbzip_model(blocks, 2));
        if let Some(p) = plan {
            b = b.chaos(p);
        }
        let report = b.build_sharded().run().unwrap();
        (report, file)
    };
    let plan = ChaosPlan::new()
        .with(ChaosEvent::at_grant(3).kind(ExceptionKind::SoftFault))
        .with(ChaosEvent::at_grant(9).kind(ExceptionKind::SoftFault).burst(2));
    let (clean, cfile) = run(None);
    let (faulty, ffile) = run(Some(&plan));
    assert!(faulty.stats.squashed > 0, "faults must actually land");
    assert_eq!(faulty.telemetry.retired_hash, clean.telemetry.retired_hash);
    assert_eq!(faulty.file_contents(ffile.index()), clean.file_contents(cfile.index()));
    audit_shards(&faulty, 3);
}

#[test]
fn dedup_pipeline_shards_with_coalesced_producer_domain() {
    let input = generate_dedup_corpus(40_000, 40, 3);
    let run = |sharded: bool| {
        let mut b = GprsBuilder::new().workers(3);
        let (file, writer, total, fresh) =
            build_dedup_pipeline(&mut b, input.clone(), 8_192, 2, 2);
        let blocks = (input.len() as u64).div_ceil(8_192);
        b = b.model(dedup_model(blocks, total, fresh, 2, 2));
        let report = if sharded {
            b.build_sharded().run().unwrap()
        } else {
            b.build().run().unwrap()
        };
        (report, file, writer, fresh)
    };
    let (plain, _, pwriter, fresh) = run(false);
    let (sharded, sfile, swriter, _) = run(true);
    assert_eq!(sharded.telemetry.retired_hash, plain.telemetry.retired_hash);
    assert_eq!(sharded.stats.retired, plain.stats.retired);
    assert_eq!(sharded.output::<u64>(swriter), fresh, "fresh count is mode-invariant");
    assert_eq!(sharded.output::<u64>(swriter), plain.output::<u64>(pwriter));
    assert!(!sharded.file_contents(sfile.index()).is_empty());
    // Classifiers (store lock) and compressors (shared output channel)
    // coalesce into one execution domain: read, chunk, classify+compress,
    // write.
    audit_shards(&sharded, 4);
}

#[test]
fn single_domain_plan_is_bit_identical_to_unsharded() {
    // One worker's beacon model has a single order domain; the sharded
    // build degenerates to the unmodified engine, so even the
    // interleaving-sensitive schedule hash matches bit-for-bit.
    let run = |sharded: bool| {
        let mut b = GprsBuilder::new().workers(2);
        build_beacon(&mut b, 1, 32);
        b = b.model(beacon_model(1, 32));
        if sharded {
            b.build_sharded().run().unwrap()
        } else {
            b.build().run().unwrap()
        }
    };
    let plain = run(false);
    let sharded = run(true);
    assert_eq!(sharded.telemetry.schedule_hash, plain.telemetry.schedule_hash);
    assert_eq!(sharded.telemetry.retired_hash, plain.telemetry.retired_hash);
    assert_eq!(sharded.stats.grants, plain.stats.grants);
    audit_shards(&sharded, 1);
}

#[test]
fn stale_shard_plan_artifact_fails_loudly() {
    // A committed plan derived from a 3-worker beacon is stale against the
    // 4-worker program: the run must fail with the named diagnostic, not
    // silently re-derive domains.
    let stale = gprs_analyze::shard_plan(&beacon_model(3, 24)).to_json();
    let mut b = GprsBuilder::new().workers(2);
    build_beacon(&mut b, 4, 24);
    let err = b
        .model(beacon_model(4, 24))
        .shard_plan_artifact(stale)
        .build_sharded()
        .run()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("stale shard plan"), "diagnostic names the failure: {msg}");
}

#[test]
fn fresh_shard_plan_artifact_is_accepted() {
    let artifact = gprs_analyze::shard_plan(&beacon_model(4, 24)).to_json();
    let mut b = GprsBuilder::new().workers(2);
    build_beacon(&mut b, 4, 24);
    let report = b
        .model(beacon_model(4, 24))
        .shard_plan_artifact(artifact)
        .build_sharded()
        .run()
        .unwrap();
    audit_shards(&report, 4);
}

#[test]
fn sharded_build_rejects_unsupported_configuration() {
    // No model: nothing to derive domains from.
    let mut b = GprsBuilder::new().workers(2);
    build_beacon(&mut b, 2, 8);
    let msg = b.build_sharded().run().unwrap_err().to_string();
    assert!(msg.contains("requires an attached model"), "{msg}");

    // Dynamic race detection assumes one global retired order.
    let mut b = GprsBuilder::new().workers(2).racecheck(true);
    build_beacon(&mut b, 2, 8);
    let msg = b
        .model(beacon_model(2, 8))
        .build_sharded()
        .run()
        .unwrap_err()
        .to_string();
    assert!(msg.contains("race detector"), "{msg}");
}
