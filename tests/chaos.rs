//! Chaos-campaign integration tests: the recovery-path scenarios the
//! ISSUE's satellites call out, pinned as deterministic regressions.
//!
//! Each test compares an injected run against its fault-free twin through
//! the `gprs-chaos` oracle *and* asserts the user-visible outputs are
//! bit-equal — global precision as the paper defines it: every older
//! effect visible, no younger effect observable, the program none the
//! wiser.

use gprs_chaos::campaign::{
    cpr_clean, cpr_injected, gprs_clean, gprs_injected, sim_clean, sim_injected,
};
use gprs_chaos::oracle::{check_cpr, check_runtime, check_sim};
use gprs_chaos::{replay_fixture, CampaignConfig, Fixture};
use gprs_core::chaos::{ChaosEvent, ChaosPlan, VictimSelector};
use gprs_core::exception::ExceptionKind;

/// Asserts an injected GPRS-runtime run is oracle-clean against its twin
/// and that every thread output matches the fault-free value.
fn assert_precise(program: &str, plan: &ChaosPlan) {
    let clean = gprs_clean(program);
    let injected = gprs_injected(program, plan).expect("injected run completes");
    let violations = check_runtime(&format!("test/{program}"), 0, plan, &clean, &injected);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
    assert!(injected.stats.exceptions > 0, "plan must actually fire");
    assert_eq!(injected.outputs.len(), clean.outputs.len());
    for tid in clean.outputs.keys() {
        assert_eq!(
            injected.output::<u64>(*tid),
            clean.output::<u64>(*tid),
            "thread {tid} output diverged under {program}"
        );
    }
}

/// Satellite 4: a second exception raised while recovery is already in
/// flight (overlapping DEX→REX) must still converge to the fault-free
/// outcome — on the GPRS runtime...
#[test]
fn overlapping_exceptions_mid_recovery_stay_precise_on_gprs() {
    for program in ["chain", "nested"] {
        let plan = ChaosPlan::new()
            .with(
                ChaosEvent::at_grant(9)
                    .kind(ExceptionKind::SoftFault)
                    .victim(VictimSelector::Oldest)
                    .burst(2),
            )
            .with(
                ChaosEvent::mid_recovery(1)
                    .kind(ExceptionKind::ThermalEmergency)
                    .victim(VictimSelector::Newest),
            )
            .with(ChaosEvent::mid_recovery(2).victim(VictimSelector::Oldest));
        assert_precise(program, &plan);
    }
}

/// ...and on the CPR baseline, where the overlap is a rollback requested
/// while the previous rollback has just finished restoring.
#[test]
fn overlapping_exceptions_mid_recovery_recover_on_cpr() {
    let plan = ChaosPlan::new()
        .with(ChaosEvent::at_grant(30).kind(ExceptionKind::SoftFault))
        .with(ChaosEvent::mid_recovery(1).kind(ExceptionKind::VoltageEmergency))
        .with(ChaosEvent::mid_recovery(2));
    for program in ["chain", "nested"] {
        let clean = cpr_clean(program);
        let injected = cpr_injected(program, &plan).expect("injected CPR run completes");
        let violations = check_cpr(&format!("test/{program}"), 0, &plan, &clean, &injected);
        assert!(violations.is_empty(), "oracle violations: {violations:?}");
        assert!(injected.rollbacks >= 1, "global exceptions must roll back");
        for tid in clean.outputs.keys() {
            assert_eq!(injected.output::<u64>(*tid), clean.output::<u64>(*tid));
        }
    }
}

/// Satellite 2: an exception storm aimed at lock *holders* while peers are
/// parked on the per-lock-id condvar shards. The nested program holds two
/// locks per round, so `Holder` victims strike inside critical sections;
/// WAL undo must release the shard state and the targeted wakeup must
/// reach the blocked successor — a lost wakeup here hangs the run.
#[test]
fn holder_storms_under_nested_locks_release_shard_waiters() {
    let plan = ChaosPlan::new()
        .with(
            ChaosEvent::at_grant(16)
                .kind(ExceptionKind::ResourceRevocation)
                .victim(VictimSelector::Holder)
                .burst(3),
        )
        .with(
            ChaosEvent::at_grant(40)
                .kind(ExceptionKind::ThermalEmergency)
                .victim(VictimSelector::Holder)
                .burst(2),
        );
    let clean = gprs_clean("nested");
    let injected = gprs_injected("nested", &plan).expect("storm run completes");
    let violations = check_runtime("test/nested-holders", 0, &plan, &clean, &injected);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
    for tid in clean.outputs.keys() {
        assert_eq!(injected.output::<u64>(*tid), clean.output::<u64>(*tid));
    }
    // Spurious shard wakeups can't be asserted to zero (a peer may re-wake
    // and find the lock re-taken under contention), but each one must be
    // bounded by actual recovery traffic — unbounded growth means the
    // targeted wakeup is broadcasting.
    let spurious = injected.telemetry.counter("wakeups_spurious");
    let budget = 8 * (injected.stats.recoveries + 1) * u64::from(5u32);
    assert!(
        spurious <= budget,
        "wakeups_spurious {spurious} exceeds recovery-traffic budget {budget}"
    );
}

/// Regression for the finish-ordering bug the campaign flushed out: an
/// exception queued at the very last grants used to lose the race against
/// the `live == 0 && running.is_empty()` finish check and be dropped with
/// its excepted entry's staged output uncommitted. Both worker loops now
/// test the pending-exception gates first.
#[test]
fn trailing_exception_at_the_final_grant_is_still_recovered() {
    for program in ["chain", "nested", "histogram"] {
        let clean = gprs_clean(program);
        let plan = ChaosPlan::new().with(
            ChaosEvent::at_grant(clean.stats.grants)
                .kind(ExceptionKind::SoftFault)
                .victim(VictimSelector::Newest),
        );
        assert_precise(program, &plan);
    }
    // Same shape on the CPR baseline: a rollback requested at the final
    // grant must be honored before the terminal check.
    let clean = cpr_clean("chain");
    let plan = ChaosPlan::new().with(ChaosEvent::at_grant(clean.stats.grants));
    let injected = cpr_injected("chain", &plan).expect("trailing CPR run completes");
    assert_eq!(injected.rollbacks + injected.stats.exceptions_ignored, 1);
    for tid in clean.outputs.keys() {
        assert_eq!(injected.output::<u64>(*tid), clean.output::<u64>(*tid));
    }
}

/// Pbzip exercises the output-commit-delayed file path: staged writes of
/// squashed sub-threads must be discarded, retired ones committed in
/// order, and the committed bytes bit-equal to the fault-free archive.
#[test]
fn exception_storms_preserve_committed_file_contents() {
    let plan = ChaosPlan::new()
        .with(
            ChaosEvent::at_grant(12)
                .kind(ExceptionKind::SoftFault)
                .victim(VictimSelector::Oldest)
                .burst(2),
        )
        .with(ChaosEvent::mid_recovery(1).victim(VictimSelector::Newest));
    let clean = gprs_clean("pbzip");
    let injected = gprs_injected("pbzip", &plan).expect("pbzip storm completes");
    let violations = check_runtime("test/pbzip", 0, &plan, &clean, &injected);
    assert!(violations.is_empty(), "oracle violations: {violations:?}");
    assert_eq!(injected.files, clean.files, "committed archive bytes diverged");
}

/// The simulator-side overlap scenario: a scripted storm plus a trailing
/// arrival one cycle later lands in the same recovery drain. The sim is a
/// pure function, so convergence is checked bit-exactly via the retired
/// hash.
#[test]
fn sim_scripted_overlap_converges_to_clean_retired_order() {
    let clean = sim_clean("histogram");
    for seed in [3, 11] {
        let injected = sim_injected("histogram", seed, clean.finish_cycles);
        let violations = check_sim("test/sim-histogram", seed, &clean, &injected);
        assert!(violations.is_empty(), "oracle violations: {violations:?}");
    }
}

/// Every committed regression fixture must replay clean — these are the
/// minimized reproducers of bugs the campaign once flushed out.
#[test]
fn committed_fixtures_replay_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../chaos/fixtures");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("fixtures directory exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "plan") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let fx = Fixture::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let violations = replay_fixture(&fx).expect("known engine");
        assert!(
            violations.is_empty(),
            "{} regressed: {violations:?}",
            path.display()
        );
        // A fixture with a pinned schedule recording must also replay that
        // exact grant order — a divergence means the injected run no
        // longer takes the schedule the fixture pinned.
        if let Some(name) = &fx.recording {
            let rec_path = path.with_file_name(name);
            let rec = gprs_core::recording::Recording::load(&rec_path)
                .unwrap_or_else(|e| panic!("{}: {e}", rec_path.display()));
            let violations = gprs_chaos::replay_fixture_recording(&fx, &std::sync::Arc::new(rec))
                .unwrap_or_else(|e| panic!("{}: {e}", rec_path.display()));
            assert!(
                violations.is_empty(),
                "{} diverged: {violations:?}",
                rec_path.display()
            );
        }
    }
    assert!(seen >= 3, "expected the committed fixture set, found {seen}");
}

/// HALT mid-recovery: cancel the job at every early quantum boundary of a
/// plan whose `mid-recovery` overlays are still pending, so the fresh
/// exceptions fire *inside* the cancellation squash. Whatever the cancel
/// point, the halted run must finish without panicking and the WAL ledger
/// must balance — `wal_appends == wal_undos + wal_prunes` — because the
/// halt squash undoes or prunes every append it leaves behind.
#[test]
fn halt_mid_recovery_balances_the_ledger_at_every_cancel_point() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../chaos/fixtures/halt-mid-recovery.plan"
    ))
    .expect("committed halt fixture");
    let mut fx = Fixture::parse(&text).expect("fixture parses");
    for quanta in 0..6 {
        fx.seed = quanta; // the HALT point, in 8-grant quanta
        let violations = replay_fixture(&fx).expect("known engine");
        assert!(
            violations.is_empty(),
            "halt after {quanta} quanta: {violations:?}"
        );
    }
}

/// A miniature campaign end-to-end (2 seeds, quick legs): the exact code
/// path CI's chaos-smoke job drives.
#[test]
fn mini_campaign_is_violation_free() {
    let cfg = CampaignConfig { seeds: 2, quick: true };
    let outcome = gprs_chaos::run_campaign(&cfg);
    assert!(outcome.runs >= 2 * outcome.legs);
    assert!(
        outcome.violations.is_empty(),
        "campaign violations: {:?}",
        outcome.violations
    );
}
