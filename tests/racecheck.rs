//! Race-detector integration: zero false positives on the DRF benchmark
//! suite, deterministic first-race reports on a seeded racy workload —
//! stable across repeated runs, context/worker counts, and engines — and
//! correct recovery when selective restart escalates on racy threads.

use gprs_core::ids::{AtomicId, ResourceId};
use gprs_runtime::GprsBuilder;
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::{build, TraceParams};

/// The ten data-race-free benchmark traces of Table 2.
const DRF_PROGRAMS: [&str; 10] = [
    "barnes-hut",
    "blackscholes",
    "canneal",
    "swaptions",
    "histogram",
    "pbzip2",
    "dedup",
    "re",
    "wordcount",
    "reverse-index",
];

/// Every synchronization idiom the benchmarks use — locks, atomics,
/// channels, barriers — induces the happens-before edges the detector
/// expects: no false positives on the whole DRF suite.
#[test]
fn drf_traces_report_zero_races() {
    for name in DRF_PROGRAMS {
        let w = build(name, &TraceParams::paper().scaled(0.01));
        let r = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_racecheck(true));
        assert!(r.completed, "{name}");
        assert_eq!(r.races, 0, "{name}: false positive {:?}", r.first_race);
        assert!(r.first_race.is_none(), "{name}");
    }
}

/// The real runtime's pipeline (push/pop provenance + atomics) is equally
/// race-free under the retirement-driven detector, and detection does not
/// perturb the computed output.
#[test]
fn drf_runtime_pipeline_reports_zero_races() {
    use gprs_workloads::kernels::compress::generate_corpus;
    use gprs_workloads::programs::{build_pbzip_pipeline, decode_pbzip_output};
    let input = generate_corpus(40_000, 7);
    let mut b = GprsBuilder::new().workers(2).racecheck(true);
    let (file, _) = build_pbzip_pipeline(&mut b, input.clone(), 2048, 2);
    let report = b.build().run().unwrap();
    assert_eq!(
        decode_pbzip_output(report.file_contents(file.index())).unwrap(),
        input
    );
    assert_eq!(
        report.stats.races, 0,
        "false positive: {:?}",
        report.first_race
    );
    assert!(report.first_race.is_none());
    assert_eq!(report.telemetry.counter("races_detected"), 0);
}

/// The seeded racy histogram is flagged in both engines, the first-race
/// report is bit-identical across repeated runs and context/worker counts
/// (detection runs at retirement, in the deterministic total order), and
/// both engines indict the same shared cell — `AtomicId(0)` by
/// construction.
#[test]
fn racy_workload_flagged_deterministically_across_engines() {
    use gprs_workloads::kernels::text::byte_histogram;
    use gprs_workloads::programs::build_racy_histogram;

    // Simulator side.
    let w = build("histogram-racy", &TraceParams::paper().scaled(0.02).with_contexts(4));
    let cfg = |ctx| GprsSimConfig::balance_aware(ctx).with_racecheck(true);
    let a = run_gprs(&w, &cfg(4));
    let b = run_gprs(&w, &cfg(4));
    let c = run_gprs(&w, &cfg(8));
    assert!(a.completed);
    assert!(a.races > 0, "the racy workload must be flagged");
    assert_eq!(a.races, b.races);
    assert_eq!(a.first_race, b.first_race, "repeated runs must agree");
    assert_eq!(a.first_race, c.first_race, "context count must not matter");
    let sim_race = a.first_race.clone().expect("races > 0 implies a report");
    assert_eq!(sim_race.resource, ResourceId::Atomic(AtomicId::new(0)));
    assert_eq!(a.telemetry.counter("races_detected"), a.races);

    // Runtime side: same program shape on the threaded engine.
    let input: Vec<u8> = (0..40_000u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
    let run = |workers: usize| {
        let mut bld = GprsBuilder::new().workers(workers).racecheck(true);
        let (_probe, collector) = build_racy_histogram(&mut bld, input.clone(), 4, 6);
        let report = bld.build().run().unwrap();
        (
            report.output::<Vec<u64>>(collector),
            report.stats.races,
            report.first_race,
        )
    };
    let (bins1, races1, first1) = run(1);
    let (bins4, races4, first4) = run(4);
    let expected = byte_histogram(&input).to_vec();
    assert_eq!(bins1, expected, "the race corrupts the probe, not the result");
    assert_eq!(bins4, expected);
    assert!(races1 > 0, "the racy workload must be flagged at runtime");
    assert_eq!(races1, races4, "worker count must not change the verdict");
    assert_eq!(first1, first4, "worker count must not change the first race");
    let rt_race = first1.expect("races > 0 implies a report");

    // Cross-engine agreement on the indicted cell.
    assert_eq!(rt_race.resource, sim_race.resource);
    assert_eq!(rt_race.resource, ResourceId::Atomic(AtomicId::new(0)));
}

/// Exception injection on the racy workload: recovery escalates from
/// selective to basic scope for culprits on racy threads (the alias trail
/// cannot be trusted across a plain-access race), and the run still
/// converges to the clean retired order with races re-reported.
#[test]
fn sim_escalation_recovers_and_converges() {
    use gprs_core::exception::InjectorConfig;
    use gprs_sim::{secs_to_cycles, CYCLES_PER_SEC};

    let w = build("histogram-racy", &TraceParams::paper().scaled(0.2).with_contexts(8));
    let clean = run_gprs(&w, &GprsSimConfig::balance_aware(8).with_racecheck(true));
    assert!(clean.completed);
    assert!(clean.races > 0);

    let cap = secs_to_cycles(600.0);
    let mut escalations = 0;
    let mut squashed = 0;
    for seed in [3u64, 17, 29] {
        let inj = InjectorConfig::paper(100.0, 8, CYCLES_PER_SEC).with_seed(seed);
        let f = run_gprs(
            &w,
            &GprsSimConfig::balance_aware(8)
                .with_racecheck(true)
                .with_exceptions(inj)
                .with_time_cap(cap),
        );
        assert!(f.completed, "seed {seed}: {f}");
        assert!(f.races > 0, "seed {seed}");
        assert_eq!(
            f.telemetry.retired_hash, clean.telemetry.retired_hash,
            "seed {seed}: recovery must converge to the clean retired order"
        );
        escalations += f.telemetry.counter("hybrid_escalations");
        squashed += f.squashed;
    }
    assert!(squashed > 0, "injection must actually squash some work");
    assert!(
        escalations > 0,
        "exceptions on racy threads must escalate to basic scope"
    );
}

/// The threaded runtime under live injection: the racy workload still
/// produces the correct histogram (plain stores are WAL-undone, sub-threads
/// re-execute), races are reported, and any escalations are accounted.
#[test]
fn runtime_escalation_recovery_keeps_output_correct() {
    use gprs_core::exception::ExceptionKind;
    use gprs_workloads::kernels::text::byte_histogram;
    use gprs_workloads::programs::build_racy_histogram;

    let input: Vec<u8> = (0..120_000u32).map(|i| (i.wrapping_mul(131) % 256) as u8).collect();
    let mut b = GprsBuilder::new().workers(2).racecheck(true);
    let (_probe, collector) = build_racy_histogram(&mut b, input.clone(), 4, 16);
    let gprs = b.build();
    let ctl = gprs.controller();
    let h = std::thread::spawn(move || {
        while !ctl.is_finished() {
            ctl.inject_on_busy(ExceptionKind::SoftFault);
            std::thread::sleep(std::time::Duration::from_micros(400));
        }
    });
    let report = gprs.run().unwrap();
    h.join().unwrap();
    assert_eq!(
        report.output::<Vec<u64>>(collector),
        byte_histogram(&input).to_vec(),
        "stats: {:?}",
        report.stats
    );
    assert!(report.stats.races > 0);
    assert_eq!(
        report.telemetry.counter("hybrid_escalations"),
        report.stats.hybrid_escalations
    );
}
