//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network route to a crates registry, so this
//! workspace vendors the API subset its property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range/tuple/[`Just`]/string-pattern strategies, [`collection::vec`],
//! [`sample::subsequence`], `any::<T>()`, [`ProptestConfig::with_cases`],
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its deterministic case seed
//!   so it can be reproduced, but is not minimized.
//! - **Deterministic inputs.** Case seeds derive from the test name and
//!   case index (FNV-1a), so runs are reproducible without a seed file.
//! - String strategies support only literal characters and `[class]` with
//!   optional `{m,n}` / `{m}` / `*` / `+` / `?` repetition — the patterns
//!   this workspace uses.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed property-test case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Property-test execution configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Deterministic RNG (xoshiro256++, SplitMix64 seeding)
// ---------------------------------------------------------------------------

/// The RNG handed to [`Strategy::generate`]; deterministic per case seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a byte string — used to derive per-test base seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains into a dependent strategy produced by `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// --- string pattern strategies ---------------------------------------------

enum PatternAtom {
    Literal(char),
    Class { chars: Vec<char>, min: usize, max: usize },
}

/// Parses the simple regex subset: literals and `[class]` with optional
/// `{m,n}` / `{m}` / `*` / `+` / `?`.
fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '[' {
            let mut class = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let c = chars.next().unwrap_or_else(|| {
                    panic!("pattern shim: unterminated class in {pat:?}")
                });
                match c {
                    ']' => break,
                    '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                        let lo = prev.expect("prev set");
                        let hi = chars.next().expect("peeked");
                        for ch in lo..=hi {
                            if ch != lo {
                                class.push(ch);
                            }
                        }
                        prev = None;
                    }
                    other => {
                        class.push(other);
                        prev = Some(other);
                    }
                }
            }
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repeat lower bound"),
                            hi.trim().parse().expect("repeat upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("repeat count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 32)
                }
                Some('+') => {
                    chars.next();
                    (1, 32)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(!class.is_empty(), "pattern shim: empty class in {pat:?}");
            atoms.push(PatternAtom::Class { chars: class, min, max });
        } else {
            atoms.push(PatternAtom::Literal(c));
        }
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            match atom {
                PatternAtom::Literal(c) => out.push(c),
                PatternAtom::Class { chars, min, max } => {
                    let n = min + rng.below((max - min + 1) as u64) as usize;
                    for _ in 0..n {
                        out.push(chars[rng.below(chars.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// --- any::<T>() -------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

impl Strategy for AnyStrategy<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyStrategy<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// collection / sample
// ---------------------------------------------------------------------------

/// Size specifications accepted by [`collection::vec`] and
/// [`sample::subsequence`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for order-preserving subsequences of `values` whose length
    /// is drawn from `size`.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        SubsequenceStrategy {
            values,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    pub struct SubsequenceStrategy<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let k = self.size.draw(rng).min(n);
            // Partial Fisher-Yates over the index set, then restore order.
            let mut ix: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + rng.below((n - i) as u64) as usize;
                ix.swap(i, j);
            }
            let mut chosen: Vec<usize> = ix[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Test-runner internals used by the [`proptest!`] expansion.
pub mod runner {
    use super::{fnv1a, ProptestConfig, TestCaseError, TestRng};

    /// Runs `case` for each configured case with a deterministic RNG, and
    /// panics (failing the enclosing `#[test]`) on the first failure.
    pub fn run(
        config: ProptestConfig,
        file: &str,
        test_name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = fnv1a(file.as_bytes()) ^ fnv1a(test_name.as_bytes());
        for i in 0..config.cases {
            let seed = base.wrapping_add((i as u64).wrapping_mul(0x9e3779b97f4a7c15));
            let mut rng = TestRng::from_seed(seed);
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest shim: {test_name} failed at case {i}/{} (seed {seed:#x}): {e}",
                    config.cases
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random draws.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(
                    $cfg,
                    file!(),
                    stringify!($name),
                    |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        let __result: ::std::result::Result<(), $crate::TestCaseError> =
                            (|| { $body Ok(()) })();
                        __result
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), __l, __r
            )));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            )));
        }
    }};
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -4i64..9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..9).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::sample::subsequence((0..n).collect::<Vec<_>>(), 0..=n))
        })) {
            let (n, sub) = pair;
            prop_assert!(sub.len() <= n);
            for w in sub.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }

        #[test]
        fn string_pattern_matches(s in "[a-c ]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = 1u64..1000;
        let a: Vec<u64> = {
            let mut rng = TestRng::from_seed(5);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_seed(5);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
