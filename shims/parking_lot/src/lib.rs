//! Offline shim for the `parking_lot` crate.
//!
//! Provides [`Mutex`] and [`Condvar`] with parking_lot's non-poisoning API
//! (`lock()` returns the guard directly; `Condvar::wait` takes `&mut
//! MutexGuard`), implemented over `std::sync`. Poisoning is translated into
//! "ignore the poison and take the data" — matching parking_lot semantics,
//! where a panicking critical section does not poison the lock.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Atomically releases the guard's mutex and blocks until notified or
    /// the timeout elapses. Returns a [`WaitTimeoutResult`] reporting
    /// whether the wait timed out (parking_lot's signature).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
