//! Offline shim for the `criterion` crate.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!`, `black_box`) as a plain wall-clock
//! harness. Each `iter` call auto-calibrates an inner batch size so one
//! sample spans at least ~1 ms, then reports the median and minimum
//! nanoseconds per iteration over `sample_size` samples.
//!
//! Statistical analysis, plotting, and baseline comparison from real
//! criterion are intentionally out of scope; benches here are run for
//! relative, same-process comparisons.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_bench("", &name.into(), sample_size, f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` under this group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_bench(&self.name, &name.into(), self.sample_size, f);
    }

    /// Ends the group (report output is per-bench; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench(group: &str, name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    b.samples_ns.sort_by(|a, c| a.partial_cmp(c).expect("finite"));
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.samples_ns.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let min = b.samples_ns[0];
    println!("bench {label:<48} median {median:>14.1} ns/iter   (min {min:.1})");
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(1);

impl Bencher {
    /// Times `f`, auto-batching until one sample spans ≥ ~1 ms.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + calibration: grow the batch until it is long enough to
        // dominate timer overhead.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= TARGET_SAMPLE || iters >= (1 << 20) {
                break;
            }
            iters = iters.saturating_mul(8);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = start.elapsed();
            self.samples_ns
                .push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate batch size on one throwaway sample.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = start.elapsed();
            if dt >= TARGET_SAMPLE || iters >= (1 << 16) {
                break;
            }
            iters = iters.saturating_mul(8);
        }
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = start.elapsed();
            self.samples_ns
                .push(dt.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's two forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group!(name = n; config = expr; targets = t, ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    );

    #[test]
    fn harness_runs() {
        benches();
    }
}
