//! Offline shim for the `rand` crate.
//!
//! The build environment has no network route to a crates registry, so this
//! workspace vendors the exact API subset it uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`] and sampled via
//! [`Rng::gen_range`] over integer and `f64` half-open ranges.
//!
//! The generator is xoshiro256++ with SplitMix64 seed expansion — the same
//! algorithm family the real `rand` crate uses for `SmallRng` on 64-bit
//! targets. Streams are deterministic per seed but are NOT bit-compatible
//! with any particular upstream `rand` release; everything in this
//! repository that consumes randomness asserts seed-stable or qualitative
//! properties, never upstream-exact sequences.

use std::ops::Range;

/// Seedable random number generator constructors.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling operations over a random number generator.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Types sampleable without an explicit range (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased integer sampling in `[0, bound)` via Lemire's method with a
/// widening-multiply rejection loop.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Random number generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&v));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }
}
