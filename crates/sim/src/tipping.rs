//! Tipping-rate search (Figure 11(c)).
//!
//! The *tipping rate* is the exception rate beyond which a program cannot
//! complete: the same computations keep getting discarded faster than they
//! retire. The paper measures it by stressing each scheme at increasing
//! rates; this module bisects on the simulator.

use crate::costs::CYCLES_PER_SEC;
use crate::free::{run_free, FreeRunConfig};
use crate::gprs::{run_gprs, GprsSimConfig};
use crate::workload::Workload;
use gprs_core::exception::InjectorConfig;

/// A scheme under tipping-rate test.
#[derive(Debug, Clone)]
pub enum TippingScheme {
    /// Coordinated CPR with the embedded configuration (exceptions ignored;
    /// the search installs its own injector).
    Cpr(FreeRunConfig),
    /// GPRS with the embedded configuration (likewise).
    Gprs(GprsSimConfig),
}

impl TippingScheme {
    fn completes(&self, workload: &Workload, rate: f64, seed: u64) -> bool {
        let contexts = match self {
            TippingScheme::Cpr(c) => c.contexts,
            TippingScheme::Gprs(c) => c.contexts,
        };
        let inj = InjectorConfig::paper(rate, contexts, CYCLES_PER_SEC).with_seed(seed);
        match self {
            TippingScheme::Cpr(c) => {
                let cfg = c.clone().with_exceptions(inj);
                run_free(workload, &cfg).completed
            }
            TippingScheme::Gprs(c) => {
                let cfg = c.clone().with_exceptions(inj);
                run_gprs(workload, &cfg).completed
            }
        }
    }
}

/// Result of a tipping search.
///
/// The pair is a verified bracket in the common case: `completes_at` is a
/// rate at which the run was observed to complete and `fails_at` one at which
/// it was observed to fail. Three degenerate outcomes are represented
/// explicitly rather than by an untested pair:
///
/// - never tipped up to the search cap → `fails_at` is infinite;
/// - failed at every positive tested rate but completed exception-free →
///   `completes_at` is `0.0` with a finite positive `fails_at`;
/// - failed even at exception rate **zero** → both bounds are `0.0`
///   ([`Self::is_structural_dnc`]): the run cannot complete under its time
///   cap regardless of exceptions, so it has no tipping rate at all and
///   reporting a positive `fails_at` would misattribute the DNC to
///   exception pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TippingPoint {
    /// Highest tested rate (exceptions/sec) at which the run completed, or
    /// `0.0` if no tested rate completed.
    pub completes_at: f64,
    /// Lowest tested rate at which it did not complete, infinity if every
    /// tested rate completed, or `0.0` if even the exception-free run
    /// failed.
    pub fails_at: f64,
}

impl TippingPoint {
    /// Whether both bounds were observed (neither degenerate outcome).
    pub fn is_bracketed(&self) -> bool {
        self.completes_at > 0.0 && self.fails_at.is_finite() && self.fails_at > 0.0
    }

    /// Whether the run failed even at exception rate zero — a structural
    /// did-not-complete (time cap below the fault-free finish), not a
    /// tipping phenomenon.
    pub fn is_structural_dnc(&self) -> bool {
        self.completes_at == 0.0 && self.fails_at == 0.0
    }

    /// Midpoint estimate of the tipping rate.
    ///
    /// For an untippable scheme (`fails_at` infinite) this returns the
    /// highest verified completing rate — a lower bound — instead of
    /// averaging an unbracketed pair into infinity. For a scheme that failed
    /// at every positive tested rate it returns the midpoint of
    /// `[0, fails_at]`, which collapses toward zero with the bracket; a
    /// structural DNC estimates `0.0`.
    pub fn estimate(&self) -> f64 {
        if self.fails_at.is_infinite() {
            return self.completes_at;
        }
        0.5 * (self.completes_at + self.fails_at)
    }
}

/// Finds the tipping rate by exponential bracketing followed by bisection.
///
/// `lo_hint` should be a rate at which the run completes (it is re-verified;
/// if even `lo_hint` fails, the search brackets downward, ultimately probing
/// exception rate zero to distinguish "tips at vanishing rates" from a
/// structural DNC). Non-positive and NaN hints are sanitized to a small
/// positive rate. `tolerance` is the relative bracket width at which the
/// bisection stops; any tolerance (including `0.0`) terminates, because the
/// bisection also stops when the midpoint can no longer be distinguished
/// from the bracket ends in `f64`.
pub fn find_tipping_rate(
    workload: &Workload,
    scheme: &TippingScheme,
    lo_hint: f64,
    tolerance: f64,
    seed: u64,
) -> TippingPoint {
    // `f64::max` ignores NaN, so a NaN hint also lands on the floor value.
    let mut lo = lo_hint.max(1e-4);
    let mut hi;
    if scheme.completes(workload, lo, seed) {
        // Bracket upward.
        hi = lo * 2.0;
        let mut guard = 0;
        while scheme.completes(workload, hi, seed) {
            lo = hi;
            hi *= 2.0;
            guard += 1;
            if guard > 40 {
                // Effectively untippable at any sane rate.
                return TippingPoint {
                    completes_at: lo,
                    fails_at: f64::INFINITY,
                };
            }
        }
    } else {
        // Bracket downward: find a rate that actually completes, so the
        // bisection never reports an untested `completes_at`.
        hi = lo;
        lo *= 0.5;
        let mut guard = 0;
        while !scheme.completes(workload, lo, seed) {
            hi = lo;
            lo *= 0.5;
            guard += 1;
            if guard > 40 {
                // Fails even at vanishing rates. Probe exception rate zero
                // — the one rate exponential halving can never reach — to
                // tell a tipping collapse from a structural DNC whose time
                // cap is below even the fault-free finish.
                return if scheme.completes(workload, 0.0, seed) {
                    TippingPoint {
                        completes_at: 0.0,
                        fails_at: hi,
                    }
                } else {
                    TippingPoint {
                        completes_at: 0.0,
                        fails_at: 0.0,
                    }
                };
            }
        }
    }
    // Bisect. The midpoint guard stops the loop once `mid` collides with a
    // bracket end (ulp-wide bracket): without it, `tolerance = 0` — or any
    // tolerance below the bracket's relative ulp — would loop forever
    // re-testing `lo`, and the final pair could report an untested bound.
    while hi - lo > tolerance * hi.max(1e-9) {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if scheme.completes(workload, mid, seed) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    TippingPoint {
        completes_at: lo,
        fails_at: hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::secs_to_cycles;
    use crate::workload::{Segment, SimOp, ThreadSpec};
    use gprs_core::ids::{GroupId, ThreadId};

    fn workload(threads: u32, segs: usize, work: u64) -> Workload {
        Workload::new(
            "tip",
            (0..threads)
                .map(|i| {
                    ThreadSpec::new(
                        ThreadId::new(i),
                        GroupId::new(0),
                        1,
                        (0..segs)
                            .map(|_| Segment::new(work, SimOp::Atomic {
                                atomic: gprs_core::ids::AtomicId::new(0),
                            }))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn cpr_tipping_is_flat_gprs_scales() {
        let cap = secs_to_cycles(300.0);
        let w4 = workload(4, 40, secs_to_cycles(0.05));
        let w8 = workload(8, 40, secs_to_cycles(0.05));
        let interval = secs_to_cycles(0.5);

        let cpr4 = find_tipping_rate(
            &w4,
            &TippingScheme::Cpr(FreeRunConfig::cpr(4, interval).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        let cpr8 = find_tipping_rate(
            &w8,
            &TippingScheme::Cpr(FreeRunConfig::cpr(8, interval).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        let g4 = find_tipping_rate(
            &w4,
            &TippingScheme::Gprs(GprsSimConfig::balance_aware(4).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        let g8 = find_tipping_rate(
            &w8,
            &TippingScheme::Gprs(GprsSimConfig::balance_aware(8).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        // CPR: flat in contexts (within bisection noise).
        let cpr_ratio = cpr8.estimate() / cpr4.estimate();
        assert!(cpr_ratio < 2.0, "CPR tipping should not scale: {cpr_ratio}");
        // GPRS: substantially above CPR and growing with contexts.
        assert!(g4.estimate() > cpr4.estimate());
        assert!(
            g8.estimate() > g4.estimate() * 1.4,
            "GPRS tipping should scale: {} -> {}",
            g4.estimate(),
            g8.estimate()
        );
    }

    #[test]
    fn untippable_scheme_reports_finite_lower_bound() {
        // A run that finishes well inside the 400k-cycle detection latency
        // never sees a delivered exception, so it completes at every rate
        // and the upward bracket runs into the search cap.
        let w = workload(1, 1, 1_000);
        let tp = find_tipping_rate(
            &w,
            &TippingScheme::Gprs(
                GprsSimConfig::balance_aware(1).with_time_cap(secs_to_cycles(10.0)),
            ),
            0.5,
            0.2,
            11,
        );
        assert!(tp.fails_at.is_infinite(), "never tipped: {tp:?}");
        assert!(!tp.is_bracketed());
        assert!(
            tp.estimate().is_finite() && tp.estimate() >= 0.5,
            "estimate must be the verified lower bound, got {}",
            tp.estimate()
        );
    }

    #[test]
    fn always_failing_scheme_reports_structural_dnc() {
        // Time cap below the exception-free completion time: the scheme
        // fails at every rate *including zero*, so the downward bracket
        // bottoms out, probes rate 0, and reports a structural DNC instead
        // of blaming a positive `fails_at` on exception pressure.
        let w = workload(2, 20, secs_to_cycles(0.05));
        let tp = find_tipping_rate(
            &w,
            &TippingScheme::Cpr(
                FreeRunConfig::cpr(2, secs_to_cycles(0.5)).with_time_cap(secs_to_cycles(0.01)),
            ),
            4.0,
            0.25,
            7,
        );
        assert!(tp.is_structural_dnc(), "cap below fault-free finish: {tp:?}");
        assert_eq!(tp.completes_at, 0.0);
        assert_eq!(tp.fails_at, 0.0);
        assert!(!tp.is_bracketed());
        assert_eq!(tp.estimate(), 0.0);
    }

    #[test]
    fn zero_tolerance_bisection_terminates_with_verified_bracket() {
        // tolerance = 0 can never be met by the width test alone; the
        // midpoint guard must end the bisection at an ulp-wide bracket
        // whose two ends were both actually tested.
        let cap = secs_to_cycles(60.0);
        let w = workload(2, 10, secs_to_cycles(0.05));
        let tp = find_tipping_rate(
            &w,
            &TippingScheme::Cpr(
                FreeRunConfig::cpr(2, secs_to_cycles(0.5)).with_time_cap(cap),
            ),
            0.5,
            0.0,
            3,
        );
        assert!(tp.is_bracketed(), "{tp:?}");
        assert!(tp.completes_at < tp.fails_at);
        // An ulp-wide bracket: the next representable f64 above
        // `completes_at` reaches `fails_at`.
        let ulp_gap = (tp.fails_at - tp.completes_at) / tp.completes_at;
        assert!(ulp_gap < 1e-12, "bracket not tight: {tp:?}");
    }

    #[test]
    fn nonpositive_and_nan_hints_are_sanitized() {
        let cap = secs_to_cycles(60.0);
        let w = workload(2, 10, secs_to_cycles(0.05));
        let scheme = TippingScheme::Cpr(
            FreeRunConfig::cpr(2, secs_to_cycles(0.5)).with_time_cap(cap),
        );
        for hint in [0.0, -3.0, f64::NAN] {
            let tp = find_tipping_rate(&w, &scheme, hint, 0.3, 3);
            assert!(
                tp.completes_at.is_finite() && tp.completes_at >= 0.0,
                "hint {hint}: {tp:?}"
            );
            assert!(tp.fails_at > tp.completes_at, "hint {hint}: {tp:?}");
        }
    }

    #[test]
    fn bracket_handles_failing_hint() {
        let cap = secs_to_cycles(60.0);
        let w = workload(2, 20, secs_to_cycles(0.05));
        let tp = find_tipping_rate(
            &w,
            &TippingScheme::Cpr(
                FreeRunConfig::cpr(2, secs_to_cycles(0.5)).with_time_cap(cap),
            ),
            1000.0, // far past tipping
            0.25,
            7,
        );
        assert!(tp.fails_at <= 1000.0);
        assert!(tp.completes_at < tp.fails_at);
    }
}
