//! Tipping-rate search (Figure 11(c)).
//!
//! The *tipping rate* is the exception rate beyond which a program cannot
//! complete: the same computations keep getting discarded faster than they
//! retire. The paper measures it by stressing each scheme at increasing
//! rates; this module bisects on the simulator.

use crate::costs::CYCLES_PER_SEC;
use crate::free::{run_free, FreeRunConfig};
use crate::gprs::{run_gprs, GprsSimConfig};
use crate::workload::Workload;
use gprs_core::exception::InjectorConfig;

/// A scheme under tipping-rate test.
#[derive(Debug, Clone)]
pub enum TippingScheme {
    /// Coordinated CPR with the embedded configuration (exceptions ignored;
    /// the search installs its own injector).
    Cpr(FreeRunConfig),
    /// GPRS with the embedded configuration (likewise).
    Gprs(GprsSimConfig),
}

impl TippingScheme {
    fn completes(&self, workload: &Workload, rate: f64, seed: u64) -> bool {
        let contexts = match self {
            TippingScheme::Cpr(c) => c.contexts,
            TippingScheme::Gprs(c) => c.contexts,
        };
        let inj = InjectorConfig::paper(rate, contexts, CYCLES_PER_SEC).with_seed(seed);
        match self {
            TippingScheme::Cpr(c) => {
                let cfg = c.clone().with_exceptions(inj);
                run_free(workload, &cfg).completed
            }
            TippingScheme::Gprs(c) => {
                let cfg = c.clone().with_exceptions(inj);
                run_gprs(workload, &cfg).completed
            }
        }
    }
}

/// Result of a tipping search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TippingPoint {
    /// Highest tested rate (exceptions/sec) at which the run completed.
    pub completes_at: f64,
    /// Lowest tested rate at which it did not.
    pub fails_at: f64,
}

impl TippingPoint {
    /// Midpoint estimate of the tipping rate.
    pub fn estimate(&self) -> f64 {
        0.5 * (self.completes_at + self.fails_at)
    }
}

/// Finds the tipping rate by exponential bracketing followed by bisection.
///
/// `lo_hint` must be a rate at which the run completes (it is re-verified;
/// if even `lo_hint` fails, the bracket `[0, lo_hint]` is bisected).
/// `tolerance` is the relative bracket width at which the search stops.
pub fn find_tipping_rate(
    workload: &Workload,
    scheme: &TippingScheme,
    lo_hint: f64,
    tolerance: f64,
    seed: u64,
) -> TippingPoint {
    let mut lo = lo_hint.max(1e-4);
    let mut hi;
    if scheme.completes(workload, lo, seed) {
        // Bracket upward.
        hi = lo * 2.0;
        let mut guard = 0;
        while scheme.completes(workload, hi, seed) {
            lo = hi;
            hi *= 2.0;
            guard += 1;
            if guard > 40 {
                // Effectively untippable at any sane rate.
                return TippingPoint {
                    completes_at: lo,
                    fails_at: f64::INFINITY,
                };
            }
        }
    } else {
        hi = lo;
        lo = 0.0;
    }
    // Bisect.
    while hi - lo > tolerance * hi.max(1e-9) {
        let mid = 0.5 * (lo + hi);
        if scheme.completes(workload, mid, seed) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    TippingPoint {
        completes_at: lo,
        fails_at: hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::secs_to_cycles;
    use crate::workload::{Segment, SimOp, ThreadSpec};
    use gprs_core::ids::{GroupId, ThreadId};

    fn workload(threads: u32, segs: usize, work: u64) -> Workload {
        Workload::new(
            "tip",
            (0..threads)
                .map(|i| {
                    ThreadSpec::new(
                        ThreadId::new(i),
                        GroupId::new(0),
                        1,
                        (0..segs)
                            .map(|_| Segment::new(work, SimOp::Atomic {
                                atomic: gprs_core::ids::AtomicId::new(0),
                            }))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn cpr_tipping_is_flat_gprs_scales() {
        let cap = secs_to_cycles(300.0);
        let w4 = workload(4, 40, secs_to_cycles(0.05));
        let w8 = workload(8, 40, secs_to_cycles(0.05));
        let interval = secs_to_cycles(0.5);

        let cpr4 = find_tipping_rate(
            &w4,
            &TippingScheme::Cpr(FreeRunConfig::cpr(4, interval).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        let cpr8 = find_tipping_rate(
            &w8,
            &TippingScheme::Cpr(FreeRunConfig::cpr(8, interval).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        let g4 = find_tipping_rate(
            &w4,
            &TippingScheme::Gprs(GprsSimConfig::balance_aware(4).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        let g8 = find_tipping_rate(
            &w8,
            &TippingScheme::Gprs(GprsSimConfig::balance_aware(8).with_time_cap(cap)),
            0.5,
            0.2,
            42,
        );
        // CPR: flat in contexts (within bisection noise).
        let cpr_ratio = cpr8.estimate() / cpr4.estimate();
        assert!(cpr_ratio < 2.0, "CPR tipping should not scale: {cpr_ratio}");
        // GPRS: substantially above CPR and growing with contexts.
        assert!(g4.estimate() > cpr4.estimate());
        assert!(
            g8.estimate() > g4.estimate() * 1.4,
            "GPRS tipping should scale: {} -> {}",
            g4.estimate(),
            g8.estimate()
        );
    }

    #[test]
    fn bracket_handles_failing_hint() {
        let cap = secs_to_cycles(60.0);
        let w = workload(2, 20, secs_to_cycles(0.05));
        let tp = find_tipping_rate(
            &w,
            &TippingScheme::Cpr(
                FreeRunConfig::cpr(2, secs_to_cycles(0.5)).with_time_cap(cap),
            ),
            1000.0, // far past tipping
            0.25,
            7,
        );
        assert!(tp.fails_at <= 1000.0);
        assert!(tp.completes_at < tp.fails_at);
    }
}
