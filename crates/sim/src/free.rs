//! The free-running engine: the Pthreads baseline and coordinated
//! checkpoint-and-recovery (P-CPR) on top of it.
//!
//! Threads execute their segments as soon as data dependences allow —
//! no deterministic ordering. In CPR mode, periodic coordinated checkpoints
//! quiesce the program behind two global barriers (`§2.3`, Figure 3(a)), and
//! every exception rolls the whole program back to the last checkpoint,
//! charging the lost work and the restore wait to the wall clock.
//!
//! ## Approximation
//!
//! Rollback is modeled as a *wall-clock penalty* rather than a re-execution
//! of the event stream: the work completed since the last checkpoint plus
//! `t_w` is added to the wall time, exactly the quantity a real rollback
//! re-spends. Subsequent exceptions arrive in wall time, so they land inside
//! redo intervals just as they would in a real run; when the per-exception
//! loss exceeds the exception inter-arrival time the wall clock diverges and
//! the run is reported DNC — the paper's tipping behaviour.
//!
//! Checkpoint epochs are *preemptive*: they fire at the configured wall-time
//! cadence, quiescing every live thread wherever it stands (mid-segment
//! included) for the duration of the slowest record, exactly as the paper's
//! application-level checkpointing is free to barrier at its own frequency.
//! An earlier version only quiesced at segment boundaries, which capped the
//! checkpoint frequency at the workload's sub-thread granularity and made
//! coarse-segment programs (RE's ~1.8 s segments) lose whole segments per
//! rollback — a DNC the paper's CPR baseline does not have.

use crate::costs::MechCosts;
use crate::result::SimResult;
use crate::workload::{SimOp, Workload};
use gprs_core::exception::{ExceptionInjector, InjectorConfig};
use gprs_core::ids::{BarrierId, ChannelId, LockId};
use gprs_telemetry::{RetiredOrderHash, ScheduleHash, Telemetry, TelemetryConfig, TraceEvent};
use std::cmp::Reverse;

/// Ring index for events not attributable to a simulated context; routed to
/// the external ring by [`Telemetry::record`].
const EXTERNAL_RING: usize = usize::MAX;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Coordinated-CPR parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CprConfig {
    /// Cycles between checkpoint epochs (the paper uses the programs' sync
    /// frequency, rate-limited to 1/s for Pbzip2 and 5/s for Dedup).
    pub interval_cycles: u64,
}

/// Configuration of a free-running simulation.
#[derive(Debug, Clone)]
pub struct FreeRunConfig {
    /// Hardware contexts `n`.
    pub contexts: u32,
    /// Mechanism costs.
    pub costs: MechCosts,
    /// `Some` enables coordinated CPR; `None` is the plain Pthreads
    /// baseline.
    pub cpr: Option<CprConfig>,
    /// Exception injection (requires `cpr`; the Pthreads baseline has no
    /// recovery and is always run exception-free, as in the paper).
    pub exceptions: Option<InjectorConfig>,
    /// Wall-clock cap in cycles; exceeding it reports DNC.
    pub time_cap_cycles: u64,
    /// Telemetry recording (events and metrics; the free engines have no
    /// deterministic grant order, so the determinism hashes stay empty).
    pub telemetry: TelemetryConfig,
}

impl FreeRunConfig {
    /// A Pthreads baseline on `n` contexts with a generous time cap.
    pub fn pthreads(contexts: u32) -> Self {
        FreeRunConfig {
            contexts,
            costs: MechCosts::paper_default(),
            cpr: None,
            exceptions: None,
            time_cap_cycles: u64::MAX / 4,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// A coordinated-CPR run on `n` contexts with the given checkpoint
    /// interval.
    pub fn cpr(contexts: u32, interval_cycles: u64) -> Self {
        FreeRunConfig {
            cpr: Some(CprConfig { interval_cycles }),
            ..Self::pthreads(contexts)
        }
    }

    /// Enables exception injection.
    pub fn with_exceptions(mut self, injector: InjectorConfig) -> Self {
        self.exceptions = Some(injector);
        self
    }

    /// Sets the DNC cap.
    pub fn with_time_cap(mut self, cycles: u64) -> Self {
        self.time_cap_cycles = cycles;
        self
    }

    /// Sets the telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Segment work in progress; a completion event is in the heap.
    Running,
    /// Parked on an empty channel.
    PopWait,
    /// Waiting for barrier peers.
    BarrierWait,
    Done,
}

/// Heap sentinel for checkpoint-epoch events (no thread index).
const CKPT_EVENT: usize = usize::MAX;

#[derive(Debug)]
struct ThState {
    seg_ix: usize,
    phase: Phase,
}

#[derive(Debug, Default)]
struct ChanState {
    items: usize,
    waiters: VecDeque<usize>,
}

/// Runs a workload on the free-running engine.
///
/// # Examples
/// ```
/// use gprs_sim::free::{run_free, FreeRunConfig};
/// use gprs_sim::workload::{Segment, SimOp, ThreadSpec, Workload};
/// use gprs_core::ids::{GroupId, ThreadId};
/// let w = Workload::new("tiny", vec![
///     ThreadSpec::new(ThreadId::new(0), GroupId::new(0), 1,
///                     vec![Segment::new(1_000, SimOp::End)]),
/// ]);
/// let r = run_free(&w, &FreeRunConfig::pthreads(4));
/// assert!(r.completed);
/// assert!(r.finish_cycles >= 1_000);
/// ```
pub fn run_free(workload: &Workload, config: &FreeRunConfig) -> SimResult {
    Free::new(workload, config).run()
}

struct Free<'a> {
    w: &'a Workload,
    cfg: &'a FreeRunConfig,
    threads: Vec<ThState>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    locks: HashMap<LockId, u64>,
    chans: HashMap<ChannelId, ChanState>,
    barrier_arrived: HashMap<BarrierId, Vec<(usize, u64)>>,
    barrier_participants: HashMap<BarrierId, u32>,
    live: usize,
    // Exception state (wall = program + penalty). `last_safe_wall` is the
    // wall time of the most recent checkpoint completion or rollback
    // completion: progress made before it survives the next rollback.
    injector: Option<ExceptionInjector>,
    latency: u64,
    penalty: u64,
    last_safe_wall: u64,
    // Dilation for oversubscribed Pthreads scheduling.
    dilation: f64,
    switch_cost: u64,
    res: SimResult,
    finish: u64,
    tel: Telemetry,
    /// Checkpoint epochs released so far (the CPR events' epoch stamp).
    epochs: u64,
}

impl<'a> Free<'a> {
    fn new(w: &'a Workload, cfg: &'a FreeRunConfig) -> Self {
        let scheme = if cfg.cpr.is_some() { "P-CPR" } else { "Pthreads" };
        let t = w.threads.len() as f64;
        let n = f64::from(cfg.contexts.max(1));
        let over = (t - n).max(0.0);
        let dilation = (t / n).max(1.0) * (1.0 + cfg.costs.oversub_factor * over);
        let switch_cost = if t > n { cfg.costs.thread_switch } else { 0 };
        let injector = cfg
            .exceptions
            .clone()
            .filter(|_| cfg.cpr.is_some())
            .map(ExceptionInjector::new);
        let latency = cfg
            .exceptions
            .as_ref()
            .map(|e| e.detection_latency)
            .unwrap_or(0);
        Free {
            w,
            cfg,
            threads: Vec::new(),
            heap: BinaryHeap::new(),
            locks: HashMap::new(),
            chans: HashMap::new(),
            barrier_arrived: HashMap::new(),
            barrier_participants: w
                .barrier_participants()
                .into_iter()
                .collect(),
            live: w.threads.len(),
            injector,
            latency,
            penalty: 0,
            last_safe_wall: 0,
            dilation,
            switch_cost,
            res: SimResult::new(w.name.clone(), scheme),
            finish: 0,
            tel: Telemetry::new(&cfg.telemetry, cfg.contexts.max(1) as usize),
            epochs: 0,
        }
    }

    /// Seals the telemetry summary into the result (every exit path). The
    /// free engines have no grant order, so both hashes stay empty.
    fn finish_result(mut self) -> SimResult {
        self.res.telemetry =
            self.tel
                .summarize(&ScheduleHash::new(), &RetiredOrderHash::new(), Vec::new());
        self.res
    }

    fn dilate(&self, work: u64) -> u64 {
        (work as f64 * self.dilation) as u64 + self.switch_cost
    }

    /// Schedules the start-of-segment computation of `th` at `now`.
    fn schedule(&mut self, th: usize, now: u64) {
        let seg = self.w.threads[th].segments[self.threads[th].seg_ix];
        let mut start = now;
        if let Some(m) = seg.nested {
            // The body's nested critical section serializes the whole body
            // against other holders of `m` (free-running threads block on
            // the inner mutex mid-body).
            start = start.max(self.locks.get(&m).copied().unwrap_or(0));
        }
        let end = start + self.dilate(seg.work);
        if let Some(m) = seg.nested {
            self.locks.insert(m, end);
        }
        self.threads[th].phase = Phase::Running;
        self.heap.push(Reverse((end, th)));
    }

    /// Advances `th` past its current segment's op and schedules the next.
    fn advance(&mut self, th: usize, now: u64) {
        self.threads[th].seg_ix += 1;
        self.schedule(th, now);
    }

    /// Drains exceptions striking the running program, charging CPR
    /// rollback penalties. Returns `false` on divergence (DNC).
    ///
    /// While the program runs (`finishing == false`), every exception
    /// reported up to wall time `program_now + penalty` rolls it back to the
    /// last safe point. Once the last event has executed
    /// (`finishing == true`), only exceptions *raised* before the
    /// (penalty-extended) wall finish can still strike, and a rollback can
    /// lose at most the work remaining after the last safe point.
    fn drain_exceptions(&mut self, program_now: u64, finishing: bool) -> bool {
        if self.injector.is_none() {
            return true;
        }
        // Divergence guard: a livelocked run (penalty growing faster than
        // exceptions arrive) would otherwise drain arrivals forever under a
        // generous time cap.
        let mut drained = 0u64;
        loop {
            drained += 1;
            if drained > 2_000_000 {
                return false;
            }
            let wall_finish = program_now.saturating_add(self.penalty);
            let inj = self.injector.as_mut().expect("checked above");
            let Some(next_raise) = inj.peek_next() else {
                return true;
            };
            let report = next_raise.saturating_add(self.latency);
            let admit = if finishing {
                next_raise < wall_finish
            } else {
                report <= wall_finish
            };
            if !admit {
                return true;
            }
            let e = inj.next_before(next_raise + 1).expect("peeked arrival");
            self.res.exceptions += 1;
            if e.scope == gprs_core::exception::ExceptionScope::Local {
                // Local exceptions need no rollback even under CPR: they
                // are handled precisely on the victim context (`§2.2`).
                self.res.exceptions_ignored += 1;
                continue;
            }
            // The rollback discards everything executed since the last safe
            // point (checkpoint completion or previous rollback completion),
            // then pays the restore wait. In the finishing phase the program
            // stops making progress at the wall finish, capping the loss.
            let progress_end = if finishing {
                report.min(wall_finish)
            } else {
                report
            };
            // Restoring the checkpoint re-reads the recorded program state
            // from stable storage, so the wait scales with the state size.
            let restore = self.cfg.costs.restore_wait + self.cfg.costs.cpr_restore;
            let lost = progress_end.saturating_sub(self.last_safe_wall) + restore;
            self.penalty += lost;
            self.last_safe_wall = progress_end + restore;
            self.res.redo_cycles += lost;
            self.res.squashed += 1; // one global rollback
            if self.tel.enabled() {
                self.tel.metrics.cpr_restores.inc();
                self.tel
                    .record(EXTERNAL_RING, TraceEvent::CprRestore { epoch: self.epochs });
            }
            if program_now.saturating_add(self.penalty) > self.cfg.time_cap_cycles {
                return false;
            }
        }
    }

    /// Takes a preemptive checkpoint epoch at wall time `t`: every live
    /// thread quiesces where it stands (mid-segment included), the epoch's
    /// state is recorded, and in-flight work resumes delayed by the barrier
    /// plus the slowest record. The cadence is the configured interval, not
    /// the workload's segment boundaries.
    ///
    /// Returns `false` if the program can make no further progress (no
    /// thread is computing and none can ever be woken): an ill-formed
    /// deadlocked trace, reported DNC by the caller.
    fn take_checkpoint(&mut self, t: u64) -> bool {
        if !self.threads.iter().any(|t| t.phase == Phase::Running) {
            return false;
        }
        let mut max_record = 0;
        let mut epoch_bytes = 0u64;
        let mut recorded = 0u64;
        for (th, state) in self.threads.iter().enumerate() {
            if state.phase == Phase::Done {
                continue;
            }
            let seg = &self.w.threads[th].segments[state.seg_ix];
            let cost = self.cfg.costs.ckpt_cost(seg.ckpt_bytes);
            max_record = max_record.max(cost);
            epoch_bytes += seg.ckpt_bytes;
            self.res.ckpt_cycles += cost;
            self.res.checkpoints += 1;
            recorded += 1;
        }
        self.epochs += 1;
        if self.tel.enabled() {
            let m = &self.tel.metrics;
            m.cpr_barriers.inc();
            m.cpr_records.inc();
            m.checkpoints.add(recorded);
            m.checkpoint_bytes.add(epoch_bytes);
            m.checkpoint_size.record(epoch_bytes);
            self.tel
                .record(EXTERNAL_RING, TraceEvent::CprBarrier { epoch: self.epochs });
            self.tel.record(
                EXTERNAL_RING,
                TraceEvent::CprRecord { epoch: self.epochs, bytes: epoch_bytes },
            );
        }
        let delay = self.cfg.costs.cpr_barrier + max_record + self.cfg.costs.cpr_record;
        self.res.ckpt_cycles += self.cfg.costs.cpr_record;
        // The quiesce stalls every in-flight completion for `delay`.
        let pending: Vec<(u64, usize)> =
            self.heap.drain().map(|Reverse(e)| e).collect();
        for (when, th) in pending {
            self.heap.push(Reverse((when + delay, th)));
        }
        let release = t + delay;
        self.last_safe_wall = release + self.penalty;
        let next = release + self.cfg.cpr.expect("cpr mode").interval_cycles;
        self.heap.push(Reverse((next, CKPT_EVENT)));
        true
    }

    /// Executes the op closing `th`'s current segment at time `now`.
    fn exec_op(&mut self, th: usize, now: u64) {
        let seg = self.w.threads[th].segments[self.threads[th].seg_ix];
        let op_cost = self.cfg.costs.sync_op;
        match seg.op {
            SimOp::Lock { lock, cs_work } => {
                let free_at = self.locks.get(&lock).copied().unwrap_or(0);
                let acq = now.max(free_at);
                let end_cs = acq + self.dilate(cs_work) + op_cost;
                self.locks.insert(lock, end_cs);
                self.advance(th, end_cs);
            }
            SimOp::Atomic { .. } => {
                self.advance(th, now + op_cost);
            }
            SimOp::Push { chan } => {
                let c = self.chans.entry(chan).or_default();
                if let Some(waiter) = c.waiters.pop_front() {
                    self.advance(waiter, now + op_cost);
                } else {
                    c.items += 1;
                }
                self.advance(th, now + op_cost);
            }
            SimOp::Pop { chan } => {
                let c = self.chans.entry(chan).or_default();
                if c.items > 0 {
                    c.items -= 1;
                    self.advance(th, now + op_cost);
                } else {
                    c.waiters.push_back(th);
                    self.threads[th].phase = Phase::PopWait;
                }
            }
            SimOp::Barrier { barrier } => {
                self.threads[th].phase = Phase::BarrierWait;
                let arrived = self.barrier_arrived.entry(barrier).or_default();
                arrived.push((th, now));
                let needed = self.barrier_participants[&barrier] as usize;
                if arrived.len() == needed {
                    let release = arrived.iter().map(|&(_, t)| t).max().unwrap() + op_cost;
                    let batch = std::mem::take(self.barrier_arrived.get_mut(&barrier).unwrap());
                    for (w, t) in batch {
                        self.res.barrier_wait_cycles += release - op_cost - t;
                        self.advance(w, release);
                    }
                }
            }
            SimOp::End => {
                self.threads[th].phase = Phase::Done;
                self.live -= 1;
                self.finish = self.finish.max(now);
            }
        }
    }

    fn run(mut self) -> SimResult {
        for _ in &self.w.threads {
            self.threads.push(ThState {
                seg_ix: 0,
                phase: Phase::Running,
            });
        }
        for th in 0..self.threads.len() {
            self.schedule(th, 0);
            self.threads[th].seg_ix = 0;
        }
        if let Some(cpr) = self.cfg.cpr {
            self.heap.push(Reverse((cpr.interval_cycles, CKPT_EVENT)));
        }

        while self.live > 0 {
            let Some(Reverse((t, th))) = self.heap.pop() else {
                // No runnable threads but some still live: the trace
                // deadlocked (ill-formed workload). Report DNC.
                self.res.finish_cycles = self.cfg.time_cap_cycles;
                return self.finish_result();
            };
            if t > self.cfg.time_cap_cycles {
                self.res.finish_cycles = self.cfg.time_cap_cycles;
                return self.finish_result();
            }
            if !self.drain_exceptions(t, false) {
                self.res.finish_cycles = self.cfg.time_cap_cycles;
                return self.finish_result();
            }
            if th == CKPT_EVENT {
                if !self.take_checkpoint(t) {
                    // Nothing is computing and nothing can wake: deadlock.
                    self.res.finish_cycles = self.cfg.time_cap_cycles;
                    return self.finish_result();
                }
                continue;
            }
            self.exec_op(th, t);
        }

        // Final drain: exceptions reported before the (penalty-extended)
        // finish time still cost rollbacks.
        if !self.drain_exceptions(self.finish, true) {
            self.res.finish_cycles = self.cfg.time_cap_cycles;
            return self.finish_result();
        }
        self.res.completed = true;
        self.res.finish_cycles = self.finish + self.penalty;
        self.finish_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{secs_to_cycles, MechCosts};
    use crate::workload::{Segment, ThreadSpec};
    use gprs_core::ids::{GroupId, ThreadId};

    fn spec(th: u32, segs: Vec<Segment>) -> ThreadSpec {
        ThreadSpec::new(ThreadId::new(th), GroupId::new(0), 1, segs)
    }

    fn data_parallel(threads: u32, work: u64) -> Workload {
        Workload::new(
            "dp",
            (0..threads)
                .map(|i| spec(i, vec![Segment::new(work, SimOp::End)]))
                .collect(),
        )
    }

    #[test]
    fn independent_threads_run_in_parallel() {
        let w = data_parallel(4, 1_000_000);
        let r = run_free(&w, &FreeRunConfig::pthreads(4));
        assert!(r.completed);
        // 4 threads on 4 contexts: wall ≈ one thread's work.
        assert!(r.finish_cycles < 1_100_000, "{}", r.finish_cycles);
    }

    #[test]
    fn oversubscription_dilates() {
        let base = run_free(&data_parallel(4, 1_000_000), &FreeRunConfig::pthreads(4));
        // Same total work split over 64 threads on 4 contexts.
        let over = run_free(&data_parallel(64, 62_500), &FreeRunConfig::pthreads(4));
        assert!(over.completed);
        assert!(
            over.finish_cycles > base.finish_cycles,
            "oversubscribed {} vs {}",
            over.finish_cycles,
            base.finish_cycles
        );
    }

    #[test]
    fn lock_contention_serializes_critical_sections() {
        let l = LockId::new(0);
        let cs = 1_000_000u64;
        let w = Workload::new(
            "locky",
            (0..4)
                .map(|i| {
                    spec(
                        i,
                        vec![Segment::new(0, SimOp::Lock { lock: l, cs_work: cs })],
                    )
                })
                .collect(),
        );
        let r = run_free(&w, &FreeRunConfig::pthreads(4));
        assert!(r.completed);
        assert!(r.finish_cycles >= 4 * cs, "CS must serialize: {}", r.finish_cycles);
    }

    #[test]
    fn pipeline_pop_blocks_until_push() {
        let c = ChannelId::new(0);
        let w = Workload::new(
            "pipe",
            vec![
                spec(0, vec![Segment::new(1_000_000, SimOp::Push { chan: c })]),
                spec(1, vec![Segment::new(0, SimOp::Pop { chan: c })]),
            ],
        );
        let r = run_free(&w, &FreeRunConfig::pthreads(2));
        assert!(r.completed);
        assert!(r.finish_cycles >= 1_000_000);
    }

    #[test]
    fn barrier_waits_for_all() {
        let b = BarrierId::new(0);
        let w = Workload::new(
            "barrier",
            vec![
                spec(
                    0,
                    vec![
                        Segment::new(100, SimOp::Barrier { barrier: b }),
                        Segment::new(100, SimOp::End),
                    ],
                ),
                spec(
                    1,
                    vec![
                        Segment::new(5_000_000, SimOp::Barrier { barrier: b }),
                        Segment::new(100, SimOp::End),
                    ],
                ),
            ],
        );
        let r = run_free(&w, &FreeRunConfig::pthreads(2));
        assert!(r.completed);
        assert!(r.finish_cycles >= 5_000_000);
        assert!(r.barrier_wait_cycles >= 4_000_000);
    }

    #[test]
    fn cpr_checkpointing_adds_overhead() {
        let w = Workload::new(
            "iter",
            (0..4)
                .map(|i| {
                    let segs = (0..20)
                        .map(|_| {
                            Segment::new(1_000_000, SimOp::Atomic {
                                atomic: gprs_core::ids::AtomicId::new(0),
                            })
                        })
                        .collect();
                    spec(i, segs)
                })
                .collect(),
        );
        let plain = run_free(&w, &FreeRunConfig::pthreads(4));
        let cpr = run_free(&w, &FreeRunConfig::cpr(4, 2_000_000));
        assert!(plain.completed && cpr.completed);
        assert!(cpr.finish_cycles > plain.finish_cycles);
        assert!(cpr.checkpoints > 0);
        assert!(cpr.ckpt_cycles > 0);
    }

    #[test]
    fn checkpoint_cadence_is_interval_driven() {
        // Segments three times longer than the checkpoint interval: the
        // preemptive quiesce must still checkpoint at the interval cadence,
        // not once per segment boundary (the old coupling capped coarse
        // programs like RE at one checkpoint per ~1.8 s segment and made
        // every rollback lose a whole segment).
        // ~150 ms segments against a ~30 ms checkpoint interval.
        let seg_work = secs_to_cycles(0.15);
        let interval = secs_to_cycles(0.03);
        let w = Workload::new(
            "coarse",
            (0..2)
                .map(|i| {
                    spec(
                        i,
                        (0..10)
                            .map(|_| {
                                Segment::new(seg_work, SimOp::Atomic {
                                    atomic: gprs_core::ids::AtomicId::new(i as u64),
                                })
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let r = run_free(&w, &FreeRunConfig::cpr(2, interval));
        assert!(r.completed);
        // ~1.5 s of work per thread: far more epochs than the 10 segment
        // boundaries the old scheme was capped at.
        let epochs = r.checkpoints / 2; // two records per epoch
        assert!(epochs > 10, "interval-driven cadence, got {epochs} epochs");
        // A rollback loses roughly interval + record + restore (~90 ms),
        // never a whole segment: 8 exc/s survives, where the
        // boundary-coupled scheme (losing an average half-segment plus the
        // restore, ~130 ms per rollback at best) sat past its tipping rate.
        let inj = InjectorConfig::paper(8.0, 2, crate::costs::CYCLES_PER_SEC).with_seed(11);
        let f = run_free(
            &w,
            &FreeRunConfig::cpr(2, interval)
                .with_exceptions(inj)
                .with_time_cap(secs_to_cycles(600.0)),
        );
        assert!(f.completed, "{f}");
        assert!(f.exceptions > 0);
    }

    #[test]
    fn exceptions_roll_back_to_last_checkpoint() {
        // Periodic sync points give CPR checkpoint opportunities; without
        // them every rollback would return to the program start and 5/s
        // would be past tipping.
        let w = Workload::new(
            "iter",
            (0..2)
                .map(|i| {
                    spec(
                        i,
                        (0..40)
                            .map(|_| {
                                Segment::new(secs_to_cycles(0.05), SimOp::Atomic {
                                    atomic: gprs_core::ids::AtomicId::new(0),
                                })
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let interval = secs_to_cycles(0.1);
        let base = run_free(&w, &FreeRunConfig::cpr(2, interval));
        let cap = base.finish_cycles * 40;
        let injected = run_free(
            &w,
            &FreeRunConfig::cpr(2, interval)
                .with_exceptions(
                    InjectorConfig::paper(5.0, 2, crate::costs::CYCLES_PER_SEC).with_seed(7),
                )
                .with_time_cap(cap),
        );
        assert!(base.completed && injected.completed, "{injected}");
        assert!(injected.exceptions > 0);
        assert!(injected.finish_cycles > base.finish_cycles);
        assert_eq!(injected.squashed, injected.exceptions);
    }

    #[test]
    fn excessive_exception_rate_causes_dnc() {
        let w = data_parallel(2, secs_to_cycles(5.0));
        // Checkpoint every second; 30 exceptions/s each losing ~0.5 s on
        // average: the program can never reach the next checkpoint.
        let r = run_free(
            &w,
            &FreeRunConfig::cpr(2, secs_to_cycles(1.0))
                .with_exceptions(InjectorConfig::paper(30.0, 2, crate::costs::CYCLES_PER_SEC))
                .with_time_cap(secs_to_cycles(500.0)),
        );
        assert!(!r.completed, "must DNC, got {}", r);
    }

    #[test]
    fn pthreads_runs_are_deterministic() {
        let w = data_parallel(8, 500_000);
        let a = run_free(&w, &FreeRunConfig::pthreads(4));
        let b = run_free(&w, &FreeRunConfig::pthreads(4));
        assert_eq!(a, b);
    }

    #[test]
    fn time_cap_reports_dnc() {
        let w = data_parallel(1, 1_000_000);
        let mut cfg = FreeRunConfig::pthreads(1);
        cfg.time_cap_cycles = 10;
        let r = run_free(&w, &cfg);
        assert!(!r.completed);
    }

    #[test]
    fn costs_default_is_paper_default() {
        assert_eq!(FreeRunConfig::pthreads(1).costs, MechCosts::paper_default());
    }
}
