//! Mechanism cost parameters of the simulated machine.
//!
//! The paper's testbed is a 24-context Xeon E5-2420 at 1.9 GHz running Linux
//! 2.6.32; mechanism costs are not reported directly, so the defaults below
//! are chosen to land the *aggregate* overheads in the ranges the paper
//! measures (Figure 8: ordering ≈ a few percent for fork/join programs, ROL
//! management pushing the harmonic mean to ≈ 15 %, barrier-based CPR
//! checkpointing ≈ 21 %) and are exercised by the calibration tests in
//! `gprs-bench`.

/// Simulated clock frequency of the paper's Xeon E5-2420.
pub const CYCLES_PER_SEC: u64 = 1_900_000_000;

/// Per-mechanism costs, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechCosts {
    /// Fixed cost of recording one application-level checkpoint (`t_s`
    /// base): queue insertion, metadata, history-buffer entry.
    pub ckpt_base: u64,
    /// Additional recording cost per checkpointed byte (copy into the
    /// history buffer).
    pub ckpt_per_byte: f64,
    /// Order-enforcement cost per granted turn (token manipulation, ROL
    /// insertion) — the per-sub-thread part of `t_g`.
    pub order_grant: u64,
    /// ROL bookkeeping per sub-thread (entry update, retirement scan) —
    /// the rest of `t_g`.
    pub rol_manage: u64,
    /// Cost of a wasted turn: the holder polls an empty FIFO and passes the
    /// token (Figure 7's empty-FIFO accesses).
    pub poll: u64,
    /// Fixed two-barrier coordination cost of one coordinated-CPR
    /// checkpoint (`t_c` beyond the straggler wait, which the simulation
    /// produces naturally from the trace).
    pub cpr_barrier: u64,
    /// State recording per coordinated-CPR checkpoint, in cycles. With
    /// frequent barriers this is the incremental application-level record;
    /// set per workload.
    pub cpr_record: u64,
    /// Full-state reload on a CPR rollback, in cycles (reading the whole
    /// recorded program state back from stable storage; typically much
    /// larger than the incremental record). Set per workload.
    pub cpr_restore: u64,
    /// State-restore wait on restart (`t_w`).
    pub restore_wait: u64,
    /// Per-squashed-sub-thread recovery cost of GPRS's REX: the global
    /// pause ("the REX pauses the program's execution"), the ROL/WAL walk
    /// and mod-set reinstatement. Not reported by the paper; calibrated so
    /// the single-context Pbzip2 tipping rate lands on the measured
    /// 1.92 exceptions/s (Figure 11(c)), where GPRS and CPR coincide.
    pub gprs_restore: u64,
    /// Cost of executing a synchronization operation itself (lock handoff,
    /// FIFO access) — paid by every scheme including Pthreads.
    pub sync_op: u64,
    /// Per-segment scheduling cost of the Pthreads baseline when more
    /// threads exist than contexts (OS context switching); GPRS's task-style
    /// scheduler replaces this with `order_grant`.
    pub thread_switch: u64,
    /// Multiplicative memory/scheduler contention per excess runnable thread
    /// per context for oversubscribed Pthreads (drives Figure 9's
    /// fine-grained Pthreads degradation).
    pub oversub_factor: f64,
}

impl MechCosts {
    /// Defaults calibrated against the paper's aggregate overheads.
    pub fn paper_default() -> Self {
        MechCosts {
            ckpt_base: 30_000,
            ckpt_per_byte: 1.0,
            order_grant: 12_000,
            rol_manage: 20_000,
            poll: 6_000,
            cpr_barrier: 1_200_000,
            cpr_record: 20_000_000,   // ~10 ms incremental record
            cpr_restore: 100_000_000, // ~53 ms full-state reload
            restore_wait: 1_900_000, // ~1 ms
            gprs_restore: 855_000_000, // ~450 ms (see field docs)
            sync_op: 2_000,
            thread_switch: 6_000,
            oversub_factor: 0.0012,
        }
    }

    /// Recording cost `t_s` for a checkpoint of `bytes` bytes.
    pub fn ckpt_cost(&self, bytes: u64) -> u64 {
        self.ckpt_base + (bytes as f64 * self.ckpt_per_byte) as u64
    }

    /// Ordering + ROL cost `t_g` per granted sub-thread.
    pub fn order_cost(&self) -> u64 {
        self.order_grant + self.rol_manage
    }
}

impl Default for MechCosts {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Converts seconds to simulated cycles.
pub fn secs_to_cycles(secs: f64) -> u64 {
    (secs * CYCLES_PER_SEC as f64) as u64
}

/// Converts simulated cycles to seconds.
pub fn cycles_to_secs(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckpt_cost_scales_with_bytes() {
        let c = MechCosts::paper_default();
        assert!(c.ckpt_cost(10_000) > c.ckpt_cost(100));
        assert_eq!(c.ckpt_cost(0), c.ckpt_base);
    }

    #[test]
    fn conversions_round_trip() {
        let cycles = secs_to_cycles(2.5);
        assert!((cycles_to_secs(cycles) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn order_cost_sums_components() {
        let c = MechCosts::paper_default();
        assert_eq!(c.order_cost(), c.order_grant + c.rol_manage);
    }
}
