//! Simulation outcome and statistics.

use crate::costs::cycles_to_secs;
use gprs_analyze::AnalysisReport;
use gprs_core::racecheck::Race;
use gprs_telemetry::TelemetrySummary;
use std::fmt;

/// Outcome of one simulated program run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Workload name.
    pub name: String,
    /// Scheme label ("Pthreads", "P-CPR", "GPRS-B", …).
    pub scheme: String,
    /// Whether the program completed within the time cap. `false` is the
    /// paper's "DNC" (did not complete).
    pub completed: bool,
    /// Virtual finish time in cycles (the cap value if `!completed`).
    pub finish_cycles: u64,
    /// Sub-threads created (GPRS engines only).
    pub subthreads: u64,
    /// Checkpoints recorded (per sub-thread for GPRS, per barrier epoch ×
    /// threads for CPR).
    pub checkpoints: u64,
    /// Checkpoints skipped because the static restartability proof showed
    /// the boundary read-only (`GprsSimConfig::with_elision`; 0 when
    /// elision is off).
    pub checkpoints_elided: u64,
    /// Total cycles spent recording checkpoints (`t_s` summed).
    pub ckpt_cycles: u64,
    /// Total cycles threads spent waiting for their deterministic turn
    /// (`t_g`'s wait component, GPRS only).
    pub ordering_wait_cycles: u64,
    /// Wasted turns: the holder polled an empty FIFO and passed the token.
    pub polls: u64,
    /// Total cycles threads spent waiting at program or checkpoint barriers.
    pub barrier_wait_cycles: u64,
    /// Exceptions delivered to the recovery system.
    pub exceptions: u64,
    /// Exceptions that struck an idle context and were ignored.
    pub exceptions_ignored: u64,
    /// Sub-threads squashed by recovery (GPRS) — or, for CPR, the number of
    /// global rollbacks.
    pub squashed: u64,
    /// Total re-executed + restore cycles charged by recovery.
    pub redo_cycles: u64,
    /// Peak reorder-list occupancy (GPRS only).
    pub rol_peak: usize,
    /// End-of-run telemetry: determinism hashes, metrics, and the drained
    /// event trace (the same [`TelemetrySummary`] type embedded in
    /// `gprs_runtime::RunReport`). The simulator is single-threaded, so the
    /// summary — including event sequence numbers — is fully deterministic
    /// and participates in `PartialEq` determinism comparisons.
    pub telemetry: TelemetrySummary,
    /// Data races flagged by the happens-before detector
    /// (`GprsSimConfig::with_racecheck`; 0 when the detector is off).
    pub races: u64,
    /// The first race in retired order, when the detector found one.
    pub first_race: Option<Race>,
    /// The ahead-of-run static analysis report
    /// (`GprsSimConfig::with_analysis`; `None` when analysis is off).
    pub analysis: Option<AnalysisReport>,
    /// The named divergence that aborted a replayed run
    /// (`GprsSimConfig::with_replay`): the live simulation performed a
    /// turn-consuming event the recording did not grant (or vice versa).
    /// Always accompanied by `completed == false`; `None` on clean runs.
    pub replay_divergence: Option<String>,
}

impl SimResult {
    /// Creates an empty result for the given workload and scheme.
    pub fn new(name: impl Into<String>, scheme: impl Into<String>) -> Self {
        SimResult {
            name: name.into(),
            scheme: scheme.into(),
            completed: false,
            finish_cycles: 0,
            subthreads: 0,
            checkpoints: 0,
            checkpoints_elided: 0,
            ckpt_cycles: 0,
            ordering_wait_cycles: 0,
            polls: 0,
            barrier_wait_cycles: 0,
            exceptions: 0,
            exceptions_ignored: 0,
            squashed: 0,
            redo_cycles: 0,
            rol_peak: 0,
            telemetry: TelemetrySummary::default(),
            races: 0,
            first_race: None,
            analysis: None,
            replay_divergence: None,
        }
    }

    /// Finish time in simulated seconds.
    pub fn finish_secs(&self) -> f64 {
        cycles_to_secs(self.finish_cycles)
    }

    /// Execution time relative to a baseline run (the y-axis of Figures
    /// 8–10). Returns `None` if either run did not complete.
    pub fn relative_to(&self, baseline: &SimResult) -> Option<f64> {
        (self.completed && baseline.completed && baseline.finish_cycles > 0)
            .then(|| self.finish_cycles as f64 / baseline.finish_cycles as f64)
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.completed {
            write!(
                f,
                "{} [{}]: {:.3}s ({} subthreads, {} ckpts, {} exceptions, {} squashed)",
                self.name,
                self.scheme,
                self.finish_secs(),
                self.subthreads,
                self.checkpoints,
                self.exceptions,
                self.squashed
            )
        } else {
            write!(f, "{} [{}]: DNC", self.name, self.scheme)
        }
    }
}

/// Harmonic mean of relative execution times — the HM bars of Figure 8.
///
/// Returns `None` for an empty input or any non-positive value.
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    Some(values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_needs_completion() {
        let mut a = SimResult::new("x", "GPRS");
        let mut b = SimResult::new("x", "Pthreads");
        a.finish_cycles = 150;
        b.finish_cycles = 100;
        assert_eq!(a.relative_to(&b), None);
        a.completed = true;
        b.completed = true;
        assert_eq!(a.relative_to(&b), Some(1.5));
    }

    #[test]
    fn harmonic_mean_matches_hand_calc() {
        let hm = harmonic_mean(&[1.0, 2.0]).unwrap();
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
    }

    #[test]
    fn display_shows_dnc() {
        let r = SimResult::new("pbzip2", "P-CPR");
        assert!(r.to_string().contains("DNC"));
    }
}
