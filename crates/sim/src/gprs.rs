//! The GPRS engine: deterministic token-ordered execution with sub-thread
//! checkpointing, a reorder list, and selective restart (`§3`).
//!
//! Threads run their segment bodies concurrently on a simulated context
//! pool, but every synchronization operation — the boundary that opens a new
//! sub-thread — must be performed in the deterministic total order imposed
//! by the configured schedule. A holder that polls an empty FIFO passes the
//! token (Figure 7); a holder whose turn has not come waits, accruing the
//! ordering delay `t_g`'s wait component.
//!
//! ## Exception handling
//!
//! Exceptions are attributed to the sub-thread whose body occupied the
//! victim context when the exception was raised. Recovery squashes the
//! affected set — under *selective* scope: the culprit, its same-thread
//! successors, consumers of the data items it pushed (tracked by
//! channel-item provenance, which is finer than the lock alias because the
//! runtime manages its FIFOs and can undo a pop by returning the item to the
//! front), and younger sub-threads sharing a lock or atomic alias.
//!
//! Squashed entries are *removed* from the reorder list and their threads
//! rewound to the opening point of their oldest squashed sub-thread, so the
//! token loop re-issues the work as fresh grants that re-enter retirement in
//! total order — exactly like REX in the real runtime. (An earlier version
//! re-issued squashed entries in place, which left mid-list `Squashed`
//! entries that could never re-complete, blocking retirement and diverging
//! the retired-order determinism hash under fault injection.) Channel pushes
//! and pops are undone youngest-first, and a rewind that crosses an
//! already-consumed barrier arrival undoes that barrier release for every
//! participant. Unaffected sub-threads keep running, which is what makes the
//! tipping rate scale with the context count.

use crate::costs::MechCosts;
use crate::result::SimResult;
use crate::workload::{SimOp, Workload};
use gprs_core::exception::{ExceptionInjector, InjectorConfig};
use gprs_core::ids::{BarrierId, ChannelId, LockId, ResourceId, SubThreadId, ThreadId};
use gprs_core::order::{OrderEnforcer, ScheduleKind};
use gprs_core::persist::{DurableRecord, PersistBackend};
use gprs_core::racecheck::{resource_code, OpenEdge, RaceDetector, RetireInfo};
use gprs_core::recording::{
    event_kind_name, DriveMode, RecordedOutcome, Recorder, Recording, RecordingHeader,
    ReplaySchedule, EVT_ARRIVE, EVT_EXIT,
};
use gprs_core::rol::{ReorderList, RolEntry};
use gprs_core::subthread::{SubThread, SubThreadKind, SyncOp};
use gprs_telemetry::{RetiredOrderHash, ScheduleHash, Telemetry, TelemetryConfig, TraceEvent};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Ring index for events not attributable to a simulated context; routed to
/// the external ring by [`Telemetry::record`].
const EXTERNAL_RING: usize = usize::MAX;

/// Which sub-threads recovery squashes (the simulator-level counterpart of
/// [`gprs_core::recovery::RecoveryMode`], with channel provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryScope {
    /// Squash the culprit and everything younger.
    Basic,
    /// Squash only the culprit and its dependents.
    Selective,
}

/// Configuration of a GPRS simulation.
#[derive(Debug, Clone)]
pub struct GprsSimConfig {
    /// Hardware contexts `n`.
    pub contexts: u32,
    /// Mechanism costs.
    pub costs: MechCosts,
    /// The deterministic ordering schedule.
    pub schedule: ScheduleKind,
    /// Recovery scope.
    pub recovery: RecoveryScope,
    /// Exception injection.
    pub exceptions: Option<InjectorConfig>,
    /// Wall-clock cap in cycles; exceeding it reports DNC.
    pub time_cap_cycles: u64,
    /// Telemetry recording (events, metrics, determinism hashes).
    pub telemetry: TelemetryConfig,
    /// Happens-before race detection at retirement. When a race is found,
    /// selective recovery escalates to basic scope for culprits on racy
    /// threads (the hybrid policy of `§5b`).
    pub racecheck: bool,
    /// Run the static analyzer (`gprs-analyze`) before execution. A
    /// proven-DRF verdict elides the dynamic race detector; a
    /// potential-race verdict arms it (pre-selecting the hybrid policy)
    /// regardless of `racecheck`. The report is embedded in the result.
    pub analysis: bool,
    /// Elide checkpoints at sub-thread boundaries the static
    /// restartability proof shows read-only
    /// (`gprs_analyze::checkpoint_elidable`): the body modifies no private
    /// or shared state, so rewinding to the boundary restores nothing and
    /// the recording cost `t_s` is pure waste. Off by default; grant and
    /// retirement order are unchanged by construction (the differential
    /// suites assert bit-identical schedule/retired hashes on vs off).
    pub elide: bool,
    /// Mirror the retirement stream into a durable log (the same
    /// [`PersistBackend`] family the runtime uses). Observability only:
    /// the simulator records `Spec`/`Retire` records and a final sync but
    /// never resumes from its log — simulated runs are cheap to re-run,
    /// and the record stream lets durability tooling compare a sim's
    /// retirement ledger against a real-runtime log.
    pub persist: Option<Arc<dyn PersistBackend>>,
    /// Record the run's complete grant schedule into this file, stamped
    /// with the given workload seed (see
    /// [`with_record`](GprsSimConfig::with_record)).
    pub record: Option<(std::path::PathBuf, u64)>,
    /// Drive the run under a recorded schedule instead of a live ordering
    /// policy (see [`with_replay`](GprsSimConfig::with_replay)).
    pub replay: Option<Arc<Recording>>,
}

impl GprsSimConfig {
    /// Balance-aware (basic) GPRS on `n` contexts, selective restart, no
    /// exceptions.
    pub fn balance_aware(contexts: u32) -> Self {
        GprsSimConfig {
            contexts,
            costs: MechCosts::paper_default(),
            schedule: ScheduleKind::BalanceBasic,
            recovery: RecoveryScope::Selective,
            exceptions: None,
            time_cap_cycles: u64::MAX / 4,
            telemetry: TelemetryConfig::default(),
            racecheck: false,
            analysis: false,
            elide: false,
            persist: None,
            record: None,
            replay: None,
        }
    }

    /// Round-robin-ordered GPRS (the naive schedule of Figure 7(a)).
    pub fn round_robin(contexts: u32) -> Self {
        GprsSimConfig {
            schedule: ScheduleKind::RoundRobin,
            ..Self::balance_aware(contexts)
        }
    }

    /// Weighted balance-aware GPRS (uses the workload's group weights).
    pub fn weighted(contexts: u32) -> Self {
        GprsSimConfig {
            schedule: ScheduleKind::BalanceWeighted,
            ..Self::balance_aware(contexts)
        }
    }

    /// Enables exception injection.
    pub fn with_exceptions(mut self, injector: InjectorConfig) -> Self {
        self.exceptions = Some(injector);
        self
    }

    /// Sets the recovery scope.
    pub fn with_recovery(mut self, scope: RecoveryScope) -> Self {
        self.recovery = scope;
        self
    }

    /// Sets the DNC cap.
    pub fn with_time_cap(mut self, cycles: u64) -> Self {
        self.time_cap_cycles = cycles;
        self
    }

    /// Sets the telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables happens-before race detection (and hybrid recovery
    /// escalation for racy threads).
    pub fn with_racecheck(mut self, on: bool) -> Self {
        self.racecheck = on;
        self
    }

    /// Enables the ahead-of-run static analysis pass (see
    /// [`GprsSimConfig::analysis`]).
    pub fn with_analysis(mut self, on: bool) -> Self {
        self.analysis = on;
        self
    }

    /// Enables checkpoint elision at statically proven read-only
    /// boundaries (see [`GprsSimConfig::elide`]).
    pub fn with_elision(mut self, on: bool) -> Self {
        self.elide = on;
        self
    }

    /// Mirrors the retirement stream into `backend` (see
    /// [`GprsSimConfig::persist`]).
    pub fn with_persist(mut self, backend: Arc<dyn PersistBackend>) -> Self {
        self.persist = Some(backend);
        self
    }

    /// Records the run's grant schedule — every turn-consuming event with a
    /// running digest — into `path`, written when the result is sealed.
    /// `seed` is stamped into the header so `gprs-replay` can rebuild the
    /// generated workload (the workload name travels automatically).
    pub fn with_record(mut self, path: impl Into<std::path::PathBuf>, seed: u64) -> Self {
        self.record = Some((path.into(), seed));
        self
    }

    /// Replays a recorded schedule: the token follows the recording's
    /// grant order exactly and the first divergence aborts the run with
    /// [`SimResult::replay_divergence`] set (and `completed == false`).
    pub fn with_replay(mut self, rec: Arc<Recording>) -> Self {
        self.replay = Some(rec);
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Body {
    thread: usize,
    ctx: usize,
    start: u64,
    end: u64,
    /// Kind of the sub-thread this body belongs to.
    kind: SubThreadKind,
    /// Segment whose work forms this body — the rewind point on squash.
    seg_ix: usize,
}

/// Incrementally maintained indexes over the in-window (granted, not yet
/// retired or squashed) sub-threads.
///
/// Recovery used to rediscover dependence sharers by rescanning the whole
/// reorder-list window per taint step (`affected_set`) and by sweeping every
/// live body per rewind target (`plan_recovery`). Both queries are now index
/// lookups; the index is updated at the three window transitions — grant,
/// retire, squash — and `affected_set` cross-checks its answer against the
/// original rescan in debug builds.
#[derive(Debug, Default)]
struct WindowIndex {
    /// Non-channel dependence alias -> in-window sub-threads holding it.
    /// Channels are excluded for the same reason `affected_set` skips them:
    /// the runtime undoes pops by returning items, so the channel id is not
    /// a taint alias (item provenance is tracked via `consumers`).
    by_resource: HashMap<ResourceId, std::collections::BTreeSet<SubThreadId>>,
    /// Sim thread index -> in-window sub-threads it owns.
    by_thread: Vec<std::collections::BTreeSet<SubThreadId>>,
}

impl WindowIndex {
    fn new(threads: usize) -> Self {
        WindowIndex {
            by_resource: HashMap::new(),
            by_thread: vec![std::collections::BTreeSet::new(); threads],
        }
    }

    /// Registers a freshly granted sub-thread under its thread and every
    /// non-channel alias it holds.
    fn insert<'r>(
        &mut self,
        sid: SubThreadId,
        th: usize,
        resources: impl IntoIterator<Item = &'r ResourceId>,
    ) {
        self.by_thread[th].insert(sid);
        for r in resources {
            if !matches!(r, ResourceId::Channel(_)) {
                self.by_resource.entry(*r).or_default().insert(sid);
            }
        }
    }

    /// Deregisters a sub-thread leaving the window (retired or squashed).
    /// `resources` must be the same alias set it was registered under.
    fn remove<'r>(
        &mut self,
        sid: SubThreadId,
        th: usize,
        resources: impl IntoIterator<Item = &'r ResourceId>,
    ) {
        self.by_thread[th].remove(&sid);
        for r in resources {
            if matches!(r, ResourceId::Channel(_)) {
                continue;
            }
            if let Some(set) = self.by_resource.get_mut(r) {
                set.remove(&sid);
                if set.is_empty() {
                    self.by_resource.remove(r);
                }
            }
        }
    }
}

/// Where a rewound thread re-enters its trace after a squash. The sim
/// re-executes squashed sub-threads as fresh grants (new sequence numbers),
/// so recovery rewinds each affected thread to its oldest squashed
/// sub-thread's opening point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rewind {
    /// Re-issue the initial sub-thread.
    Initial,
    /// Re-request the closing op of segment `.0` (including re-arriving at
    /// a barrier whose release was undone).
    Op(usize),
    /// Re-open the continuation of barrier `.0` with `op_ix = .1`; the
    /// arrival stays consumed because the release still stands.
    Resume(BarrierId, usize),
}

impl Rewind {
    /// Index of the first op this rewind leaves pending.
    fn op_ix(self) -> usize {
        match self {
            Rewind::Initial => 0,
            Rewind::Op(i) => i,
            Rewind::Resume(_, i) => i,
        }
    }

    /// First segment index whose body is re-executed under this rewind.
    fn reexec_start(self) -> usize {
        match self {
            Rewind::Initial => 0,
            Rewind::Op(i) => i + 1,
            Rewind::Resume(_, i) => i,
        }
    }

    /// Whether this rewind re-enters the trace strictly earlier than
    /// `other` (a forced re-arrival beats a resume of the same barrier).
    fn precedes(self, other: Rewind) -> bool {
        let rank = |r: Rewind| match r {
            Rewind::Initial => 0u8,
            Rewind::Op(_) => 1,
            Rewind::Resume(..) => 2,
        };
        (self.reexec_start(), rank(self)) < (other.reexec_start(), rank(other))
    }
}

#[derive(Debug)]
struct GThread {
    started: bool,
    /// Index of the segment whose closing op is the next pending request.
    op_ix: usize,
    /// Time the thread arrives at that sync point (current body end).
    request_at: u64,
    /// Set while waiting inside a barrier (thread deregistered from the
    /// token rotation).
    in_barrier: bool,
    /// Pending barrier continuation: the next grant opens the continuation
    /// sub-thread instead of consuming an op.
    resume_barrier: Option<BarrierId>,
    done: bool,
    current_st: Option<SubThreadId>,
}

/// Runs a workload on the GPRS engine.
///
/// # Examples
/// ```
/// use gprs_sim::gprs::{run_gprs, GprsSimConfig};
/// use gprs_sim::workload::{Segment, SimOp, ThreadSpec, Workload};
/// use gprs_core::ids::{GroupId, ThreadId};
/// let w = Workload::new("tiny", vec![
///     ThreadSpec::new(ThreadId::new(0), GroupId::new(0), 1,
///                     vec![Segment::new(1_000, SimOp::End)]),
/// ]);
/// let r = run_gprs(&w, &GprsSimConfig::balance_aware(4));
/// assert!(r.completed);
/// assert_eq!(r.subthreads, 1);
/// ```
pub fn run_gprs(workload: &Workload, config: &GprsSimConfig) -> SimResult {
    Gprs::new(workload, config).run()
}

struct Gprs<'a> {
    w: &'a Workload,
    cfg: &'a GprsSimConfig,
    enforcer: OrderEnforcer,
    threads: Vec<GThread>,
    ctxs: Vec<u64>,
    bodies: HashMap<SubThreadId, Body>,
    /// Resource/thread lookup over the live window (see [`WindowIndex`]).
    windex: WindowIndex,
    rol: ReorderList,
    locks: HashMap<LockId, u64>,
    chans: HashMap<ChannelId, VecDeque<SubThreadId>>,
    /// producer sub-thread -> consumer sub-threads of its pushed items.
    consumers: HashMap<SubThreadId, Vec<SubThreadId>>,
    /// consumer sub-thread -> (channel, producer) of the item it popped;
    /// recovery undoes the pop by returning the item to the front.
    pop_sources: HashMap<SubThreadId, (ChannelId, SubThreadId)>,
    barrier_waiting: HashMap<BarrierId, Vec<usize>>,
    barrier_participants: HashMap<BarrierId, u32>,
    /// Number of releases each barrier has performed; decremented when a
    /// rewind undoes a release.
    barrier_gen: HashMap<BarrierId, u64>,
    injector: Option<ExceptionInjector>,
    /// Happens-before detector, driven at retirement (total order), so the
    /// first race reported is deterministic across runs and context counts.
    race: Option<RaceDetector>,
    /// Ahead-of-run static analysis report, carried into the result.
    analysis: Option<gprs_analyze::AnalysisReport>,
    latency: u64,
    token_time: u64,
    live: usize,
    finish: u64,
    res: SimResult,
    tel: Telemetry,
    sched_hash: ScheduleHash,
    retired_hash: RetiredOrderHash,
    raw_trace: Vec<(u64, u32)>,
    /// Durable mirror of the retirement stream (observability only; a
    /// persistence error silently disarms it for the rest of the run).
    persist: Option<Arc<dyn PersistBackend>>,
    /// Streaming schedule recorder (`GprsSimConfig::with_record`), sealed
    /// and written to `record_path` when the result is sealed.
    recorder: Option<Recorder>,
    record_path: Option<std::path::PathBuf>,
    /// Replay verifier: `(recording, events verified so far)`.
    replay: Option<(Arc<Recording>, usize)>,
}

impl<'a> Gprs<'a> {
    fn new(w: &'a Workload, cfg: &'a GprsSimConfig) -> Self {
        let scheme = format!("GPRS-{}", cfg.schedule.tag());
        // Under replay the tape itself is the ordering policy: the token
        // follows the recorded grant order, and wasted polls hold the
        // cursor in place (`ReplaySchedule::pass` is a no-op).
        let mut enforcer = match &cfg.replay {
            Some(rec) => OrderEnforcer::new(Box::new(ReplaySchedule::from_recording(rec))),
            None => OrderEnforcer::with_schedule(cfg.schedule),
        };
        let mut threads = Vec::with_capacity(w.threads.len());
        for t in &w.threads {
            enforcer
                .register_thread(t.thread, t.group, t.weight)
                .expect("dense unique thread ids");
            threads.push(GThread {
                started: false,
                op_ix: 0,
                request_at: 0,
                in_barrier: false,
                resume_barrier: None,
                done: false,
                current_st: None,
            });
        }
        let injector = cfg.exceptions.clone().map(ExceptionInjector::new);
        let latency = cfg
            .exceptions
            .as_ref()
            .map(|e| e.detection_latency)
            .unwrap_or(0);
        // Static pre-pass: a proven-DRF verdict makes the vector-clock
        // detector pure overhead; a potential race makes it mandatory (the
        // hybrid policy needs to know which threads are racy).
        let analysis = cfg.analysis.then(|| gprs_analyze::analyze(w));
        let racecheck = match &analysis {
            Some(rep) if rep.race_free() => false,
            Some(rep) if rep.advice == gprs_analyze::RecoveryAdvice::HybridCpr => true,
            _ => cfg.racecheck,
        };
        let mut g = Gprs {
            w,
            cfg,
            enforcer,
            threads,
            ctxs: vec![0; cfg.contexts.max(1) as usize],
            bodies: HashMap::new(),
            windex: WindowIndex::new(w.threads.len()),
            rol: ReorderList::new(),
            locks: HashMap::new(),
            chans: HashMap::new(),
            consumers: HashMap::new(),
            pop_sources: HashMap::new(),
            barrier_waiting: HashMap::new(),
            barrier_participants: w.barrier_participants().into_iter().collect(),
            barrier_gen: HashMap::new(),
            injector,
            race: racecheck.then(RaceDetector::new),
            analysis,
            latency,
            token_time: 0,
            live: w.threads.len(),
            finish: 0,
            res: SimResult::new(w.name.clone(), scheme),
            tel: Telemetry::new(&cfg.telemetry, cfg.contexts.max(1) as usize),
            // Domain-separated by workload name: structurally identical
            // programs (swaptions vs. histogram) must not collide.
            sched_hash: ScheduleHash::seeded(gprs_telemetry::name_seed(&w.name)),
            retired_hash: RetiredOrderHash::seeded(gprs_telemetry::name_seed(&w.name)),
            raw_trace: Vec::new(),
            persist: cfg.persist.clone(),
            recorder: cfg.record.as_ref().map(|(_, seed)| {
                Recorder::new(RecordingHeader {
                    workload: w.name.clone(),
                    seed: *seed,
                    mode: DriveMode::Sim,
                    schedule: cfg.schedule.tag().to_string(),
                    workers: cfg.contexts,
                    spec: None,
                    chaos: None,
                })
            }),
            record_path: cfg.record.as_ref().map(|(p, _)| p.clone()),
            replay: cfg.replay.clone().map(|rec| (rec, 0)),
        };
        if let Some(p) = &g.persist {
            let spec = DurableRecord::Spec {
                text: format!("sim {}", g.w.name),
            };
            if p.record(&spec).is_err() {
                g.persist = None;
            }
        }
        if let Some(rep) = &g.analysis {
            let elided = rep.race_free() && g.race.is_none();
            if g.tel.enabled() {
                let m = &g.tel.metrics;
                m.analysis_runs.inc();
                m.analysis_cells.add(rep.cells.len() as u64);
                m.analysis_potential_races.add(rep.potential_races() as u64);
                m.analysis_diagnostics.add(rep.diagnostics.len() as u64);
                if elided {
                    m.analysis_racecheck_elided.inc();
                }
                g.tel.record(
                    EXTERNAL_RING,
                    TraceEvent::AnalysisVerdict {
                        cells: rep.cells.len() as u32,
                        potential_races: rep.potential_races() as u32,
                        diagnostics: rep.diagnostics.len() as u32,
                        advice: matches!(rep.advice, gprs_analyze::RecoveryAdvice::HybridCpr)
                            as u8,
                        elided: elided as u8,
                    },
                );
            }
        }
        g
    }

    /// Mirrors one retirement into the durable log, in the same record
    /// shape the real runtime writes (so the two ledgers are comparable).
    fn durable_retire(&mut self, retired: &RolEntry) {
        let rec = DurableRecord::Retire {
            subthread: retired.id().raw(),
            thread: retired.thread().raw(),
            kind: retired.descriptor.kind.tag(),
            retired: self.rol.retired(),
            digest: self.retired_hash.digest(),
        };
        if let Some(p) = &self.persist {
            if p.record(&rec).is_err() {
                self.persist = None;
            }
        }
    }

    /// Feeds one turn-consuming event (a grant's sub-thread kind, or the
    /// structural `EVT_ARRIVE`/`EVT_EXIT` tags) to the recorder and/or the
    /// replay verifier — the simulator twin of the runtime engine's hook.
    /// Under replay the first mismatching event sets
    /// [`SimResult::replay_divergence`]; the token loop aborts to DNC on
    /// its next iteration.
    fn record_event(&mut self, thread: ThreadId, kind: u8) {
        if let Some(r) = self.recorder.as_mut() {
            r.record_event(thread.raw(), kind);
        }
        let Some((rec, verified)) = self.replay.as_mut() else {
            return;
        };
        let pos = *verified;
        match rec.events.get(pos) {
            Some(e) if e.thread == thread.raw() && e.kind == kind => *verified += 1,
            Some(e) => {
                self.res.replay_divergence = Some(format!(
                    "replay divergence at event {pos}: recording expects \
                     (thread {}, {}) but the live run performed (thread {}, {})",
                    e.thread,
                    event_kind_name(e.kind),
                    thread.raw(),
                    event_kind_name(kind),
                ));
            }
            None => {
                self.res.replay_divergence = Some(format!(
                    "replay divergence: live run performed event {pos} \
                     (thread {}, {}) past the end of the {}-event recording",
                    thread.raw(),
                    event_kind_name(kind),
                    rec.events.len(),
                ));
            }
        }
    }

    /// Marks the run divergent and caps the clock (the DNC shape every
    /// replay failure degrades to).
    fn replay_abort(&mut self, msg: String) {
        self.res.replay_divergence = Some(msg);
        self.res.finish_cycles = self.cfg.time_cap_cycles;
    }

    /// Seals the telemetry summary and race verdict into the result (every
    /// exit path).
    fn finish_result(mut self) -> SimResult {
        if let Some(p) = self.persist.take() {
            let _ = p.sync();
        }
        if let Some(d) = &self.race {
            self.res.races = d.races();
            self.res.first_race = d.first_race().cloned();
        }
        // Final replay verification: a run that "completed" without
        // consuming the whole tape, or whose final digests disagree with
        // the recorded footer, diverged even if every verified event
        // matched — demote it to a named failure.
        if let Some((rec, verified)) = self.replay.take() {
            if self.res.replay_divergence.is_none() && self.res.completed {
                if verified < rec.events.len() {
                    self.res.replay_divergence = Some(format!(
                        "replay divergence: live run finished after {verified} \
                         events but the recording has {}",
                        rec.events.len()
                    ));
                } else if rec.sched_hash != self.sched_hash.digest()
                    || rec.retired_hash != self.retired_hash.digest()
                {
                    self.res.replay_divergence = Some(format!(
                        "replay divergence: recorded final digests \
                         ({:016x}, {:016x}) do not match the replayed run \
                         ({:016x}, {:016x})",
                        rec.sched_hash,
                        rec.retired_hash,
                        self.sched_hash.digest(),
                        self.retired_hash.digest(),
                    ));
                }
            }
            if self.res.replay_divergence.is_some() {
                self.res.completed = false;
                self.res.finish_cycles = self.cfg.time_cap_cycles;
            }
        }
        // Seal and write the recording — for DNC runs too: a recording of
        // a failed run is what time-travel debugging exists for.
        if let (Some(r), Some(path)) = (self.recorder.take(), self.record_path.take()) {
            let outcome = if self.res.completed {
                RecordedOutcome::Complete
            } else {
                RecordedOutcome::Poisoned(
                    "did not complete within the time cap".to_string(),
                )
            };
            let rec = r.finish(self.sched_hash.digest(), self.retired_hash.digest(), outcome);
            if let Err(e) = rec.save(&path) {
                // The run itself is fine; the missing artifact must still
                // be loud. Demote to DNC with a named reason.
                self.res.completed = false;
                self.res.replay_divergence = Some(format!(
                    "failed to write recording to {}: {e}",
                    path.display()
                ));
            }
        }
        let raw = std::mem::take(&mut self.raw_trace);
        self.res.telemetry = self.tel.summarize(&self.sched_hash, &self.retired_hash, raw);
        self.res.analysis = self.analysis.take();
        self.res
    }

    /// Least-loaded context (the load-balancing sub-thread scheduler).
    fn pick_ctx(&self) -> usize {
        let mut best = 0;
        for (i, &avail) in self.ctxs.iter().enumerate() {
            if avail < self.ctxs[best] {
                best = i;
            }
        }
        best
    }

    /// Opens a new sub-thread for `th` at grant time `now`: pays the
    /// checkpoint + ordering costs, schedules the body on a context.
    ///
    /// `extra_cs` is the critical-section portion executed under `lock`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_subthread(
        &mut self,
        th: usize,
        stid: SubThreadId,
        kind: SubThreadKind,
        opening_op: Option<SyncOp>,
        now: u64,
        body_seg_ix: usize,
        lock: Option<(LockId, u64)>,
    ) {
        let spec = &self.w.threads[th];
        let seg = &spec.segments[body_seg_ix];
        // Statically proven read-only boundary: the checkpoint records
        // nothing a rewind could need, so elision skips `t_s` entirely.
        // The grant itself (and its ordering cost) is untouched — elision
        // must never perturb the total order.
        let opening = body_seg_ix.checked_sub(1).map(|i| spec.segments[i].op);
        let elide = self.cfg.elide && gprs_analyze::checkpoint_elidable(opening, seg);
        let ts = if elide {
            0
        } else {
            self.cfg.costs.ckpt_cost(seg.ckpt_bytes)
        };
        let tg = self.cfg.costs.order_cost();
        self.res.ckpt_cycles += ts;
        if elide {
            self.res.checkpoints_elided += 1;
        } else {
            self.res.checkpoints += 1;
        }
        self.res.subthreads += 1;

        let ctx = self.pick_ctx();
        let mut start = (now + ts + tg).max(self.ctxs[ctx]);
        let nested = seg.nested.filter(|&m| lock.map(|(l, _)| l) != Some(m));
        if let Some((l, _)) = lock {
            start = start.max(self.locks.get(&l).copied().unwrap_or(0));
        }
        if let Some(m) = nested {
            // The body's nested critical section is flattened into this
            // sub-thread: it waits for the inner lock up front (while still
            // holding any outer lock — the hold-and-wait the lock-order
            // analysis reasons about) and holds it to the body's end.
            start = start.max(self.locks.get(&m).copied().unwrap_or(0));
        }
        let mut cs_work = 0;
        if let Some((l, cs)) = lock {
            cs_work = cs;
            self.locks.insert(l, start + cs);
        }
        let end = start + cs_work + seg.work;
        if let Some(m) = nested {
            self.locks.insert(m, end);
        }
        self.ctxs[ctx] = end;

        let (tid, bytes) = (spec.thread, seg.ckpt_bytes);
        self.sched_hash.record(stid.raw(), tid.raw());
        self.record_event(tid, kind.tag());
        if self.raw_trace.len() < self.cfg.telemetry.raw_trace_cap {
            self.raw_trace.push((stid.raw(), tid.raw()));
        }
        if self.tel.enabled() {
            let m = &self.tel.metrics;
            m.subthreads_created.inc();
            m.grants.inc();
            if elide {
                m.checkpoints_elided.inc();
            } else {
                m.checkpoints.inc();
                m.checkpoint_bytes.add(bytes);
                m.checkpoint_size.record(bytes);
            }
            self.tel.record(
                ctx,
                TraceEvent::SubThreadCreate {
                    subthread: stid.raw(),
                    thread: tid.raw(),
                    kind: kind.tag(),
                },
            );
            self.tel.record(ctx, TraceEvent::Grant { subthread: stid.raw(), thread: tid.raw() });
            if !elide {
                self.tel
                    .record(ctx, TraceEvent::CheckpointTaken { subthread: stid.raw(), bytes });
            }
        }

        let descriptor = SubThread::new(stid, spec.thread, spec.group, kind, opening_op);
        self.rol.insert(descriptor).expect("grants are in order");
        if let Some(m) = nested {
            // The nested lock is a dependence alias (recovery) and a sync
            // guard (racecheck) for this sub-thread.
            self.rol
                .add_resource(stid, ResourceId::Lock(m))
                .expect("just inserted");
        }
        self.bodies.insert(
            stid,
            Body {
                thread: th,
                ctx,
                start,
                end,
                kind,
                seg_ix: body_seg_ix,
            },
        );
        // The alias set is final here: the sim only attaches resources at
        // grant time (opening op + the nested lock above).
        let entry = self.rol.get(stid).expect("just inserted");
        self.windex.insert(stid, th, &entry.resources);
        let t = &mut self.threads[th];
        t.current_st = Some(stid);
        t.request_at = end;
    }

    /// Marks `th`'s current sub-thread completed and retires what it can.
    fn complete_current(&mut self, th: usize) {
        if let Some(prev) = self.threads[th].current_st.take() {
            self.rol
                .mark_completed(prev)
                .expect("current sub-thread is in the ROL");
        }
        for retired in self.rol.retire_ready() {
            self.retired_hash
                .record(retired.thread().raw(), retired.descriptor.kind.tag());
            if self.persist.is_some() {
                self.durable_retire(&retired);
            }
            if self.race.is_some() {
                self.race_retire(&retired);
            }
            if self.tel.enabled() {
                self.tel.metrics.retired.inc();
                let ctx = self.bodies.get(&retired.id()).map_or(EXTERNAL_RING, |b| b.ctx);
                self.tel.record(
                    ctx,
                    TraceEvent::Retire {
                        subthread: retired.id().raw(),
                        thread: retired.thread().raw(),
                    },
                );
            }
            if let Some(body) = self.bodies.remove(&retired.id()) {
                // A retiring entry's resources are intact (only squash
                // clears them), so deregistering by them matches insert.
                self.windex.remove(retired.id(), body.thread, &retired.resources);
            }
            self.consumers.remove(&retired.id());
            self.pop_sources.remove(&retired.id());
        }
        self.res.rol_peak = self.res.rol_peak.max(self.rol.peak_occupancy());
        if self.tel.enabled() {
            self.tel
                .metrics
                .rol_occupancy_hw
                .observe(self.rol.peak_occupancy() as u64);
        }
    }

    /// Feeds one retiring sub-thread to the happens-before detector,
    /// translating trace-level structure into acquire/release edges. Runs in
    /// retired (total) order, so race reports are deterministic across runs
    /// and context counts.
    fn race_retire(&mut self, entry: &gprs_core::rol::RolEntry) {
        let id = entry.id();
        let Some(body) = self.bodies.get(&id).copied() else {
            return;
        };
        let spec = &self.w.threads[body.thread];
        let open = match body.kind {
            SubThreadKind::ChannelAccess => match spec.segments[body.seg_ix - 1].op {
                SimOp::Push { chan } => Some(OpenEdge::ChanPush(chan)),
                SimOp::Pop { chan } => Some(OpenEdge::ChanPop {
                    chan,
                    producer: self.pop_sources.get(&id).map(|&(_, p)| p),
                }),
                _ => None,
            },
            SubThreadKind::BarrierContinuation => {
                let arrival = body.seg_ix - 1;
                let SimOp::Barrier { barrier } = spec.segments[arrival].op else {
                    unreachable!("a continuation follows its arrival op")
                };
                Some(OpenEdge::BarrierResume {
                    barrier,
                    gen: self.arrival_gen(body.thread, arrival, barrier),
                })
            }
            // Lock and atomic acquire edges are covered by `sync_resources`.
            _ => None,
        };
        let sync: Vec<ResourceId> = entry
            .resources
            .iter()
            .copied()
            .filter(|r| matches!(r, ResourceId::Lock(_) | ResourceId::Atomic(_)))
            .collect();
        let seg = &spec.segments[body.seg_ix];
        let accesses: Vec<(ResourceId, gprs_core::racecheck::AccessKind)> = seg
            .plain
            .map(|(a, kind)| {
                kind.accesses()
                    .iter()
                    .map(|&k| (ResourceId::Atomic(a), k))
                    .collect()
            })
            .unwrap_or_default();
        let arrival = match seg.op {
            SimOp::Barrier { barrier } => {
                Some((barrier, self.arrival_gen(body.thread, body.seg_ix, barrier)))
            }
            _ => None,
        };
        let thread = spec.thread;
        let detector = self.race.as_mut().expect("guarded by caller");
        let races = detector.retire(RetireInfo {
            id,
            thread,
            open,
            sync_resources: &sync,
            accesses: &accesses,
            arrival,
        });
        if !races.is_empty() && self.tel.enabled() {
            self.tel.metrics.races_detected.add(races.len() as u64);
            for r in &races {
                self.tel.record(
                    body.ctx,
                    TraceEvent::RaceDetected {
                        subthread: r.current.subthread.raw(),
                        prior: r.prior.subthread.raw(),
                        resource: resource_code(r.resource),
                    },
                );
            }
        }
    }

    /// The affected set of `culprit`: same-thread successors, consumers of
    /// its pushed items, and younger lock/atomic-alias sharers — closed
    /// transitively. When the culprit's thread has participated in a
    /// detected data race, provenance-based selective scope is unsound
    /// (racy plain accesses leave no alias trail), so recovery escalates to
    /// basic scope for this session — the hybrid policy.
    fn affected_set(&self, culprit: SubThreadId) -> Vec<SubThreadId> {
        let escalate = self.cfg.recovery == RecoveryScope::Selective
            && self.race.as_ref().is_some_and(|d| {
                self.bodies
                    .get(&culprit)
                    .is_some_and(|b| d.is_racy_thread(self.w.threads[b.thread].thread))
            });
        if escalate {
            self.note_escalation(culprit);
            return self.rol.squash_suffix(culprit);
        }
        if self.cfg.recovery == RecoveryScope::Basic {
            return self.rol.squash_suffix(culprit);
        }
        // Worklist closure over the window index. Taint flows old -> young
        // only, so a tainted sub-thread `x` contributes exactly the
        // *younger* in-window entries that share its thread, a non-channel
        // alias, or consumed one of its items. That is equivalent to the
        // original single ascending ROL pass (an entry older than its
        // tainter was visited before the tainter's taint existed), but each
        // step costs index lookups instead of an O(window) rescan.
        let mut affected: std::collections::BTreeSet<SubThreadId> =
            std::collections::BTreeSet::new();
        let mut pending: std::collections::BTreeSet<SubThreadId> =
            std::collections::BTreeSet::new();
        pending.insert(culprit);
        while let Some(x) = pending.pop_first() {
            if !affected.insert(x) {
                continue;
            }
            let younger = (std::ops::Bound::Excluded(x), std::ops::Bound::Unbounded);
            if let Some(body) = self.bodies.get(&x) {
                pending.extend(
                    self.windex.by_thread[body.thread]
                        .range(younger)
                        .filter(|c| !affected.contains(c)),
                );
            }
            if let Some(e) = self.rol.get(x) {
                for r in &e.resources {
                    // Channels are runtime-managed: a pop is undone by
                    // returning the item to the front, so the channel id
                    // itself is not a taint alias — item provenance
                    // (`consumers`, below) is.
                    if matches!(r, gprs_core::ids::ResourceId::Channel(_)) {
                        continue;
                    }
                    if let Some(sharers) = self.windex.by_resource.get(r) {
                        pending
                            .extend(sharers.range(younger).filter(|c| !affected.contains(c)));
                    }
                }
            }
            if let Some(cs) = self.consumers.get(&x) {
                // Consumer lists can retain retired ids (only the producer's
                // own map entry is dropped at its retirement), so gate on
                // window membership like the ascending pass did.
                pending.extend(cs.iter().filter(|&&c| {
                    c > x && !affected.contains(&c) && self.bodies.contains_key(&c)
                }));
            }
        }
        let affected: Vec<SubThreadId> = affected.into_iter().collect();
        debug_assert_eq!(
            affected,
            self.affected_set_rescan(culprit),
            "window-index closure diverged from the ROL rescan"
        );
        affected
    }

    /// The original O(window) taint pass over the reorder list, kept as the
    /// debug-build oracle for the index-driven closure in
    /// [`Gprs::affected_set`].
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn affected_set_rescan(&self, culprit: SubThreadId) -> Vec<SubThreadId> {
        let mut affected: std::collections::BTreeSet<SubThreadId> =
            std::collections::BTreeSet::new();
        affected.insert(culprit);
        let mut tainted_threads: std::collections::BTreeSet<ThreadId> =
            std::collections::BTreeSet::new();
        let mut tainted_resources: std::collections::BTreeSet<gprs_core::ids::ResourceId> =
            std::collections::BTreeSet::new();
        let mut tainted_items: std::collections::BTreeSet<SubThreadId> =
            std::collections::BTreeSet::new();
        if let Some(e) = self.rol.get(culprit) {
            tainted_threads.insert(e.thread());
            for r in &e.resources {
                if !matches!(r, gprs_core::ids::ResourceId::Channel(_)) {
                    tainted_resources.insert(*r);
                }
            }
        }
        tainted_items.insert(culprit);
        // Single ascending pass: taint flows old -> young only.
        for e in self.rol.iter_younger(culprit) {
            let id = e.id();
            let same_thread = tainted_threads.contains(&e.thread());
            let shares_alias = e.resources.iter().any(|r| {
                !matches!(r, gprs_core::ids::ResourceId::Channel(_))
                    && tainted_resources.contains(r)
            });
            let consumed_tainted = tainted_items
                .iter()
                .any(|p| self.consumers.get(p).is_some_and(|c| c.contains(&id)));
            if same_thread || shares_alias || consumed_tainted {
                affected.insert(id);
                tainted_threads.insert(e.thread());
                tainted_items.insert(id);
                for r in &e.resources {
                    if !matches!(r, gprs_core::ids::ResourceId::Channel(_)) {
                        tainted_resources.insert(*r);
                    }
                }
            }
        }
        affected.into_iter().collect()
    }

    /// Records a hybrid Selective-to-Basic escalation in telemetry (the
    /// counters are atomic, so this works from the `&self` scope pass).
    fn note_escalation(&self, culprit: SubThreadId) {
        if !self.tel.enabled() {
            return;
        }
        self.tel.metrics.hybrid_escalations.inc();
        let thread = self.bodies[&culprit].thread;
        self.tel.record(
            EXTERNAL_RING,
            TraceEvent::HybridEscalation {
                culprit: culprit.raw(),
                thread: self.w.threads[thread].thread.raw(),
            },
        );
    }

    /// Which release of barrier `b` the arrival at segment `arrival_ix` of
    /// thread `th` belongs to (each participant arrives once per release).
    fn arrival_gen(&self, th: usize, arrival_ix: usize, b: BarrierId) -> u64 {
        self.w.threads[th].segments[..arrival_ix]
            .iter()
            .filter(|s| matches!(s.op, SimOp::Barrier { barrier } if barrier == b))
            .count() as u64
    }

    /// Segment index of thread `th`'s arrival for release `gen` of `b`.
    fn nth_arrival_ix(&self, th: usize, b: BarrierId, gen: u64) -> usize {
        let mut seen = 0u64;
        for (i, s) in self.w.threads[th].segments.iter().enumerate() {
            if matches!(s.op, SimOp::Barrier { barrier } if barrier == b) {
                if seen == gen {
                    return i;
                }
                seen += 1;
            }
        }
        unreachable!("a recorded release implies the arrival exists in the trace")
    }

    /// The rewind that re-issues squashed sub-thread `body`.
    fn rewind_for(&self, body: &Body) -> Rewind {
        match body.kind {
            SubThreadKind::Initial => Rewind::Initial,
            SubThreadKind::BarrierContinuation => {
                let arrival = body.seg_ix - 1;
                let SimOp::Barrier { barrier } = self.w.threads[body.thread].segments[arrival].op
                else {
                    unreachable!("a continuation follows its arrival op")
                };
                Rewind::Resume(barrier, body.seg_ix)
            }
            _ => Rewind::Op(body.seg_ix - 1),
        }
    }

    /// Closes the squash set and derives per-thread rewind targets.
    ///
    /// Three closure rules iterate to a fixed point:
    /// - each affected thread rewinds to its *oldest* squashed sub-thread,
    ///   and everything at or past that re-entry point is re-executed, so it
    ///   is swept into the squash set (nothing may retire twice);
    /// - consumers of a squashed producer's items are squashed (their pops
    ///   are undone by returning the item to the channel front);
    /// - a rewind that crosses an already-consumed barrier arrival undoes
    ///   that release (and every later one): all participants are forced
    ///   back to their own arrival so the barrier re-synchronizes.
    ///
    /// Returns the squash set, the rewind targets, and the undone releases.
    #[allow(clippy::type_complexity)]
    fn plan_recovery(
        &self,
        affected: &[SubThreadId],
    ) -> (
        std::collections::BTreeSet<SubThreadId>,
        BTreeMap<usize, Rewind>,
        std::collections::BTreeSet<(BarrierId, u64)>,
    ) {
        let mut squash: std::collections::BTreeSet<SubThreadId> =
            affected.iter().copied().collect();
        let mut targets: BTreeMap<usize, Rewind> = BTreeMap::new();
        let mut undone: std::collections::BTreeSet<(BarrierId, u64)> =
            std::collections::BTreeSet::new();
        loop {
            let mut changed = false;
            // Oldest squashed sub-thread per thread decides the rewind.
            for &sid in &squash {
                let body = &self.bodies[&sid];
                let r = self.rewind_for(body);
                let better = match targets.get(&body.thread) {
                    Some(&cur) => r.precedes(cur),
                    None => true,
                };
                if better {
                    targets.insert(body.thread, r);
                    changed = true;
                }
            }
            // Everything the rewind re-executes must be squashed. The
            // window index partitions live bodies by thread, so each target
            // sweeps only its own thread's in-window sub-threads instead of
            // every live body.
            for (&th, &tgt) in &targets {
                for &sid in &self.windex.by_thread[th] {
                    let body = &self.bodies[&sid];
                    debug_assert_eq!(body.thread, th, "window index out of sync");
                    if body.seg_ix >= tgt.reexec_start() && squash.insert(sid) {
                        changed = true;
                    }
                }
            }
            // Consumers of squashed producers are squashed too.
            for sid in squash.clone() {
                if let Some(cs) = self.consumers.get(&sid) {
                    for &c in cs {
                        if self.rol.contains(c) && squash.insert(c) {
                            changed = true;
                        }
                    }
                }
            }
            // Crossing a consumed arrival undoes its (and every later)
            // release of that barrier for all participants.
            let snapshot: Vec<(usize, Rewind)> =
                targets.iter().map(|(&t, &r)| (t, r)).collect();
            for (th, tgt) in snapshot {
                let to = self.threads[th].op_ix;
                let segs = &self.w.threads[th].segments;
                for (a, s) in segs.iter().enumerate().take(to).skip(tgt.op_ix()) {
                    let SimOp::Barrier { barrier } = s.op else { continue };
                    let first = self.arrival_gen(th, a, barrier);
                    let released = self.barrier_gen.get(&barrier).copied().unwrap_or(0);
                    for g in first..released {
                        if !undone.insert((barrier, g)) {
                            continue;
                        }
                        changed = true;
                        for m in 0..self.w.threads.len() {
                            let participates = self.w.threads[m]
                                .segments
                                .iter()
                                .any(|s| matches!(s.op, SimOp::Barrier { barrier: b } if b == barrier));
                            if !participates {
                                continue;
                            }
                            let forced = Rewind::Op(self.nth_arrival_ix(m, barrier, g));
                            let better = match targets.get(&m) {
                                Some(&cur) => forced.precedes(cur),
                                None => true,
                            };
                            if better {
                                targets.insert(m, forced);
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        (squash, targets, undone)
    }

    /// Drains exceptions reported up to `now`, squashing the affected set
    /// out of the reorder list and rewinding the victimized threads so the
    /// token loop re-executes the work as fresh grants. Returns `false` on
    /// exceeding the time cap.
    fn drain_exceptions(&mut self, now: u64) -> bool {
        let latency = self.latency;
        let pending = {
            let Some(inj) = self.injector.as_mut() else {
                return true;
            };
            let mut v = Vec::new();
            while let Some(raise) = inj.peek_next() {
                if raise.saturating_add(latency) > now {
                    break;
                }
                v.push(inj.next_before(raise + 1).expect("peeked arrival"));
                if v.len() > 2_000_000 {
                    // Divergence guard (see the free engine).
                    return false;
                }
            }
            v
        };
        for e in pending {
            let raise = e.raised_at;
            let report = e.reported_at();
            self.res.exceptions += 1;
            if e.scope == gprs_core::exception::ExceptionScope::Local {
                // Local exceptions are handled by ordinary precise
                // interrupts on the victim context (`§2.2`): counted, but
                // no global recovery and nothing squashed.
                self.res.exceptions_ignored += 1;
                continue;
            }
            let victim = (e.victim.raw() as usize) % self.ctxs.len();
            // The sub-thread whose body occupied the victim context when the
            // exception was raised.
            let culprit = self
                .bodies
                .iter()
                .find(|(_, b)| b.ctx == victim && b.start <= raise && raise < b.end)
                .map(|(&id, _)| id);
            let Some(culprit) = culprit else {
                self.res.exceptions_ignored += 1;
                continue;
            };
            self.rol
                .mark_excepted(culprit, e)
                .expect("culprit body implies ROL entry");
            let affected = self.affected_set(culprit);
            if self.tel.enabled() {
                self.tel.metrics.recovery_sessions.inc();
                self.tel
                    .record(victim, TraceEvent::RecoveryBegin { culprit: culprit.raw() });
            }
            let (squash, targets, undone) = self.plan_recovery(&affected);
            let culprit_th = self.bodies[&culprit].thread;
            // Remove squashed entries youngest-first, undoing channel
            // effects: a squashed pop returns the item to the channel
            // front, a squashed push withdraws its item. The entries leave
            // the reorder list entirely — their re-executions are fresh
            // grants that re-enter retirement in total order.
            for &sid in squash.iter().rev() {
                let body = self.bodies.remove(&sid).expect("squashed entries are live");
                let executed = report.min(body.end).saturating_sub(body.start);
                self.res.squashed += 1;
                self.res.redo_cycles += executed;
                if let Some((chan, producer)) = self.pop_sources.remove(&sid) {
                    self.chans.entry(chan).or_default().push_front(producer);
                }
                if body.kind == SubThreadKind::ChannelAccess {
                    if let SimOp::Push { chan } =
                        self.w.threads[body.thread].segments[body.seg_ix - 1].op
                    {
                        if let Some(q) = self.chans.get_mut(&chan) {
                            if let Some(p) = q.iter().position(|&x| x == sid) {
                                q.remove(p);
                            }
                        }
                    }
                }
                // Deregister before `mark_squashed` clears the entry's
                // accumulated aliases — the index must be unwound with the
                // same set it was registered under.
                let entry = self.rol.get(sid).expect("squashed in ROL");
                self.windex.remove(sid, body.thread, &entry.resources);
                self.rol.mark_squashed(sid).expect("squashed in ROL");
                self.rol.remove_squashed(sid).expect("just marked squashed");
                self.consumers.remove(&sid);
                if let Some(d) = self.race.as_mut() {
                    d.forget_subthread(sid);
                }
                if self.tel.enabled() {
                    self.tel.metrics.squashed.inc();
                    self.tel.record(
                        body.ctx,
                        TraceEvent::Squash {
                            subthread: sid.raw(),
                            thread: self.w.threads[body.thread].thread.raw(),
                        },
                    );
                }
            }
            for list in self.consumers.values_mut() {
                list.retain(|c| !squash.contains(c));
            }
            // Chaos-oracle quiescence: squashed entries leave the reorder
            // list *entirely* (they are never re-issued in place — their
            // re-executions are fresh grants), so no stale ROL entry can
            // pollute the retired order after recovery.
            debug_assert!(
                squash
                    .iter()
                    .all(|s| !self.rol.contains(*s) && !self.bodies.contains_key(s)),
                "squashed sub-threads must leave the ROL and body map entirely"
            );
            // Retract undone barrier releases; every participant was forced
            // back to its own arrival, so the barrier re-synchronizes.
            for &(b, g) in &undone {
                let e = self.barrier_gen.entry(b).or_insert(g);
                if g < *e {
                    *e = g;
                }
            }
            // Rewind the victimized threads: they re-request at the report
            // time plus the restore wait (the culprit's thread additionally
            // pays the REX pause + state-reinstatement cost, once).
            for (&th, &tgt) in &targets {
                let was_waiting = self.threads[th].in_barrier;
                let was_done = self.threads[th].done;
                if was_waiting {
                    for q in self.barrier_waiting.values_mut() {
                        q.retain(|&x| x != th);
                    }
                }
                let restore = self.cfg.costs.restore_wait
                    + if th == culprit_th {
                        self.cfg.costs.gprs_restore
                    } else {
                        0
                    };
                let t = &mut self.threads[th];
                t.current_st = None;
                t.in_barrier = false;
                t.done = false;
                match tgt {
                    Rewind::Initial => {
                        t.started = false;
                        t.op_ix = 0;
                        t.resume_barrier = None;
                    }
                    Rewind::Op(i) => {
                        t.op_ix = i;
                        t.resume_barrier = None;
                    }
                    Rewind::Resume(b, i) => {
                        t.op_ix = i;
                        t.resume_barrier = Some(b);
                    }
                }
                t.request_at = report + restore;
                self.res.redo_cycles += restore;
                if was_done {
                    self.live += 1;
                }
                if was_waiting || was_done {
                    let spec = &self.w.threads[th];
                    self.enforcer
                        .register_thread(spec.thread, spec.group, spec.weight)
                        .expect("was deregistered");
                }
                if self.tel.enabled() {
                    self.tel.metrics.restarts.inc();
                    self.tel.record(
                        EXTERNAL_RING,
                        TraceEvent::Restart { thread: self.w.threads[th].thread.raw() },
                    );
                }
            }
            if self.tel.enabled() {
                self.tel
                    .metrics
                    .squashed_per_recovery
                    .record(squash.len() as u64);
                self.tel.record(
                    victim,
                    TraceEvent::RecoveryEnd {
                        culprit: culprit.raw(),
                        squashed: squash.len() as u64,
                    },
                );
            }
            if now > self.cfg.time_cap_cycles {
                return false;
            }
        }
        true
    }

    /// Runs the token loop until every live thread has consumed its `End`
    /// op. Returns `false` on a DNC (time cap or ill-formed deadlock), with
    /// `res.finish_cycles` already set.
    fn token_loop(&mut self, poll_cost: u64) -> bool {
        while self.live > 0 {
            if self.res.replay_divergence.is_some() {
                // A verification hook flagged a divergence mid-grant; stop
                // before the live run drifts further from the tape.
                self.res.finish_cycles = self.cfg.time_cap_cycles;
                return false;
            }
            let Some(holder) = self.enforcer.holder() else {
                if let Some((rec, verified)) = self.replay.as_ref() {
                    if *verified >= rec.events.len() {
                        let msg = match &rec.outcome {
                            RecordedOutcome::Poisoned(orig) => format!(
                                "replay reached the end of a failed recording \
                                 after {verified} events (original failure: {orig})"
                            ),
                            RecordedOutcome::Complete => format!(
                                "replay divergence: recording ended after \
                                 {verified} events but the live run still has \
                                 {} live threads",
                                self.live
                            ),
                        };
                        self.replay_abort(msg);
                        return false;
                    }
                }
                // Everyone deregistered (barrier deadlock in an ill-formed
                // trace): DNC.
                self.res.finish_cycles = self.cfg.time_cap_cycles;
                return false;
            };
            let th = holder.raw() as usize;
            if th >= self.threads.len() {
                self.replay_abort(format!(
                    "replay divergence: recorded thread {} does not exist in \
                     workload {:?} ({} threads)",
                    holder.raw(),
                    self.w.name,
                    self.threads.len()
                ));
                return false;
            }
            if self.threads[th].done {
                if self.enforcer.deregister_thread(holder).is_err() {
                    self.replay_abort(format!(
                        "replay divergence: token holder thread {} is done \
                         and already deregistered (tampered tape or corrupted \
                         schedule state)",
                        holder.raw()
                    ));
                    return false;
                }
                continue;
            }
            let req = self.threads[th].request_at;
            let now = self.token_time.max(req);
            if now > self.cfg.time_cap_cycles {
                self.res.finish_cycles = self.cfg.time_cap_cycles;
                return false;
            }
            if !self.drain_exceptions(now) {
                self.res.finish_cycles = self.cfg.time_cap_cycles;
                return false;
            }
            if self.threads[th].request_at != req {
                // Recovery rewound or delayed the holder; re-evaluate.
                continue;
            }

            // Decide the pending operation.
            let t = &self.threads[th];
            if !t.started {
                let stid = self.enforcer.try_grant(holder).expect("holder");
                self.res.ordering_wait_cycles += now - req;
                self.token_time = now;
                self.threads[th].started = true;
                self.spawn_subthread(th, stid, SubThreadKind::Initial, None, now, 0, None);
                continue;
            }
            if let Some(b) = t.resume_barrier {
                let stid = self.enforcer.try_grant(holder).expect("holder");
                self.res.ordering_wait_cycles += now - req;
                self.token_time = now;
                self.threads[th].resume_barrier = None;
                let body_ix = self.threads[th].op_ix;
                self.spawn_subthread(
                    th,
                    stid,
                    SubThreadKind::BarrierContinuation,
                    Some(SyncOp::BarrierWait(b)),
                    now,
                    body_ix,
                    None,
                );
                continue;
            }

            let op_ix = t.op_ix;
            let op = self.w.threads[th].segments[op_ix].op;
            match op {
                SimOp::Pop { chan } if self.chans.entry(chan).or_default().is_empty() => {
                    // Under replay this cannot happen on a faithful tape:
                    // channel contents are a function of the granted-event
                    // prefix, so the recorded Pop found an item. An empty
                    // queue means the tape lies about this schedule — and
                    // since `ReplaySchedule::pass` holds the cursor, passing
                    // here would spin forever. Abort by name instead.
                    if let Some((_, verified)) = self.replay.as_ref() {
                        let pos = *verified;
                        self.replay_abort(format!(
                            "replay divergence at event {pos}: recorded \
                             thread {} polls an empty channel the recording \
                             granted",
                            holder.raw()
                        ));
                        return false;
                    }
                    // Empty FIFO: the holder wastes its turn and re-polls on
                    // its next turn (Figure 7).
                    self.enforcer.pass_turn(holder);
                    self.res.polls += 1;
                    self.token_time = now + poll_cost;
                    continue;
                }
                _ => {}
            }

            let stid = self.enforcer.try_grant(holder).expect("holder");
            self.res.ordering_wait_cycles += now - req;
            self.token_time = now;
            
            self.complete_current(th);

            match op {
                SimOp::Lock { lock, cs_work } => {
                    self.threads[th].op_ix = op_ix + 1;
                    self.spawn_subthread(
                        th,
                        stid,
                        SubThreadKind::CriticalSection,
                        Some(SyncOp::LockAcquire(lock)),
                        now,
                        op_ix + 1,
                        Some((lock, cs_work)),
                    );
                }
                SimOp::Atomic { atomic } => {
                    self.threads[th].op_ix = op_ix + 1;
                    self.spawn_subthread(
                        th,
                        stid,
                        SubThreadKind::AtomicOp,
                        Some(SyncOp::Atomic(atomic)),
                        now,
                        op_ix + 1,
                        None,
                    );
                }
                SimOp::Push { chan } => {
                    // Provenance is the pushing sub-thread: squashing it
                    // un-pushes the item, so the consumer belongs to its
                    // closure (the value's computing sub-thread is covered
                    // transitively via the same-thread rule).
                    let producer = stid;
                    self.chans.entry(chan).or_default().push_back(producer);
                    self.threads[th].op_ix = op_ix + 1;
                    self.spawn_subthread(
                        th,
                        stid,
                        SubThreadKind::ChannelAccess,
                        Some(SyncOp::ChanPush(chan)),
                        now,
                        op_ix + 1,
                        None,
                    );
                }
                SimOp::Pop { chan } => {
                    let producer = self
                        .chans
                        .get_mut(&chan)
                        .and_then(|q| q.pop_front())
                        .expect("guarded by the empty-poll arm");
                    if self.rol.contains(producer) {
                        self.consumers.entry(producer).or_default().push(stid);
                    }
                    self.pop_sources.insert(stid, (chan, producer));
                    self.threads[th].op_ix = op_ix + 1;
                    self.spawn_subthread(
                        th,
                        stid,
                        SubThreadKind::ChannelAccess,
                        Some(SyncOp::ChanPop(chan)),
                        now,
                        op_ix + 1,
                        None,
                    );
                }
                SimOp::Barrier { barrier } => {
                    // Structural turn-consuming event: recorded/verified
                    // like a grant, with the `EVT_ARRIVE` tag (no
                    // sub-thread opens here in either engine).
                    self.record_event(holder, EVT_ARRIVE);
                    self.threads[th].op_ix = op_ix + 1;
                    self.threads[th].in_barrier = true;
                    self.enforcer.deregister_thread(holder).expect("registered");
                    let waiting = self.barrier_waiting.entry(barrier).or_default();
                    waiting.push(th);
                    let needed = self.barrier_participants[&barrier] as usize;
                    if waiting.len() == needed {
                        let mut batch =
                            std::mem::take(self.barrier_waiting.get_mut(&barrier).unwrap());
                        batch.sort_unstable();
                        *self.barrier_gen.entry(barrier).or_insert(0) += 1;
                        for wth in batch {
                            let spec = &self.w.threads[wth];
                            self.enforcer
                                .register_thread(spec.thread, spec.group, spec.weight)
                                .expect("was deregistered");
                            let t = &mut self.threads[wth];
                            t.in_barrier = false;
                            t.resume_barrier = Some(barrier);
                            t.request_at = now;
                        }
                    }
                }
                SimOp::End => {
                    self.record_event(holder, EVT_EXIT);
                    self.threads[th].done = true;
                    self.live -= 1;
                    self.finish = self.finish.max(now);
                    self.enforcer.deregister_thread(holder).expect("registered");
                }
            }
        }
        true
    }

    fn run(mut self) -> SimResult {
        // Record + replay in one run would write a recording whose footer
        // digests can never differ from the tape that drove it — a useless
        // artifact that looks authoritative. Refuse loudly instead.
        if self.recorder.is_some() && self.replay.is_some() {
            self.recorder = None;
            self.record_path = None;
            self.replay_abort("cannot record and replay in the same run".to_string());
            return self.finish_result();
        }
        if let Some((rec, _)) = &self.replay {
            if rec.header.mode != DriveMode::Sim {
                let msg = format!(
                    "replay mode mismatch: recording was captured in {} mode \
                     but this run drives in {} mode",
                    rec.header.mode,
                    DriveMode::Sim
                );
                self.replay_abort(msg);
                return self.finish_result();
            }
        }
        let poll_cost = self.cfg.costs.poll.max(1);
        loop {
            if !self.token_loop(poll_cost) {
                return self.finish_result();
            }
            // Final drain: exceptions reported before the finish time still
            // trigger recovery, and each recovery can extend the finish time
            // (context busy times grow) or even revive a finished thread —
            // iterate to the fixed point, re-entering the token loop when a
            // recovery rewound a thread past its `End`.
            let mut finish = self
                .finish
                .max(self.ctxs.iter().copied().max().unwrap_or(0));
            loop {
                if finish > self.cfg.time_cap_cycles || !self.drain_exceptions(finish) {
                    self.res.finish_cycles = self.cfg.time_cap_cycles;
                    return self.finish_result();
                }
                if self.live > 0 {
                    break;
                }
                let new_finish = self
                    .finish
                    .max(self.ctxs.iter().copied().max().unwrap_or(0));
                if new_finish == finish {
                    break;
                }
                finish = new_finish;
            }
            if self.live > 0 {
                continue;
            }
            self.res.completed = true;
            self.res.finish_cycles = finish;
            return self.finish_result();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{secs_to_cycles, CYCLES_PER_SEC};
    use crate::free::{run_free, FreeRunConfig};
    use crate::workload::{Segment, ThreadSpec};
    use gprs_core::ids::GroupId;

    fn spec(th: u32, group: u32, weight: u32, segs: Vec<Segment>) -> ThreadSpec {
        ThreadSpec::new(ThreadId::new(th), GroupId::new(group), weight, segs)
    }

    fn data_parallel(threads: u32, work: u64) -> Workload {
        Workload::new(
            "dp",
            (0..threads)
                .map(|i| spec(i, 0, 1, vec![Segment::new(work, SimOp::End)]))
                .collect(),
        )
    }

    /// A Pbzip2-shaped pipeline: one reader (group 0) pushing `blocks`
    /// items, `compressors` compress threads (group 1) popping them.
    fn pipeline(blocks: usize, compressors: u32, read_work: u64, compress_work: u64) -> Workload {
        let chan = ChannelId::new(0);
        let mut threads = vec![spec(
            0,
            0,
            4,
            (0..blocks)
                .map(|_| Segment::new(read_work, SimOp::Push { chan }))
                .collect(),
        )];
        let per = blocks / compressors as usize;
        for c in 0..compressors {
            threads.push(spec(
                1 + c,
                1,
                4,
                (0..per)
                    .flat_map(|_| {
                        [
                            Segment::new(0, SimOp::Pop { chan }),
                            Segment::new(compress_work, SimOp::Atomic {
                                atomic: gprs_core::ids::AtomicId::new(1),
                            }),
                        ]
                    })
                    .collect(),
            ));
        }
        Workload::new("pipeline", threads)
    }

    #[test]
    fn data_parallel_runs_and_counts_subthreads() {
        let w = data_parallel(4, 1_000_000);
        let r = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        assert!(r.completed);
        assert_eq!(r.subthreads, 4); // one initial sub-thread per thread
        assert_eq!(r.checkpoints, 4);
        assert!(r.finish_cycles >= 1_000_000);
    }

    #[test]
    fn gprs_is_deterministic() {
        let w = pipeline(40, 3, 10_000, 200_000);
        let a = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        let b = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        assert_eq!(a, b);
    }

    #[test]
    fn round_robin_serializes_pipeline_balance_aware_restores_it() {
        // Figure 7: with a compute-heavy compress stage, round-robin starves
        // the compressors (each gets work only when the token happens to
        // align), while balance-aware keeps them all busy.
        let w = pipeline(120, 6, 10_000, 2_000_000);
        let rr = run_gprs(&w, &GprsSimConfig::round_robin(8));
        let ba = run_gprs(&w, &GprsSimConfig::balance_aware(8));
        assert!(rr.completed && ba.completed);
        assert!(
            rr.finish_cycles > ba.finish_cycles * 2,
            "round-robin {} vs balance-aware {}",
            rr.finish_cycles,
            ba.finish_cycles
        );
    }

    #[test]
    fn pipeline_empty_polls_are_counted() {
        let w = pipeline(20, 2, 500_000, 100_000);
        let r = run_gprs(&w, &GprsSimConfig::round_robin(4));
        assert!(r.completed);
        assert!(r.polls > 0, "slow producer must cause empty polls");
    }

    #[test]
    fn gprs_matches_pthreads_within_overheads() {
        // For embarrassingly parallel work the GPRS time must equal the
        // Pthreads time plus bounded mechanism overheads.
        let w = data_parallel(4, 50_000_000);
        let pt = run_free(&w, &FreeRunConfig::pthreads(4));
        let g = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        assert!(g.finish_cycles >= pt.finish_cycles);
        let overhead = g.finish_cycles as f64 / pt.finish_cycles as f64;
        assert!(overhead < 1.05, "overhead {overhead}");
    }

    #[test]
    fn load_balancing_packs_uneven_subthreads() {
        // 8 uneven tasks on 2 contexts: task-pool packing beats
        // thread-pinned execution when granularity is finer.
        let coarse = Workload::new(
            "coarse",
            vec![
                spec(0, 0, 1, vec![Segment::new(8_000_000, SimOp::End)]),
                spec(1, 0, 1, vec![Segment::new(1_000_000, SimOp::End)]),
            ],
        );
        let fine = Workload::new(
            "fine",
            (0..6)
                .map(|i| {
                    spec(i, 0, 1, vec![Segment::new(1_500_000, SimOp::End)])
                })
                .collect(),
        );
        let c = run_gprs(&coarse, &GprsSimConfig::balance_aware(2));
        let f = run_gprs(&fine, &GprsSimConfig::balance_aware(2));
        assert!(f.finish_cycles < c.finish_cycles);
    }

    #[test]
    fn barriers_synchronize_iterations() {
        let b = BarrierId::new(0);
        let w = Workload::new(
            "bar",
            (0..3)
                .map(|i| {
                    spec(
                        i,
                        0,
                        1,
                        vec![
                            Segment::new((i as u64 + 1) * 1_000_000, SimOp::Barrier { barrier: b }),
                            Segment::new(1_000_000, SimOp::End),
                        ],
                    )
                })
                .collect(),
        );
        let r = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        assert!(r.completed);
        // Barrier release waits for the slowest (3 Mcyc) + second phase.
        assert!(r.finish_cycles >= 4_000_000);
        assert_eq!(r.subthreads, 6); // 3 initial + 3 continuations
    }

    /// The durable mirror records one `Retire` per retirement (squashed
    /// work never retires, so injection does not inflate the stream), the
    /// epoch's `Spec` names the workload, and the final digest equals the
    /// run's retired-order hash — the same ledger shape the real runtime
    /// writes, so the two are comparable record-for-record.
    #[test]
    fn persist_mirrors_the_retirement_stream() {
        use gprs_core::persist::{MemoryBackend, PersistBackend};
        let w = data_parallel(4, secs_to_cycles(1.0));
        let backend = std::sync::Arc::new(MemoryBackend::new());
        let r = run_gprs(
            &w,
            &GprsSimConfig::balance_aware(4)
                .with_exceptions(InjectorConfig::paper(2.0, 4, CYCLES_PER_SEC).with_seed(7))
                .with_time_cap(secs_to_cycles(200.0))
                .with_persist(backend.clone()),
        );
        assert!(r.completed, "{r}");
        let image = backend.load().expect("memory backend loads");
        assert_eq!(image.spec.as_deref(), Some(format!("sim {}", w.name).as_str()));
        assert_eq!(image.retires.len() as u64, r.telemetry.retired_count);
        assert_eq!(
            image.retires.last().expect("non-empty run").digest,
            r.telemetry.retired_hash,
        );
        assert_eq!(
            image.retires.last().expect("non-empty run").retired,
            r.telemetry.retired_count,
        );
        assert!(backend.stats().fsyncs >= 1, "finish issues the final sync");
    }

    #[test]
    fn exceptions_on_idle_contexts_are_ignored() {
        let w = data_parallel(2, secs_to_cycles(2.0));
        // 16 contexts, 2 busy: most exceptions strike idle contexts.
        let r = run_gprs(
            &w,
            &GprsSimConfig::balance_aware(16)
                .with_exceptions(InjectorConfig::paper(10.0, 16, CYCLES_PER_SEC).with_seed(3))
                .with_time_cap(secs_to_cycles(200.0)),
        );
        assert!(r.completed, "{r}");
        assert!(r.exceptions_ignored > 0);
    }

    #[test]
    fn selective_restart_spares_unaffected_threads() {
        // Two independent long-running threads; exceptions delay only the
        // victims, so completion is far earlier than basic recovery which
        // squashes every younger sub-thread.
        let w = pipeline(60, 3, 2_000_000, 200_000_000);
        let inj = InjectorConfig::paper(4.0, 4, CYCLES_PER_SEC).with_seed(11);
        let cap = secs_to_cycles(500.0);
        let sel = run_gprs(
            &w,
            &GprsSimConfig::balance_aware(4)
                .with_exceptions(inj.clone())
                .with_time_cap(cap),
        );
        let basic = run_gprs(
            &w,
            &GprsSimConfig::balance_aware(4)
                .with_recovery(RecoveryScope::Basic)
                .with_exceptions(inj)
                .with_time_cap(cap),
        );
        assert!(sel.completed, "{sel}");
        assert!(sel.exceptions > 0);
        assert!(basic.squashed >= sel.squashed);
    }

    #[test]
    fn gprs_survives_rates_where_cpr_fails() {
        // The headline behaviour (Figure 10): at a rate past CPR's tipping
        // point, GPRS still completes.
        let w = data_parallel(8, secs_to_cycles(2.0));
        let rate = 8.0;
        let inj = InjectorConfig::paper(rate, 8, CYCLES_PER_SEC).with_seed(5);
        let cap = secs_to_cycles(600.0);
        let cpr = run_free(
            &w,
            &FreeRunConfig::cpr(8, secs_to_cycles(1.0))
                .with_exceptions(inj.clone())
                .with_time_cap(cap),
        );
        let gprs = run_gprs(
            &w,
            &GprsSimConfig::balance_aware(8)
                .with_exceptions(inj)
                .with_time_cap(cap),
        );
        assert!(!cpr.completed, "CPR should tip at 8 exc/s: {cpr}");
        assert!(gprs.completed, "GPRS should survive: {gprs}");
    }

    #[test]
    fn retired_hash_converges_under_injection() {
        // Squashed sub-threads leave the ROL and re-execute as fresh grants,
        // so a fault-injected run must retire the same per-thread order —
        // and therefore the same retired-order hash — as the clean run.
        let w = pipeline(40, 3, 2_000_000, 20_000_000);
        let clean = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        assert!(clean.completed);
        for seed in [5u64, 23, 91] {
            let inj = InjectorConfig::paper(6.0, 4, CYCLES_PER_SEC).with_seed(seed);
            let f = run_gprs(
                &w,
                &GprsSimConfig::balance_aware(4)
                    .with_exceptions(inj)
                    .with_time_cap(secs_to_cycles(600.0)),
            );
            assert!(f.completed, "seed {seed}: {f}");
            assert_eq!(
                f.telemetry.retired_hash, clean.telemetry.retired_hash,
                "seed {seed}: injected run must converge to the clean retired order"
            );
            assert_eq!(f.telemetry.retired_count, clean.telemetry.retired_count);
        }
    }

    #[test]
    fn barrier_release_undo_converges() {
        // Threads 0-2 iterate atomic+barrier rounds with schedule weight 3,
        // so each token cycle completes a whole barrier generation; thread 3
        // (weight 1) opens one long atomic body that stays in flight across
        // several *released* generations, blocking retirement the whole
        // while. An exception in the long body taints the shared atomic
        // alias, squashing threads 0 and 1 back past a consumed arrival —
        // recovery must undo the crossed release and force thread 2
        // (untainted, so not otherwise rewound) back to its own arrival.
        // Without the release undo, threads 0 and 1 would re-arrive at a
        // generation thread 2 has already passed and the run would deadlock
        // into a DNC.
        let a = gprs_core::ids::AtomicId::new(0);
        let c = gprs_core::ids::AtomicId::new(1);
        let b = BarrierId::new(0);
        let mut threads = Vec::new();
        for i in 0..3u32 {
            let atomic = if i < 2 { a } else { c };
            let mut segs: Vec<Segment> = (0..30)
                .flat_map(|_| {
                    [
                        Segment::new(100_000, SimOp::Atomic { atomic }),
                        Segment::new(50_000, SimOp::Barrier { barrier: b }),
                    ]
                })
                .collect();
            segs.push(Segment::new(100_000, SimOp::End));
            threads.push(spec(i, i, 3, segs));
        }
        threads.push(spec(
            3,
            3,
            1,
            vec![
                Segment::new(100_000, SimOp::Atomic { atomic: a }),
                Segment::new(20_000_000, SimOp::Atomic { atomic: a }),
                Segment::new(100_000, SimOp::End),
            ],
        ));
        let w = Workload::new("straggler-bar", threads);
        let clean = run_gprs(&w, &GprsSimConfig::weighted(4));
        assert!(clean.completed);
        let mut squashed_total = 0;
        for seed in [1u64, 7, 40] {
            let inj = InjectorConfig::paper(500.0, 4, CYCLES_PER_SEC).with_seed(seed);
            let f = run_gprs(
                &w,
                &GprsSimConfig::weighted(4)
                    .with_exceptions(inj)
                    .with_time_cap(secs_to_cycles(600.0)),
            );
            assert!(f.completed, "seed {seed}: {f}");
            squashed_total += f.squashed;
            assert_eq!(
                f.telemetry.retired_hash, clean.telemetry.retired_hash,
                "seed {seed}: barrier recovery must converge"
            );
            assert_eq!(f.telemetry.retired_count, clean.telemetry.retired_count);
        }
        assert!(squashed_total > 0, "injection must actually squash work");
    }

    #[test]
    fn recovery_is_reproducible() {
        // Same seed, same workload: the entire injected run — including
        // which sub-threads squash and the recovered schedule — replays
        // identically.
        let w = pipeline(40, 3, 2_000_000, 20_000_000);
        let inj = InjectorConfig::paper(6.0, 4, CYCLES_PER_SEC).with_seed(23);
        let cfg = GprsSimConfig::balance_aware(4)
            .with_exceptions(inj)
            .with_time_cap(secs_to_cycles(600.0));
        let a = run_gprs(&w, &cfg);
        let b = run_gprs(&w, &cfg);
        assert!(a.completed);
        assert_eq!(a, b);
    }

    #[test]
    fn time_cap_gives_dnc() {
        let w = data_parallel(1, 1_000_000);
        let r = run_gprs(&w, &GprsSimConfig::balance_aware(1).with_time_cap(10));
        assert!(!r.completed);
    }

    #[test]
    fn lock_aliases_propagate_dependence() {
        // TH0 and TH1 alternate under the same lock; an exception in TH0's
        // critical-section sub-thread squashes TH1's younger CS sub-threads.
        let l = LockId::new(0);
        let w = Workload::new(
            "locked",
            (0..2)
                .map(|i| {
                    spec(
                        i,
                        0,
                        1,
                        (0..10)
                            .map(|_| Segment::new(500_000, SimOp::Lock {
                                lock: l,
                                cs_work: 100_000,
                            }))
                            .collect(),
                    )
                })
                .collect(),
        );
        let r = run_gprs(
            &w,
            &GprsSimConfig::balance_aware(2).with_exceptions(
                InjectorConfig::paper(20.0, 2, CYCLES_PER_SEC).with_seed(9),
            ),
        );
        assert!(r.completed);
        if r.exceptions > r.exceptions_ignored {
            assert!(r.squashed > 0);
        }
    }
}
