//! Property-based tests of the simulator engines.

use gprs_core::exception::InjectorConfig;
use gprs_core::ids::{AtomicId, ChannelId, GroupId, ThreadId};
use gprs_core::order::ScheduleKind;
use gprs_sim::costs::CYCLES_PER_SEC;
use gprs_sim::free::{run_free, FreeRunConfig};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_sim::workload::{Segment, SimOp, ThreadSpec, Workload};
use proptest::prelude::*;

/// A random but well-formed workload: data-parallel threads with atomic
/// sync points, plus an optional producer/consumer pair.
fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        2u32..8,                      // threads
        1usize..6,                    // segments each
        1_000u64..2_000_000,          // work per segment
        any::<bool>(),                // include a pipeline pair
    )
        .prop_map(|(threads, segs, work, pipeline)| {
            let mut specs: Vec<ThreadSpec> = (0..threads)
                .map(|i| {
                    ThreadSpec::new(
                        ThreadId::new(i),
                        GroupId::new(0),
                        1,
                        (0..segs)
                            .map(|k| {
                                Segment::new(work + k as u64 * 999, SimOp::Atomic {
                                    atomic: AtomicId::new(k as u64 % 3),
                                })
                            })
                            .collect(),
                    )
                })
                .collect();
            if pipeline {
                let chan = ChannelId::new(0);
                let items = 5usize;
                specs.push(ThreadSpec::new(
                    ThreadId::new(threads),
                    GroupId::new(1),
                    1,
                    (0..items)
                        .map(|_| Segment::new(work / 2, SimOp::Push { chan }))
                        .collect(),
                ));
                specs.push(ThreadSpec::new(
                    ThreadId::new(threads + 1),
                    GroupId::new(2),
                    1,
                    (0..items)
                        .map(|_| Segment::new(work / 3, SimOp::Pop { chan }))
                        .collect(),
                ));
            }
            Workload::new("prop", specs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every engine completes every well-formed workload and is
    /// reproducible.
    #[test]
    fn engines_complete_and_reproduce(w in arb_workload(), ctx in 1u32..8) {
        let a = run_free(&w, &FreeRunConfig::pthreads(ctx));
        let b = run_free(&w, &FreeRunConfig::pthreads(ctx));
        prop_assert!(a.completed);
        prop_assert_eq!(&a, &b);
        for kind in [ScheduleKind::RoundRobin, ScheduleKind::BalanceBasic] {
            let mut cfg = GprsSimConfig::balance_aware(ctx);
            cfg.schedule = kind;
            let g1 = run_gprs(&w, &cfg);
            let g2 = run_gprs(&w, &cfg);
            prop_assert!(g1.completed, "{:?}", kind);
            prop_assert_eq!(g1, g2);
        }
    }

    /// GPRS creates exactly one sub-thread per segment plus barrier
    /// continuations (none here), and retires what it creates.
    #[test]
    fn gprs_subthread_accounting(w in arb_workload()) {
        let r = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        prop_assert!(r.completed);
        prop_assert_eq!(r.subthreads, w.total_segments());
        prop_assert_eq!(r.checkpoints, r.subthreads);
    }

    /// More contexts never make GPRS slower (work-conserving scheduler).
    #[test]
    fn gprs_scales_monotonically(w in arb_workload()) {
        let t2 = run_gprs(&w, &GprsSimConfig::balance_aware(2)).finish_cycles;
        let t8 = run_gprs(&w, &GprsSimConfig::balance_aware(8)).finish_cycles;
        prop_assert!(t8 <= t2 + t2 / 10, "2ctx {t2} vs 8ctx {t8}");
    }

    /// Exception injection never loses work for free: the finish time with
    /// exceptions is at least the fault-free finish time (same seed class).
    #[test]
    fn exceptions_never_speed_things_up(w in arb_workload(), rate in 1.0f64..50.0, seed in 0u64..50) {
        let free = run_gprs(&w, &GprsSimConfig::balance_aware(4));
        let inj = InjectorConfig::paper(rate, 4, CYCLES_PER_SEC).with_seed(seed);
        let cfg = GprsSimConfig::balance_aware(4)
            .with_exceptions(inj)
            .with_time_cap(free.finish_cycles.saturating_mul(50).max(1_000_000));
        let faulty = run_gprs(&w, &cfg);
        if faulty.completed {
            prop_assert!(faulty.finish_cycles >= free.finish_cycles);
        }
    }

    /// CPR checkpointing overhead grows as the interval shrinks.
    #[test]
    fn cpr_overhead_monotone_in_frequency(w in arb_workload()) {
        let base = run_free(&w, &FreeRunConfig::pthreads(4));
        let coarse = run_free(&w, &FreeRunConfig::cpr(4, base.finish_cycles / 2 + 1));
        let fine = run_free(&w, &FreeRunConfig::cpr(4, (base.finish_cycles / 16).max(1)));
        prop_assert!(coarse.finish_cycles >= base.finish_cycles);
        prop_assert!(fine.checkpoints >= coarse.checkpoints);
    }
}
