//! The metrics registry: monotonic counters, high-water marks, and
//! power-of-two latency/size histograms.
//!
//! All primitives are relaxed atomics — safe to bump from any thread with
//! no locking — and every recording path starts with an `enabled` check in
//! the [`crate::Telemetry`] facade so the disabled configuration costs one
//! predictable branch.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` from a caller that serializes all bumps of this counter
    /// (e.g. the engine, which only touches its hot-path counters while
    /// holding its state lock). Load+store instead of a locked RMW —
    /// concurrent unserialized use loses increments (never UB).
    #[inline]
    pub fn add_serialized(&self, n: u64) {
        self.0
            .store(self.0.load(Ordering::Relaxed) + n, Ordering::Relaxed);
    }

    /// [`Counter::add_serialized`] by one.
    #[inline]
    pub fn inc_serialized(&self) {
        self.add_serialized(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotone maximum (high-water mark).
#[derive(Debug, Default)]
pub struct HighWater(AtomicU64);

impl HighWater {
    /// Raises the mark to `v` if higher.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// [`HighWater::observe`] from a caller that serializes all
    /// observations (see [`Counter::add_serialized`]).
    #[inline]
    pub fn observe_serialized(&self, v: u64) {
        if v > self.0.load(Ordering::Relaxed) {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current mark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log₂-bucketed histogram of latencies or sizes.
///
/// Bucket `i` counts values `v` with `⌊log₂(max(v,1))⌋ = i`, clamped to the
/// last bucket. Tracks count, sum, and max exactly.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: HighWater,
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        let bucket = (63 - v.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.observe(v);
    }

    /// Records one value from a caller that serializes all records into
    /// this histogram (see [`Counter::add_serialized`]).
    #[inline]
    pub fn record_serialized(&self, v: u64) {
        let bucket = (63 - v.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        let b = &self.buckets[bucket];
        b.store(b.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.count
            .store(self.count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.sum
            .store(self.sum.load(Ordering::Relaxed) + v, Ordering::Relaxed);
        let m = self.max.get();
        if v > m {
            self.max.observe(v);
        }
    }

    /// Immutable snapshot of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.get(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts (`buckets[i]` ⇔ `⌊log₂ v⌋ = i`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Every metric the GPRS machinery exposes, by name.
///
/// The set mirrors the mechanism costs the paper's Figures 8–11 decompose:
/// ordering (grants), ROL management (occupancy), checkpointing (count and
/// bytes), WAL traffic, and recovery-session behaviour.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Sub-threads created (inserted into the total order).
    pub subthreads_created: Counter,
    /// Order-enforcer grants (≥ creations when squashed work re-executes).
    pub grants: Counter,
    /// Sub-threads retired from the ROL head.
    pub retired: Counter,
    /// Sub-threads squashed by recovery plans.
    pub squashed: Counter,
    /// Logical threads reinstated for re-execution.
    pub restarts: Counter,
    /// History-buffer checkpoints recorded.
    pub checkpoints: Counter,
    /// Bytes recorded into history-buffer checkpoints (simulator: modeled
    /// segment bytes; runtime: 0 — snapshot sizes are opaque).
    pub checkpoint_bytes: Counter,
    /// WAL records appended.
    pub wal_appends: Counter,
    /// WAL records consumed for undo during recovery.
    pub wal_undos: Counter,
    /// WAL records pruned at retirement.
    pub wal_prunes: Counter,
    /// WAL undo records never appended because the static restartability
    /// proof showed them dead (write-only cells whose value is never
    /// observed).
    pub wal_records_elided: Counter,
    /// Checkpoints never taken because the static restartability proof
    /// showed the boundary read-only (rewinding to it restores nothing).
    pub checkpoints_elided: Counter,
    /// Most WAL records outstanding at once.
    pub wal_outstanding_hw: HighWater,
    /// Most in-flight ROL entries at once.
    pub rol_occupancy_hw: HighWater,
    /// Recovery sessions (exceptions acted on).
    pub recovery_sessions: Counter,
    /// CPR barrier quiesces.
    pub cpr_barriers: Counter,
    /// CPR checkpoints recorded.
    pub cpr_records: Counter,
    /// CPR rollbacks.
    pub cpr_restores: Counter,
    /// Data races flagged by the happens-before detector.
    pub races_detected: Counter,
    /// Selective restarts widened to basic because the culprit's thread
    /// participated in a detected race.
    pub hybrid_escalations: Counter,
    /// Static analysis passes executed ahead of a run.
    pub analysis_runs: Counter,
    /// Shared cells classified by the static lockset pass.
    pub analysis_cells: Counter,
    /// Cells the static pass classified as potential races.
    pub analysis_potential_races: Counter,
    /// Diagnostics (all severities) emitted by the static pass.
    pub analysis_diagnostics: Counter,
    /// Runs where the proven-DRF verdict elided the dynamic race detector.
    pub analysis_racecheck_elided: Counter,
    /// Grants issued on the fast path: the granting worker reached the
    /// grant from its own deposit in the same lock acquisition, without a
    /// condvar sleep in between.
    pub fast_path_grants: Counter,
    /// Targeted wakeups issued (`notify_one` on the scheduler queue or a
    /// keyed lock-wait shard).
    pub wakeups_issued: Counter,
    /// Wakeups after which the woken thread found nothing to do and went
    /// back to sleep (thundering-herd / shard-collision waste).
    pub wakeups_spurious: Counter,
    /// Fresh heap allocations on pooled hot paths (access vectors, WAL
    /// buffers) — pool misses; steady state should hold this constant.
    pub hot_path_allocs: Counter,
    /// Durable WAL segments sealed (fsync'd and closed) by the
    /// persistence backend.
    pub wal_segments_sealed: Counter,
    /// fsync (or equivalent durability barrier) calls issued by the
    /// persistence backend.
    pub fsyncs: Counter,
    /// Retired sub-threads re-verified against a durable retire prefix
    /// during a resumed (restart-as-recovery) run.
    pub recovered_prefix_len: Counter,
    /// Sub-threads squashed per recovery session.
    pub squashed_per_recovery: Histogram,
    /// Recovery-session wall time in nanoseconds (runtime) or cycles
    /// (simulator).
    pub recovery_duration: Histogram,
    /// Checkpoint sizes in bytes (simulator-modeled).
    pub checkpoint_size: Histogram,
    /// Consecutive ROL heads retired per retirement batch (per lock
    /// acquisition that retired at least one sub-thread).
    pub retire_batch: Histogram,
}

impl Metrics {
    /// Snapshot of all counters/high-waters as stable `(name, value)`
    /// pairs, in declaration order.
    pub fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("subthreads_created", self.subthreads_created.get()),
            ("grants", self.grants.get()),
            ("retired", self.retired.get()),
            ("squashed", self.squashed.get()),
            ("restarts", self.restarts.get()),
            ("checkpoints", self.checkpoints.get()),
            ("checkpoint_bytes", self.checkpoint_bytes.get()),
            ("wal_appends", self.wal_appends.get()),
            ("wal_undos", self.wal_undos.get()),
            ("wal_prunes", self.wal_prunes.get()),
            ("wal_records_elided", self.wal_records_elided.get()),
            ("checkpoints_elided", self.checkpoints_elided.get()),
            ("wal_outstanding_hw", self.wal_outstanding_hw.get()),
            ("rol_occupancy_hw", self.rol_occupancy_hw.get()),
            ("recovery_sessions", self.recovery_sessions.get()),
            ("cpr_barriers", self.cpr_barriers.get()),
            ("cpr_records", self.cpr_records.get()),
            ("cpr_restores", self.cpr_restores.get()),
            ("races_detected", self.races_detected.get()),
            ("hybrid_escalations", self.hybrid_escalations.get()),
            ("analysis_runs", self.analysis_runs.get()),
            ("analysis_cells", self.analysis_cells.get()),
            ("analysis_potential_races", self.analysis_potential_races.get()),
            ("analysis_diagnostics", self.analysis_diagnostics.get()),
            ("analysis_racecheck_elided", self.analysis_racecheck_elided.get()),
            ("fast_path_grants", self.fast_path_grants.get()),
            ("wakeups_issued", self.wakeups_issued.get()),
            ("wakeups_spurious", self.wakeups_spurious.get()),
            ("hot_path_allocs", self.hot_path_allocs.get()),
            ("wal_segments_sealed", self.wal_segments_sealed.get()),
            ("fsyncs", self.fsyncs.get()),
            ("recovered_prefix_len", self.recovered_prefix_len.get()),
        ]
    }

    /// Snapshot of all histograms as stable `(name, snapshot)` pairs.
    pub fn histogram_snapshot(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            ("squashed_per_recovery", self.squashed_per_recovery.snapshot()),
            ("recovery_duration", self.recovery_duration.snapshot()),
            ("checkpoint_size", self.checkpoint_size.snapshot()),
            ("retire_batch", self.retire_batch.snapshot()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn high_water_is_monotone() {
        let h = HighWater::default();
        h.observe(3);
        h.observe(9);
        h.observe(5);
        assert_eq!(h.get(), 9);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1034);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 2); // 0 (clamped to 1) and 1
        assert_eq!(s.buckets[1], 2); // 2, 3
        assert_eq!(s.buckets[2], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1024
        assert!((s.mean() - 1034.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn snapshots_have_stable_names() {
        let m = Metrics::default();
        m.grants.add(2);
        let names: Vec<&str> = m.counter_snapshot().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"grants"));
        assert!(names.contains(&"rol_occupancy_hw"));
        let snap = m.counter_snapshot();
        assert_eq!(snap.iter().find(|(n, _)| *n == "grants").unwrap().1, 2);
        assert!(names.contains(&"fast_path_grants"));
        assert!(names.contains(&"wakeups_spurious"));
        assert!(names.contains(&"hot_path_allocs"));
        assert_eq!(m.histogram_snapshot().len(), 4);
    }
}
