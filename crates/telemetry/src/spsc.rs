//! Bounded single-producer/single-consumer hand-off channels.
//!
//! The GPRS engine moves expensive artifact *construction* — history-buffer
//! snapshots, WAL record checksums — off its serialized critical section and
//! onto the worker that already owns the data. The finished artifacts travel
//! back to the engine through one of these channels per worker: the worker
//! (the single producer) pushes without locks, and whoever holds the engine
//! lock (the single logical consumer) drains.
//!
//! Unlike [`crate::ring::EventRing`] — which may overwrite old events — a
//! hand-off channel must never lose an entry, so `push` reports a full
//! buffer and the caller falls back to its locked slow path.
//!
//! # Safety contract
//!
//! At most one thread pushes and at most one thread pops at any instant.
//! The integrating runtime guarantees this structurally: each worker pushes
//! only into its own channel, and popping happens either on the same worker
//! (at its deposit, under the engine lock) or by the recovery path after
//! worker quiescence.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded wait-free SPSC queue.
pub struct Channel<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to write (producer-owned, read by the consumer).
    head: AtomicUsize,
    /// Next slot to read (consumer-owned, read by the producer).
    tail: AtomicUsize,
}

// SAFETY: slot access is disjoint between the single producer (slots in
// [head, ...)) and the single consumer (slots in [tail, head)); the
// acquire/release pairs on `head`/`tail` publish the slot contents.
unsafe impl<T: Send> Sync for Channel<T> {}
unsafe impl<T: Send> Send for Channel<T> {}

impl<T> std::fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Channel<T> {
    /// Creates a channel holding up to `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Channel {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Appends an item (producer side). Returns `Err(item)` when full —
    /// the caller applies it through its locked slow path instead.
    pub fn push(&self, item: T) -> Result<(), T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail == self.slots.len() {
            return Err(item);
        }
        let slot = &self.slots[head % self.slots.len()];
        // SAFETY: the slot is outside [tail, head) — the consumer does not
        // touch it — and a previous pop consumed any prior value.
        unsafe {
            *slot.get() = MaybeUninit::new(item);
        }
        self.head.store(head + 1, Ordering::Release);
        Ok(())
    }

    /// Removes the oldest item (consumer side), or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let slot = &self.slots[tail % self.slots.len()];
        // SAFETY: the slot is inside [tail, head) — fully written by the
        // producer (the acquire load of `head` synchronizes with its
        // release store) — and is read exactly once before `tail` advances.
        let item = unsafe { slot.get().read().assume_init() };
        self.tail.store(tail + 1, Ordering::Release);
        Some(item)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Acquire) - self.tail.load(Ordering::Acquire)
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> Drop for Channel<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let ch = Channel::new(4);
        assert!(ch.is_empty());
        for i in 0..4 {
            ch.push(i).unwrap();
        }
        assert_eq!(ch.push(99), Err(99));
        assert_eq!(ch.len(), 4);
        assert_eq!((0..4).map(|_| ch.pop().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(ch.pop().is_none());
    }

    #[test]
    fn wraps_across_capacity() {
        let ch = Channel::new(2);
        for round in 0..10 {
            ch.push(round).unwrap();
            ch.push(round + 100).unwrap();
            assert_eq!(ch.pop(), Some(round));
            assert_eq!(ch.pop(), Some(round + 100));
        }
    }

    #[test]
    fn drops_queued_items() {
        let item = Arc::new(());
        let ch = Channel::new(4);
        ch.push(Arc::clone(&item)).unwrap();
        ch.push(Arc::clone(&item)).unwrap();
        drop(ch);
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn concurrent_producer_consumer() {
        let ch = Arc::new(Channel::new(8));
        let producer = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                while sent < 10_000 {
                    if ch.push(sent).is_ok() {
                        sent += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut got = Vec::with_capacity(10_000);
        while got.len() < 10_000 {
            if let Some(v) = ch.pop() {
                got.push(v);
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(got.iter().copied().eq(0..10_000));
    }
}
