//! Per-worker fixed-capacity event rings with lock-free appends.
//!
//! Each worker owns one [`EventRing`]; appends are wait-free (a plain
//! load+store on the write cursor under the single-writer contract below,
//! then a plain slot write) and never allocate. The ring wraps: once full,
//! new events overwrite the oldest; the monotone cursor itself records how
//! many were lost. [`RingSet::drain`] merges all rings into one trace
//! ordered by global sequence number.
//!
//! # Safety contract
//!
//! A ring supports **one writer at a time**. The integrating runtime
//! guarantees this either structurally (each worker thread writes only its
//! own ring; the simulator is single-threaded) or by serializing all
//! recording under its state lock, as the real GPRS engine does. Draining
//! requires writer quiescence (workers joined / run finished); this is
//! asserted against the sequence counter where practical, and documented at
//! every call site.

use crate::event::TimedEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-capacity single-writer event ring.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[UnsafeCell<MaybeUninit<TimedEvent>>]>,
    /// `slots.len() - 1`; the capacity is a power of two so the wrap is a
    /// mask, not a division, on the push path.
    mask: usize,
    /// Total events ever pushed (monotone; `min(head, capacity)` slots are
    /// live, the live window being the most recent events). Doubles as the
    /// drop accounting: everything past `capacity` overwrote an older
    /// event, so `push` needs no second atomic.
    head: AtomicUsize,
}

// SAFETY: slot access is single-writer by the contract above; `drain`
// requires quiescence. The atomics provide the cross-thread ordering for
// the cursor itself.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// Creates a ring holding up to `capacity` events (min 1; rounded up
    /// to the next power of two so the push path wraps with a mask).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            mask: capacity - 1,
            head: AtomicUsize::new(0),
        }
    }

    /// Appends an event (wait-free; overwrites the oldest when full).
    pub fn push(&self, ev: TimedEvent) {
        // Load+store suffices under the single-writer contract (module
        // docs); the cursor stays atomic only for the cross-thread drain.
        let ix = self.head.load(Ordering::Relaxed);
        self.head.store(ix + 1, Ordering::Relaxed);
        let slot = &self.slots[ix & self.mask];
        // SAFETY: single-writer contract — no concurrent writer to this
        // ring, and readers only run after writer quiescence.
        unsafe {
            *slot.get() = MaybeUninit::new(ev);
        }
    }

    /// Events lost to wrapping (everything pushed past the capacity).
    pub fn dropped(&self) -> u64 {
        let head = self.head.load(Ordering::Relaxed);
        head.saturating_sub(self.slots.len()) as u64
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == 0
    }

    /// Copies out the live events, oldest first.
    ///
    /// Requires writer quiescence (see module docs); takes `&self` because
    /// integrations hold the ring behind an `Arc`.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len();
        let live = head.min(cap);
        let start = head - live;
        (start..head)
            .map(|ix| {
                let slot = &self.slots[ix % cap];
                // SAFETY: indices in [start, head) were fully written by the
                // (now quiescent) writer; TimedEvent is Copy.
                unsafe { (*slot.get()).assume_init() }
            })
            .collect()
    }
}

/// One ring per worker plus one for external threads (controller, main).
#[derive(Debug)]
pub struct RingSet {
    rings: Vec<EventRing>,
}

impl RingSet {
    /// Creates `workers + 1` rings of `capacity` events each; the last ring
    /// collects events from threads that are not workers.
    pub fn new(workers: usize, capacity: usize) -> Self {
        RingSet {
            rings: (0..workers + 1).map(|_| EventRing::new(capacity)).collect(),
        }
    }

    /// The ring for `worker`, routing out-of-range indices (external
    /// threads) to the shared external ring.
    pub fn ring(&self, worker: usize) -> &EventRing {
        let ix = worker.min(self.rings.len() - 1);
        &self.rings[ix]
    }

    /// Total events lost across rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Merges all rings into one trace totally ordered by sequence number.
    ///
    /// Requires writer quiescence on every ring.
    pub fn drain(&self) -> Vec<TimedEvent> {
        let mut all: Vec<TimedEvent> = self
            .rings
            .iter()
            .flat_map(|r| r.snapshot())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(seq: u64, worker: u32) -> TimedEvent {
        TimedEvent {
            seq,
            worker,
            event: TraceEvent::Grant {
                subthread: seq,
                thread: worker,
            },
        }
    }

    #[test]
    fn push_and_snapshot_in_order() {
        let r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i, 0));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wrap_keeps_newest_and_counts_drops() {
        let r = EventRing::new(4);
        for i in 0..10 {
            r.push(ev(i, 0));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn ringset_merges_by_sequence() {
        let set = RingSet::new(2, 16);
        set.ring(0).push(ev(0, 0));
        set.ring(1).push(ev(1, 1));
        set.ring(0).push(ev(2, 0));
        set.ring(9).push(ev(3, 9)); // external ring
        let all = set.drain();
        assert_eq!(all.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(set.dropped(), 0);
    }

    #[test]
    fn concurrent_workers_write_their_own_rings() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let set = Arc::new(RingSet::new(4, 1024));
        let seq = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let set = Arc::clone(&set);
            let seq = Arc::clone(&seq);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let s = seq.fetch_add(1, Ordering::Relaxed);
                    set.ring(w as usize).push(ev(s, w));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = set.drain();
        assert_eq!(all.len(), 800);
        // Totally ordered, no duplicates.
        assert!(all.windows(2).all(|x| x[0].seq < x[1].seq));
    }
}
