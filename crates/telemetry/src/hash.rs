//! Streaming determinism hashes.
//!
//! Two complementary digests make the paper's central guarantee — a
//! deterministic total order over sub-threads that survives exceptions —
//! checkable in O(1) memory, replacing the old capped `grant_trace` vector:
//!
//! * [`ScheduleHash`] folds the **grant order** (the exact total order the
//!   order enforcer produced, including re-grants after squashes). Two
//!   same-seed, fault-free runs must produce identical schedule hashes.
//! * [`RetiredOrderHash`] folds each logical thread's **retirement
//!   sequence** and combines the per-thread digests commutatively. It is
//!   invariant to cross-thread interleaving and to the fresh sub-thread ids
//!   that re-execution assigns, so a run that suffered exceptions converges
//!   to the same digest as a fault-free run for order-faithful workloads —
//!   this is the "globally precise restart" observable.
//!
//! Both use FNV-1a over little-endian `u64` words: stable across platforms
//! and releases, cheap enough for the grant hot path.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Derives a stable domain-separation seed from a workload name.
///
/// Two structurally identical schedules from *different* programs must not
/// share digests (the `swaptions`/`histogram` collision: same thread count,
/// same per-thread op structure, hence identical order hashes). Folding the
/// name into the hash seed separates the domains without perturbing the
/// order-sensitivity of the digests themselves. Returns 0 for an empty
/// name, which both hash types treat as "unseeded".
pub fn name_seed(name: &str) -> u64 {
    if name.is_empty() {
        return 0;
    }
    let mut h = FNV_OFFSET;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A streaming FNV-1a hasher over `u64` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one word (as 8 little-endian bytes).
    pub fn write_u64(&mut self, word: u64) {
        let mut h = self.0;
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Streaming digest of the grant order (sub-thread id, thread id) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleHash {
    hash: Fnv1a,
    grants: u64,
}

impl Default for ScheduleHash {
    fn default() -> Self {
        ScheduleHash {
            hash: Fnv1a::new(),
            grants: 0,
        }
    }
}

impl ScheduleHash {
    /// A fresh, empty schedule digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A digest domain-separated by `seed` (see [`name_seed`]); seed 0 is
    /// identical to [`ScheduleHash::new`].
    pub fn seeded(seed: u64) -> Self {
        let mut h = Self::default();
        if seed != 0 {
            h.hash.write_u64(seed);
        }
        h
    }

    /// Folds one grant, in total order.
    pub fn record(&mut self, subthread: u64, thread: u32) {
        self.hash.write_u64(subthread);
        self.hash.write_u64(thread as u64);
        self.grants += 1;
    }

    /// Number of grants folded so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// The digest; stable for a given grant sequence.
    pub fn digest(&self) -> u64 {
        if self.grants == 0 {
            return 0;
        }
        let mut h = self.hash;
        h.write_u64(self.grants);
        h.finish()
    }
}

/// Commutative-across-threads digest of per-thread retirement sequences.
///
/// Each thread accumulates an FNV-1a stream of
/// `(per-thread retirement index, sub-thread kind tag)` — deliberately NOT
/// the sub-thread id, which changes when a squashed sub-thread re-executes
/// under a fresh sequence number. Thread digests (salted with the thread
/// id) are combined with wrapping addition, making the total insensitive to
/// cross-thread retirement interleaving, which legitimately differs between
/// a fault-free run and a recovered run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetiredOrderHash {
    /// thread id → (retire count, running hash); Vec keyed by insertion
    /// order, linear scan (thread counts are small).
    threads: Vec<(u32, u64, Fnv1a)>,
    /// Domain-separation seed folded into every per-thread stream (0 =
    /// unseeded, the historical digest).
    seed: u64,
}

impl RetiredOrderHash {
    /// A fresh, empty retirement digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A digest domain-separated by `seed` (see [`name_seed`]); seed 0 is
    /// identical to [`RetiredOrderHash::new`]. The seed prefixes every
    /// per-thread stream, so the commutative wrapping-add combination of
    /// per-thread digests is preserved.
    pub fn seeded(seed: u64) -> Self {
        RetiredOrderHash {
            threads: Vec::new(),
            seed,
        }
    }

    /// Folds one retirement for `thread` with the retired sub-thread's
    /// stable kind tag.
    pub fn record(&mut self, thread: u32, kind: u8) {
        let slot = match self.threads.iter_mut().find(|(t, _, _)| *t == thread) {
            Some(s) => s,
            None => {
                let mut h = Fnv1a::new();
                if self.seed != 0 {
                    h.write_u64(self.seed);
                }
                self.threads.push((thread, 0, h));
                self.threads.last_mut().expect("just pushed")
            }
        };
        slot.2.write_u64(slot.1);
        slot.2.write_u64(kind as u64);
        slot.1 += 1;
    }

    /// Total retirements folded.
    pub fn retirements(&self) -> u64 {
        self.threads.iter().map(|(_, n, _)| n).sum()
    }

    /// Per-thread `(thread, retired count)` splits in first-retirement
    /// order — the durable checkpoint metadata a restarted run verifies
    /// its replay against.
    pub fn splits(&self) -> Vec<(u32, u64)> {
        self.threads.iter().map(|&(t, n, _)| (t, n)).collect()
    }

    /// The combined digest: per-thread finalized digests (salted with the
    /// thread id and its count) summed with wrapping addition.
    pub fn digest(&self) -> u64 {
        let mut acc: u64 = 0;
        for &(thread, count, hash) in &self.threads {
            let mut h = hash;
            h.write_u64(thread as u64);
            h.write_u64(count);
            acc = acc.wrapping_add(h.finish());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_hash_is_order_sensitive() {
        let mut a = ScheduleHash::new();
        a.record(0, 0);
        a.record(1, 1);
        let mut b = ScheduleHash::new();
        b.record(1, 1);
        b.record(0, 0);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.grants(), 2);
    }

    #[test]
    fn schedule_hash_is_reproducible() {
        let run = |seq: &[(u64, u32)]| {
            let mut h = ScheduleHash::new();
            for &(s, t) in seq {
                h.record(s, t);
            }
            h.digest()
        };
        let seq = [(0, 0), (1, 1), (2, 0), (3, 2)];
        assert_eq!(run(&seq), run(&seq));
        assert_ne!(run(&seq), run(&seq[..3]));
    }

    #[test]
    fn empty_schedule_digest_is_zero() {
        assert_eq!(ScheduleHash::new().digest(), 0);
        let mut h = ScheduleHash::new();
        h.record(0, 0);
        assert_ne!(h.digest(), 0);
    }

    #[test]
    fn retired_hash_ignores_interleaving() {
        // Thread 0 retires kinds [1, 2]; thread 1 retires kinds [3].
        let mut a = RetiredOrderHash::new();
        a.record(0, 1);
        a.record(1, 3);
        a.record(0, 2);
        let mut b = RetiredOrderHash::new();
        b.record(1, 3);
        b.record(0, 1);
        b.record(0, 2);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.retirements(), 3);
    }

    #[test]
    fn retired_hash_is_per_thread_order_sensitive() {
        let mut a = RetiredOrderHash::new();
        a.record(0, 1);
        a.record(0, 2);
        let mut b = RetiredOrderHash::new();
        b.record(0, 2);
        b.record(0, 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn retired_hash_distinguishes_threads() {
        let mut a = RetiredOrderHash::new();
        a.record(0, 1);
        let mut b = RetiredOrderHash::new();
        b.record(1, 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn name_seed_separates_workloads() {
        assert_eq!(name_seed(""), 0);
        assert_ne!(name_seed("swaptions"), 0);
        assert_ne!(name_seed("swaptions"), name_seed("histogram"));
        assert_eq!(name_seed("swaptions"), name_seed("swaptions"));
    }

    #[test]
    fn zero_seed_matches_unseeded() {
        let mut a = ScheduleHash::new();
        let mut b = ScheduleHash::seeded(0);
        a.record(0, 0);
        b.record(0, 0);
        assert_eq!(a.digest(), b.digest());
        let mut a = RetiredOrderHash::new();
        let mut b = RetiredOrderHash::seeded(0);
        a.record(0, 1);
        b.record(0, 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn seeds_separate_identical_orders() {
        // The swaptions/histogram collision shape: identical grant and
        // retirement structure, different program names.
        let (s1, s2) = (name_seed("swaptions"), name_seed("histogram"));
        let mut a = ScheduleHash::seeded(s1);
        let mut b = ScheduleHash::seeded(s2);
        for i in 0..8 {
            a.record(i, (i % 3) as u32);
            b.record(i, (i % 3) as u32);
        }
        assert_ne!(a.digest(), b.digest());
        let mut a = RetiredOrderHash::seeded(s1);
        let mut b = RetiredOrderHash::seeded(s2);
        for i in 0..8 {
            a.record((i % 3) as u32, 7);
            b.record((i % 3) as u32, 7);
        }
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn seeded_retired_hash_still_ignores_interleaving() {
        let s = name_seed("pbzip2");
        let mut a = RetiredOrderHash::seeded(s);
        a.record(0, 1);
        a.record(1, 3);
        a.record(0, 2);
        let mut b = RetiredOrderHash::seeded(s);
        b.record(1, 3);
        b.record(0, 1);
        b.record(0, 2);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn retired_hash_distinguishes_counts() {
        // A thread that retired nothing differs from one that retired one
        // sub-thread of the "zero" kind.
        let mut a = RetiredOrderHash::new();
        a.record(0, 0);
        let b = RetiredOrderHash::new();
        assert_ne!(a.digest(), b.digest());
    }
}
