//! The structured trace-event model.
//!
//! Every observable transition of the GPRS machinery — sub-thread lifecycle,
//! checkpointing, WAL traffic, recovery sessions, and the coordinated-CPR
//! baseline's barrier protocol — is described by one [`TraceEvent`] variant.
//! Events are deliberately small `Copy` payloads (raw ids, not rich
//! structs) so they can live in fixed-capacity ring buffers with no
//! allocation on the hot path.

/// One traced transition of the execution machinery.
///
/// Ids are raw (`SubThreadId::raw()`, `ThreadId::raw()`) to keep the event
/// type dependency-free and `Copy`; consumers that need typed ids can
/// reconstruct them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A sub-thread was created (split at a synchronization boundary) and
    /// inserted into the deterministic total order.
    SubThreadCreate {
        subthread: u64,
        thread: u32,
        /// Stable tag of the sub-thread kind (see `kind_tag` helpers in the
        /// integrating crates).
        kind: u8,
    },
    /// The order enforcer granted the sub-thread its position (it may now
    /// execute its opening synchronization operation).
    Grant { subthread: u64, thread: u32 },
    /// The sub-thread retired from the reorder-list head; its recovery
    /// state became prunable.
    Retire { subthread: u64, thread: u32 },
    /// A recovery plan squashed this in-flight sub-thread.
    Squash { subthread: u64, thread: u32 },
    /// A squashed logical thread was reinstated for re-execution.
    Restart { thread: u32 },
    /// A history-buffer checkpoint was recorded for the sub-thread.
    CheckpointTaken { subthread: u64, bytes: u64 },
    /// A WAL record was appended on behalf of the sub-thread.
    WalAppend { subthread: u64 },
    /// A WAL record was consumed for undo during recovery.
    WalUndo { subthread: u64 },
    /// WAL records of a retired sub-thread were pruned.
    WalPrune { subthread: u64, records: u64 },
    /// A recovery session began, triggered by an exception attributed to
    /// `culprit`.
    RecoveryBegin { culprit: u64 },
    /// The recovery session for `culprit` finished after squashing
    /// `squashed` sub-threads.
    RecoveryEnd { culprit: u64, squashed: u64 },
    /// Coordinated CPR: the checkpoint barrier quiesced all threads.
    CprBarrier { epoch: u64 },
    /// Coordinated CPR: a global checkpoint was recorded.
    CprRecord { epoch: u64, bytes: u64 },
    /// Coordinated CPR: execution rolled back to the checkpoint.
    CprRestore { epoch: u64 },
    /// The happens-before race detector flagged two unordered plain
    /// accesses at `subthread`'s retirement; `prior` is the earlier access's
    /// sub-thread and `resource` the tag-packed cell alias (see
    /// `gprs_core::racecheck::resource_code`).
    RaceDetected { subthread: u64, prior: u64, resource: u64 },
    /// Recovery widened a selective restart to a basic (suffix) restart
    /// because `culprit`'s thread participated in a detected race.
    HybridEscalation { culprit: u64, thread: u32 },
    /// The static analyzer classified the workload ahead of the run:
    /// `advice` is 0 for selective, 1 for hybrid-CPR; `elided` is 1 when
    /// the proven-DRF verdict switched the dynamic race detector off.
    AnalysisVerdict { cells: u32, potential_races: u32, diagnostics: u32, advice: u8, elided: u8 },
}

impl TraceEvent {
    /// Short stable name for JSON export and debugging.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SubThreadCreate { .. } => "subthread_create",
            TraceEvent::Grant { .. } => "grant",
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::Squash { .. } => "squash",
            TraceEvent::Restart { .. } => "restart",
            TraceEvent::CheckpointTaken { .. } => "checkpoint_taken",
            TraceEvent::WalAppend { .. } => "wal_append",
            TraceEvent::WalUndo { .. } => "wal_undo",
            TraceEvent::WalPrune { .. } => "wal_prune",
            TraceEvent::RecoveryBegin { .. } => "recovery_begin",
            TraceEvent::RecoveryEnd { .. } => "recovery_end",
            TraceEvent::CprBarrier { .. } => "cpr_barrier",
            TraceEvent::CprRecord { .. } => "cpr_record",
            TraceEvent::CprRestore { .. } => "cpr_restore",
            TraceEvent::RaceDetected { .. } => "race_detected",
            TraceEvent::HybridEscalation { .. } => "hybrid_escalation",
            TraceEvent::AnalysisVerdict { .. } => "analysis_verdict",
        }
    }

    /// `(key, value)` payload fields for structured export, in a stable
    /// order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            TraceEvent::SubThreadCreate { subthread, thread, kind } => vec![
                ("subthread", subthread),
                ("thread", thread as u64),
                ("kind", kind as u64),
            ],
            TraceEvent::Grant { subthread, thread }
            | TraceEvent::Retire { subthread, thread }
            | TraceEvent::Squash { subthread, thread } => {
                vec![("subthread", subthread), ("thread", thread as u64)]
            }
            TraceEvent::Restart { thread } => vec![("thread", thread as u64)],
            TraceEvent::CheckpointTaken { subthread, bytes } => {
                vec![("subthread", subthread), ("bytes", bytes)]
            }
            TraceEvent::WalAppend { subthread } | TraceEvent::WalUndo { subthread } => {
                vec![("subthread", subthread)]
            }
            TraceEvent::WalPrune { subthread, records } => {
                vec![("subthread", subthread), ("records", records)]
            }
            TraceEvent::RecoveryBegin { culprit } => vec![("culprit", culprit)],
            TraceEvent::RecoveryEnd { culprit, squashed } => {
                vec![("culprit", culprit), ("squashed", squashed)]
            }
            TraceEvent::CprBarrier { epoch } | TraceEvent::CprRestore { epoch } => {
                vec![("epoch", epoch)]
            }
            TraceEvent::CprRecord { epoch, bytes } => {
                vec![("epoch", epoch), ("bytes", bytes)]
            }
            TraceEvent::RaceDetected { subthread, prior, resource } => vec![
                ("subthread", subthread),
                ("prior", prior),
                ("resource", resource),
            ],
            TraceEvent::HybridEscalation { culprit, thread } => {
                vec![("culprit", culprit), ("thread", thread as u64)]
            }
            TraceEvent::AnalysisVerdict { cells, potential_races, diagnostics, advice, elided } => vec![
                ("cells", cells as u64),
                ("potential_races", potential_races as u64),
                ("diagnostics", diagnostics as u64),
                ("advice", advice as u64),
                ("elided", elided as u64),
            ],
        }
    }
}

/// A trace event stamped with its global sequence number and the worker
/// (ring) that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Global record order (monotone across all rings).
    pub seq: u64,
    /// Ring index of the recording worker (`workers` = external callers).
    pub worker: u32,
    /// The event itself.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_fields_are_stable() {
        let e = TraceEvent::SubThreadCreate {
            subthread: 7,
            thread: 2,
            kind: 3,
        };
        assert_eq!(e.name(), "subthread_create");
        assert_eq!(
            e.fields(),
            vec![("subthread", 7), ("thread", 2), ("kind", 3)]
        );
        let r = TraceEvent::RecoveryEnd {
            culprit: 4,
            squashed: 9,
        };
        assert_eq!(r.name(), "recovery_end");
        assert_eq!(r.fields(), vec![("culprit", 4), ("squashed", 9)]);
    }

    #[test]
    fn events_are_small() {
        // The ring pre-allocates capacity × size_of::<TimedEvent>(); keep
        // the payload compact.
        assert!(std::mem::size_of::<TimedEvent>() <= 48);
    }
}
