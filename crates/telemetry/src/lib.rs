//! # gprs-telemetry
//!
//! Unified event tracing, metrics, and determinism verification for the
//! GPRS reproduction — shared by the real threaded runtime
//! (`gprs-runtime`) and the virtual-time simulator (`gprs-sim`).
//!
//! Three layers, all optional at run time via [`TelemetryConfig`]:
//!
//! 1. **Event tracing** ([`event`], [`ring`]) — structured [`TraceEvent`]s
//!    recorded into per-worker fixed-capacity rings with lock-free appends,
//!    drained post-run into a totally-ordered trace.
//! 2. **Determinism hashes** ([`hash`]) — a streaming [`ScheduleHash`] over
//!    the grant order (same seed ⇒ same digest) and a
//!    [`RetiredOrderHash`] over per-thread retirement sequences (a run
//!    that recovered from exceptions converges to the fault-free digest
//!    for order-faithful workloads). O(1) memory; replaces the old capped
//!    `grant_trace` vector.
//! 3. **Metrics** ([`metrics`]) — counters, high-water marks, and log₂
//!    histograms for the mechanism costs the paper's figures decompose.
//!
//! [`TelemetrySummary`] is the common end-of-run artifact embedded in
//! `gprs_runtime::RunReport` and `gprs_sim::result::SimResult`, exportable
//! as JSON ([`json`]) by the figure/table bench binaries.

pub mod event;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod spsc;

pub use event::{TimedEvent, TraceEvent};
pub use hash::{name_seed, Fnv1a, RetiredOrderHash, ScheduleHash};
pub use json::JsonWriter;
pub use metrics::{Counter, HighWater, Histogram, HistogramSnapshot, Metrics};
pub use ring::{EventRing, RingSet};

use std::sync::atomic::{AtomicU64, Ordering};

/// Run-time telemetry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. Disabled telemetry records nothing and costs one
    /// branch per instrumentation point.
    pub enabled: bool,
    /// Capacity of each per-worker event ring (events; oldest overwritten
    /// when full).
    pub ring_capacity: usize,
    /// Opt-in bounded raw grant trace for debugging: keep the first `n`
    /// `(subthread, thread)` grants verbatim alongside the streaming hash.
    /// 0 (the default) keeps none.
    pub raw_trace_cap: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            ring_capacity: 4096,
            raw_trace_cap: 0,
        }
    }
}

impl TelemetryConfig {
    /// A configuration that records nothing.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            ring_capacity: 0,
            raw_trace_cap: 0,
        }
    }
}

/// The shared recording facade: event rings + metrics registry.
///
/// Cheap to share behind an `Arc`; every mutation path is lock-free. The
/// determinism hashes are *not* part of this type — they are owned by the
/// engine's serialized state (the grant path already runs under the
/// engine's ordering discipline), see [`ScheduleHash`] /
/// [`RetiredOrderHash`].
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    seq: AtomicU64,
    rings: Option<RingSet>,
    /// The metrics registry (bump only behind an [`Telemetry::enabled`]
    /// check to keep the disabled path free).
    pub metrics: Metrics,
}

impl Telemetry {
    /// Creates a facade for `workers` worker threads (one ring each plus
    /// one for external threads).
    pub fn new(cfg: &TelemetryConfig, workers: usize) -> Self {
        Telemetry {
            enabled: cfg.enabled,
            seq: AtomicU64::new(0),
            rings: cfg
                .enabled
                .then(|| RingSet::new(workers, cfg.ring_capacity)),
            metrics: Metrics::default(),
        }
    }

    /// A no-op facade.
    pub fn disabled() -> Self {
        Self::new(&TelemetryConfig::disabled(), 0)
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event from `worker` (out-of-range worker indices route
    /// to the external ring). No-op when disabled.
    #[inline]
    pub fn record(&self, worker: usize, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(rings) = &self.rings {
            // Load+store, not `fetch_add`: recording is serialized by the
            // integrating runtime (the rings' single-writer contract — see
            // `ring` module docs), so the locked RMW would buy nothing and
            // costs measurably on the per-grant hot path.
            let seq = self.seq.load(Ordering::Relaxed);
            self.seq.store(seq + 1, Ordering::Relaxed);
            rings.ring(worker).push(TimedEvent {
                seq,
                worker: worker as u32,
                event,
            });
        }
    }

    /// Events lost to ring wrapping.
    pub fn dropped_events(&self) -> u64 {
        self.rings.as_ref().map_or(0, |r| r.dropped())
    }

    /// Drains all rings into a totally-ordered trace. Requires writer
    /// quiescence (run finished / workers joined) — see [`ring`] docs.
    pub fn drain_events(&self) -> Vec<TimedEvent> {
        self.rings.as_ref().map_or_else(Vec::new, |r| r.drain())
    }

    /// Assembles the end-of-run summary from this facade plus the
    /// engine-owned hashes and optional raw grant trace.
    pub fn summarize(
        &self,
        schedule: &ScheduleHash,
        retired: &RetiredOrderHash,
        raw_grant_trace: Vec<(u64, u32)>,
    ) -> TelemetrySummary {
        TelemetrySummary {
            enabled: self.enabled,
            schedule_hash: schedule.digest(),
            schedule_grants: schedule.grants(),
            retired_hash: retired.digest(),
            retired_count: retired.retirements(),
            counters: self.metrics.counter_snapshot(),
            histograms: self.metrics.histogram_snapshot(),
            events: self.drain_events(),
            dropped_events: self.dropped_events(),
            raw_grant_trace,
        }
    }
}

/// The end-of-run telemetry artifact embedded in run reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Whether telemetry was enabled for the run (all other fields are
    /// zero/empty when not).
    pub enabled: bool,
    /// Streaming FNV-1a digest of the grant order.
    pub schedule_hash: u64,
    /// Grants folded into `schedule_hash`.
    pub schedule_grants: u64,
    /// Interleaving-invariant digest of per-thread retirement sequences.
    pub retired_hash: u64,
    /// Retirements folded into `retired_hash`.
    pub retired_count: u64,
    /// Counter/high-water values, in stable declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram snapshots, in stable declaration order.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// The drained, totally-ordered event trace (bounded by ring capacity).
    pub events: Vec<TimedEvent>,
    /// Events lost to ring wrapping.
    pub dropped_events: u64,
    /// Opt-in bounded raw grant trace (`(subthread, thread)`), empty unless
    /// `raw_trace_cap > 0`.
    pub raw_grant_trace: Vec<(u64, u32)>,
}

impl TelemetrySummary {
    /// Looks up a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Writes this summary as a JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("enabled").bool(self.enabled);
        w.field_hex("schedule_hash", self.schedule_hash);
        w.field_u64("schedule_grants", self.schedule_grants);
        w.field_hex("retired_hash", self.retired_hash);
        w.field_u64("retired_count", self.retired_count);
        w.key("counters").begin_object();
        for (name, v) in &self.counters {
            w.field_u64(name, *v);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (name, h) in &self.histograms {
            w.key(name).begin_object();
            w.field_u64("count", h.count)
                .field_u64("sum", h.sum)
                .field_u64("max", h.max)
                .key("mean")
                .f64(h.mean());
            w.key("buckets").begin_array();
            // Trim trailing empty buckets for readability.
            let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            for &b in &h.buckets[..last] {
                w.u64(b);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.field_u64("dropped_events", self.dropped_events);
        w.key("events").begin_array();
        for e in &self.events {
            w.begin_object()
                .field_u64("seq", e.seq)
                .field_u64("worker", e.worker as u64)
                .field_str("type", e.event.name());
            for (k, v) in e.event.fields() {
                w.field_u64(k, v);
            }
            w.end_object();
        }
        w.end_array();
        if !self.raw_grant_trace.is_empty() {
            w.key("raw_grant_trace").begin_array();
            for &(st, t) in &self.raw_grant_trace {
                w.begin_array().u64(st).u64(t as u64).end_array();
            }
            w.end_array();
        }
        w.end_object();
    }

    /// This summary as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// A copy with the event trace dropped (hashes, counters, and
    /// histograms kept) — for compact artifact export where the bounded
    /// raw trace would still dominate the document.
    pub fn without_events(&self) -> TelemetrySummary {
        TelemetrySummary {
            events: Vec::new(),
            raw_grant_trace: Vec::new(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        t.record(0, TraceEvent::Grant { subthread: 0, thread: 0 });
        assert!(t.drain_events().is_empty());
        assert_eq!(t.dropped_events(), 0);
        let s = t.summarize(&ScheduleHash::new(), &RetiredOrderHash::new(), Vec::new());
        assert!(!s.enabled);
        assert_eq!(s.schedule_hash, 0);
        assert!(s.events.is_empty());
    }

    #[test]
    fn summary_round_trip() {
        let t = Telemetry::new(&TelemetryConfig::default(), 2);
        t.metrics.grants.add(3);
        t.metrics.retired.add(3);
        t.record(0, TraceEvent::Grant { subthread: 0, thread: 0 });
        t.record(1, TraceEvent::Retire { subthread: 0, thread: 0 });
        let mut sched = ScheduleHash::new();
        sched.record(0, 0);
        let mut ret = RetiredOrderHash::new();
        ret.record(0, 1);
        let s = t.summarize(&sched, &ret, vec![(0, 0)]);
        assert!(s.enabled);
        assert_eq!(s.counter("grants"), 3);
        assert_eq!(s.schedule_grants, 1);
        assert_eq!(s.retired_count, 1);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].seq, 0);
        let json = s.to_json();
        assert!(json.contains("\"schedule_hash\":\"0x"));
        assert!(json.contains("\"grants\":3"));
        assert!(json.contains("\"type\":\"retire\""));
        assert!(json.contains("\"raw_grant_trace\":[[0,0]]"));
    }

    #[test]
    fn sequence_numbers_are_globally_ordered() {
        let t = Telemetry::new(&TelemetryConfig::default(), 3);
        for i in 0..30u64 {
            t.record((i % 3) as usize, TraceEvent::WalAppend { subthread: i });
        }
        let evs = t.drain_events();
        assert_eq!(evs.len(), 30);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn summary_lookup_helpers() {
        let s = TelemetrySummary::default();
        assert_eq!(s.counter("nope"), 0);
        assert!(s.histogram("nope").is_none());
    }
}
