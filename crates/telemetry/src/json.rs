//! A minimal hand-rolled JSON writer.
//!
//! The workspace builds offline (no serde); telemetry export needs only a
//! small, deterministic subset: objects, arrays, strings, u64/f64 numbers,
//! and bools, emitted in insertion order.

use std::fmt::Write as _;

/// An append-only JSON builder.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Stack of "does the current scope already have an element" flags.
    scopes: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(has) = self.scopes.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Opens the root or a nested object value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.scopes.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.scopes.pop();
        self.out.push('}');
        self
    }

    /// Opens an array value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.scopes.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.scopes.pop();
        self.out.push(']');
        self
    }

    /// Emits an object key (must be inside an object, before its value).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        Self::push_string(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not emit its own comma.
        if let Some(has) = self.scopes.last_mut() {
            *has = false;
        }
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        Self::push_string(&mut self.out, v);
        self
    }

    /// Emits an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Emits a float value (`null` for non-finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Emits a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Convenience: `key` + `u64`.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64(v)
    }

    /// Convenience: `key` + `string`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).string(v)
    }

    /// Convenience: a hex-formatted u64 digest as a string field (readable
    /// and lossless in JSON tooling that truncates big integers).
    pub fn field_hex(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).string(&format!("{v:#018x}"))
    }

    /// The finished document.
    pub fn finish(self) -> String {
        debug_assert!(self.scopes.is_empty(), "unbalanced JSON scopes");
        self.out
    }

    fn push_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "fig8")
            .field_u64("runs", 2)
            .key("hashes")
            .begin_array()
            .u64(1)
            .u64(2)
            .end_array()
            .key("nested")
            .begin_object()
            .field_hex("digest", 0xdead_beef)
            .key("ok")
            .bool(true)
            .end_object()
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"fig8","runs":2,"hashes":[1,2],"nested":{"digest":"0x00000000deadbeef","ok":true}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    /// Every C0 control character must leave the writer escaped — the
    /// short forms for the common three, `\u00XX` for the rest — so a
    /// hostile workload/program name can never break a one-line JSON
    /// stream (a raw newline would split the record in two).
    #[test]
    fn escapes_every_control_char() {
        let all: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let mut w = JsonWriter::new();
        w.string(&all);
        let out = w.finish();
        assert!(
            out.chars().all(|c| (c as u32) >= 0x20),
            "raw control byte survived: {out:?}"
        );
        assert!(out.contains("\\u0000") && out.contains("\\u001f"), "{out}");
        assert!(
            out.contains("\\n") && out.contains("\\r") && out.contains("\\t"),
            "{out}"
        );
        assert!(!out.contains("\\u000a"), "newline uses the short form: {out}");
    }

    /// Non-ASCII passes through as raw UTF-8 — valid JSON, no `\u`
    /// inflation — in both key and value position, mixed with characters
    /// that do need escaping.
    #[test]
    fn non_ascii_passes_through_unescaped() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("naïve → 名前 🚀", "λ\u{7f}\"quoted\"\u{1}")
            .end_object();
        assert_eq!(
            w.finish(),
            "{\"naïve → 名前 🚀\":\"λ\u{7f}\\\"quoted\\\"\\u0001\"}"
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut w = JsonWriter::new();
        w.begin_array().f64(1.5).f64(f64::NAN).end_array();
        assert_eq!(w.finish(), "[1.5,null]");
    }
}
