//! `gprs-serve` — the serving-layer driver.
//!
//! Modes:
//!
//! * `--listen ADDR [--workers N] [--quantum G]` — boot the socket server
//!   and accept line-delimited client sessions until one sends `shutdown`.
//! * `--batch [FILE]` — run one session over FILE (or stdin) and stdout,
//!   no socket; the same protocol, handy for scripts and CI.
//! * `--client ADDR [FILE]` — connect to a running server, send the lines
//!   of FILE (or stdin), print every response line.
//! * `--smoke N [--workers W]` — self-test: boot an ephemeral-port server,
//!   submit a mixed batch of N jobs (some with injected faults) over a
//!   real socket, and verify every streamed report's retired hash is
//!   bit-identical to the same spec run solo. Exits nonzero on mismatch.
//! * `--durable-run DIR <workload> <seed> [key=value...] [--crash-after N]`
//!   — run one job logging into DIR's durable WAL/checkpoint store; with
//!   `--crash-after N` the process kills itself (SIGKILL) after N quanta,
//!   leaving DIR exactly as a crash would.
//! * `--durable-resume DIR [--expect-golden]` — load DIR, resume the job
//!   (restart *is* recovery), print the final report line; with
//!   `--expect-golden` exit nonzero unless the retired hash is
//!   bit-identical to the same spec run solo in-memory.
//!
//! `--listen` and `--batch` also accept `--durable DIR`: every admitted
//! job gets its own durable directory under DIR and unfinished jobs are
//! resumed (and re-reported) when the server restarts over the same DIR.

use gprs_serve::pool::PoolConfig;
use gprs_serve::server::{serve_session, Server};
use gprs_serve::spec::{build_job_durable, build_solo, JobSpec, WORKLOADS};
use gprs_core::persist::{FileBackend, PersistBackend};
use gprs_runtime::report::RunReport;
use gprs_runtime::session::QuantumOutcome;
use gprs_telemetry::JsonWriter;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gprs-serve --listen ADDR [--workers N] [--quantum G] [--durable DIR]\n\
         \x20      gprs-serve --batch [FILE] [--workers N] [--quantum G] [--durable DIR]\n\
         \x20      gprs-serve --client ADDR [FILE]\n\
         \x20      gprs-serve --smoke N [--workers W] [--quantum G]\n\
         \x20      gprs-serve --durable-run DIR <workload> <seed> [key=value...] [--crash-after N]\n\
         \x20      gprs-serve --durable-resume DIR [--expect-golden]"
    );
    ExitCode::from(2)
}

struct Args {
    mode: String,
    positional: Vec<String>,
    workers: usize,
    quantum: u64,
    durable: Option<PathBuf>,
    crash_after: Option<u64>,
    expect_golden: bool,
}

fn parse_args() -> Option<Args> {
    let mut args = std::env::args().skip(1);
    let mode = args.next()?;
    let mut parsed = Args {
        mode,
        positional: Vec::new(),
        workers: 2,
        quantum: 64,
        durable: None,
        crash_after: None,
        expect_golden: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workers" => parsed.workers = args.next()?.parse().ok()?,
            "--quantum" => parsed.quantum = args.next()?.parse().ok()?,
            "--durable" => parsed.durable = Some(PathBuf::from(args.next()?)),
            "--crash-after" => parsed.crash_after = Some(args.next()?.parse().ok()?),
            "--expect-golden" => parsed.expect_golden = true,
            _ => parsed.positional.push(a),
        }
    }
    Some(parsed)
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let cfg = PoolConfig {
        workers: args.workers,
        quantum: args.quantum,
        durable_root: args.durable.clone(),
    };
    match args.mode.as_str() {
        "--listen" => {
            let Some(addr) = args.positional.first() else {
                return usage();
            };
            let server = match Server::bind(addr, cfg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("gprs-serve: bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("gprs-serve: listening on {}", server.local_addr());
            if let Err(e) = server.run() {
                eprintln!("gprs-serve: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "--batch" => {
            let mut pool = gprs_serve::pool::ServePool::start(cfg);
            // Jobs resurrected from the durable root report first, in
            // directory order, before the scripted session begins.
            for ticket in pool.take_resumed() {
                println!("{}", ticket.wait().to_json());
            }
            let handle = pool.handle();
            let result = match args.positional.first() {
                Some(path) => {
                    let file = match std::fs::File::open(path) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("gprs-serve: open {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    serve_session(&handle, BufReader::new(file), std::io::stdout().lock())
                }
                None => serve_session(
                    &handle,
                    std::io::stdin().lock(),
                    std::io::stdout().lock(),
                ),
            };
            pool.shutdown();
            match result {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("gprs-serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "--client" => {
            let Some(addr) = args.positional.first() else {
                return usage();
            };
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("gprs-serve: connect {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut script = String::new();
            let read = match args.positional.get(1) {
                Some(path) => std::fs::File::open(path)
                    .and_then(|mut f| f.read_to_string(&mut script).map(|_| ())),
                None => std::io::stdin().read_to_string(&mut script).map(|_| ()),
            };
            if let Err(e) = read {
                eprintln!("gprs-serve: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = run_client(stream, &script, &mut std::io::stdout().lock()) {
                eprintln!("gprs-serve: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "--smoke" => {
            let jobs: usize = args
                .positional
                .first()
                .and_then(|n| n.parse().ok())
                .unwrap_or(40);
            match smoke(jobs, cfg) {
                Ok(()) => {
                    println!("serve-smoke: {jobs} jobs matched their solo goldens");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serve-smoke FAILED: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "--durable-run" => {
            let [dir, spec_args @ ..] = args.positional.as_slice() else {
                return usage();
            };
            let words: Vec<&str> = spec_args.iter().map(String::as_str).collect();
            let spec = match JobSpec::parse_args(&words) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("gprs-serve: {e}");
                    return usage();
                }
            };
            match durable_run(dir, &spec, args.quantum, args.crash_after) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("gprs-serve: durable-run: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "--durable-resume" => {
            let Some(dir) = args.positional.first() else {
                return usage();
            };
            match durable_resume(dir, args.quantum, args.expect_golden) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("gprs-serve: durable-resume: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// One final report line for the durable modes: the determinism hashes
/// plus the durability counters the smoke job asserts on.
fn durable_report_line(report: &RunReport) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("ok")
        .bool(true)
        .field_str("status", "completed")
        .field_hex("retired_hash", report.telemetry.retired_hash)
        .field_u64("retired", report.telemetry.retired_count)
        .field_u64("wal_segments_sealed", report.telemetry.counter("wal_segments_sealed"))
        .field_u64("fsyncs", report.telemetry.counter("fsyncs"))
        .field_u64(
            "recovered_prefix_len",
            report.telemetry.counter("recovered_prefix_len"),
        )
        .end_object();
    w.finish()
}

/// Kills this process the way a crash would: no destructors, no flushes,
/// no atexit — the durable directory is left exactly as SIGKILL leaves it.
fn die_midflight() -> ! {
    let _ = std::process::Command::new("kill")
        .args(["-9", &std::process::id().to_string()])
        .status();
    // SIGKILL is not deliverable on this platform (or `kill` is missing):
    // abort is the closest no-cleanup exit.
    std::process::abort();
}

/// `--durable-run`: one job logged into `dir`, optionally self-killed
/// after `crash_after` quanta.
fn durable_run(
    dir: &str,
    spec: &JobSpec,
    quantum: u64,
    crash_after: Option<u64>,
) -> Result<(), String> {
    let backend = Arc::new(FileBackend::open(dir).map_err(|e| e.to_string())?);
    let gprs = build_job_durable(spec, 0, 0, backend, None)?;
    let mut session = gprs.into_session();
    let mut quanta = 0u64;
    loop {
        match session.run_quantum(quantum.max(1)) {
            QuantumOutcome::Finished => break,
            QuantumOutcome::Yielded => {
                quanta += 1;
                if crash_after.is_some_and(|n| quanta >= n) {
                    die_midflight();
                }
            }
        }
    }
    if crash_after.is_some() {
        return Err(format!(
            "job finished in {quanta} quanta before the crash point — pick a smaller --crash-after"
        ));
    }
    let report = session.finish().map_err(|e| e.to_string())?;
    println!("{}", durable_report_line(&report));
    Ok(())
}

/// `--durable-resume`: load `dir`, replay-verify against the durable
/// prefix, run to completion; with `expect_golden`, fail unless the
/// retired hash matches the same spec run solo in-memory.
fn durable_resume(dir: &str, quantum: u64, expect_golden: bool) -> Result<(), String> {
    let backend = Arc::new(FileBackend::open(dir).map_err(|e| e.to_string())?);
    let image = backend.load().map_err(|e| e.to_string())?;
    let text = image
        .spec
        .clone()
        .ok_or_else(|| "no spec record in the durable log".to_string())?;
    let spec = JobSpec::parse_canonical(&text)?;
    eprintln!(
        "gprs-serve: resuming {:?}: durable prefix {} retirements{}",
        text,
        image.retired_len(),
        if image.truncated { " (torn tail truncated)" } else { "" },
    );
    let gprs = build_job_durable(&spec, 0, 0, backend, Some(&image))?;
    let mut session = gprs.into_session();
    while session.run_quantum(quantum.max(1)) == QuantumOutcome::Yielded {}
    let report = session.finish().map_err(|e| e.to_string())?;
    println!("{}", durable_report_line(&report));
    if report.telemetry.counter("recovered_prefix_len") < image.retired_len() {
        return Err(format!(
            "replay verified only {} of the {} durable retirements",
            report.telemetry.counter("recovered_prefix_len"),
            image.retired_len()
        ));
    }
    if expect_golden {
        let golden = build_solo(&spec)?
            .run()
            .map_err(|e| format!("golden run: {e}"))?;
        if golden.telemetry.retired_hash != report.telemetry.retired_hash {
            return Err(format!(
                "retired hash diverged from the fault-free twin: resumed {:#018x}, solo {:#018x}",
                report.telemetry.retired_hash, golden.telemetry.retired_hash
            ));
        }
        eprintln!("gprs-serve: resumed run matches its solo golden");
    }
    Ok(())
}

/// Sends `script` over `stream` and copies every response line to `out`.
/// The server responds in lock-step per request (plus streamed report
/// lines before a `wait` summary), and half-closing our write side after
/// the script lets the read side drain to EOF.
fn run_client(
    stream: TcpStream,
    script: &str,
    out: &mut impl Write,
) -> std::io::Result<()> {
    let mut tx = stream.try_clone()?;
    let reader = BufReader::new(stream);
    tx.write_all(script.as_bytes())?;
    tx.flush()?;
    tx.shutdown(std::net::Shutdown::Write)?;
    for line in reader.lines() {
        writeln!(out, "{}", line?)?;
    }
    Ok(())
}

/// Extracts a `"key":"value"` or `"key":value` field from a flat JSON
/// object line (the driver emits no nesting in report lines).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// The CI smoke leg: a real socket round-trip for a mixed batch, each
/// streamed report compared bit-for-bit against its solo-run golden.
fn smoke(jobs: usize, cfg: PoolConfig) -> Result<(), String> {
    let server =
        Server::bind("127.0.0.1:0", cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // A deterministic mixed batch: every workload, varied seeds, every
    // third job with injected faults, a couple of quanta deadlines.
    let mut script = String::new();
    let mut specs = Vec::new();
    for i in 0..jobs {
        let workload = WORKLOADS[i % WORKLOADS.len()];
        let seed = (i as u64) * 7 + 1;
        let fault = if i % 3 == 0 { seed ^ 0x5 } else { 0 };
        script.push_str(&format!("submit {workload} {seed}"));
        if fault != 0 {
            script.push_str(&format!(" fault={fault}"));
        }
        script.push('\n');
        specs.push(JobSpec::new(workload, seed).faults(fault));
    }
    script.push_str("wait\nstats\nshutdown\n");

    let stream =
        TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut out = Vec::new();
    run_client(stream, &script, &mut out).map_err(|e| format!("client: {e}"))?;
    server_thread
        .join()
        .map_err(|_| "server panicked".to_string())?
        .map_err(|e| format!("server: {e}"))?;

    let text = String::from_utf8_lossy(&out);
    let mut goldens: BTreeMap<(String, u64, u64), String> = BTreeMap::new();
    let mut matched = 0usize;
    for line in text.lines() {
        let Some(status) = json_field(line, "status") else {
            continue; // ack / stats / shutdown lines
        };
        if status != "completed" {
            return Err(format!("unexpected status in {line}"));
        }
        let workload = json_field(line, "workload").ok_or("missing workload")?;
        let seed: u64 = json_field(line, "seed")
            .and_then(|s| s.parse().ok())
            .ok_or("missing seed")?;
        let fault: u64 = json_field(line, "fault_seed")
            .and_then(|s| s.parse().ok())
            .ok_or("missing fault_seed")?;
        let served = json_field(line, "retired_hash")
            .ok_or("missing retired_hash")?
            .to_string();
        let key = (workload.to_string(), seed, fault);
        let golden = match goldens.get(&key) {
            Some(h) => h.clone(),
            None => {
                let spec = JobSpec::new(workload, seed).faults(fault);
                let report = build_solo(&spec)
                    .map_err(|e| format!("golden build: {e}"))?
                    .run()
                    .map_err(|e| format!("golden run: {e}"))?;
                let hash = format!("{:#018x}", report.telemetry.retired_hash);
                goldens.insert(key, hash.clone());
                hash
            }
        };
        if served != golden {
            return Err(format!(
                "retired hash diverged for {workload} seed={seed} fault={fault}: \
                 served {served}, solo {golden}"
            ));
        }
        matched += 1;
    }
    if matched != jobs {
        return Err(format!("expected {jobs} reports, saw {matched}:\n{text}"));
    }
    Ok(())
}
