//! Job specifications and the serve workload registry.
//!
//! A [`JobSpec`] is everything a tenant submits: a workload name, a seed
//! that deterministically shapes the program (thread count, rounds, input
//! corpus), an optional seeded fault-injection plan, and optional
//! deadlines. The same spec built solo ([`build_solo`]) or through the
//! serving pool produces bit-identical retired hashes — the solo build is
//! every served job's golden twin.

use gprs_core::chaos::{ChaosEvent, ChaosPlan, VictimSelector};
use gprs_core::exception::ExceptionKind;
use gprs_core::history::Checkpoint;
use gprs_core::ids::GroupId;
use gprs_core::persist::{DurableImage, PersistBackend};
use gprs_runtime::ctx::StepCtx;
use gprs_runtime::handles::{AtomicHandle, MutexHandle};
use gprs_runtime::program::{Step, ThreadProgram};
use gprs_runtime::{Gprs, GprsBuilder, ShardedGprs};
use gprs_workloads::kernels::compress::generate_corpus;
use gprs_workloads::programs::{
    beacon_model, build_beacon, build_pbzip_pipeline, HistogramWorker,
};
use std::sync::Arc;

/// Workload names the registry accepts, smallest first. `beacon` is the
/// one whose trace-level model proves one order domain per worker, so it
/// is the only workload a [`JobSpec::sharded`] job may name.
pub const WORKLOADS: &[&str] = &["fetchadd", "mutex", "histogram", "pbzip", "beacon"];

/// One job submission: a workload shaped by a seed, plus serving policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Registry workload name (see [`WORKLOADS`]).
    pub workload: String,
    /// Deterministically shapes the program: thread count, rounds, corpus.
    pub seed: u64,
    /// Seeded discretionary-exception plan injected into the run (0 = no
    /// injection). The golden twin attaches the same plan, so injected
    /// jobs still compare bit-identical solo vs. served.
    pub fault_seed: u64,
    /// Cancel the job after this many scheduling quanta (None = no
    /// deadline). Quanta-denominated deadlines are deterministic — the
    /// same spec cancels at the same precise-restart point on every run.
    pub deadline_quanta: Option<u64>,
    /// Cancel the job if it is still running this many milliseconds after
    /// admission (checked at quantum boundaries; None = no timeout). Wall
    /// time is inherently nondeterministic — prefer `deadline_quanta`
    /// where reproducibility matters.
    pub timeout_ms: Option<u64>,
    /// Run the job through per-domain order gates (`build_sharded`)
    /// instead of a cooperative session. Only workloads with a proven
    /// shard plan accept it (today: `beacon`), and the pool drives a
    /// sharded job to completion on its claiming worker in one blocking
    /// pass — sessions are never sharded. The retired hash still matches
    /// the unsharded solo twin bit-for-bit (the differential contract).
    pub shard: bool,
}

impl JobSpec {
    /// A spec with no fault injection and no deadline.
    pub fn new(workload: impl Into<String>, seed: u64) -> Self {
        JobSpec {
            workload: workload.into(),
            seed,
            fault_seed: 0,
            deadline_quanta: None,
            timeout_ms: None,
            shard: false,
        }
    }

    /// Requests sharded execution (see [`shard`](Self::shard)).
    pub fn sharded(mut self) -> Self {
        self.shard = true;
        self
    }

    /// Attaches a seeded fault-injection plan (0 disables).
    pub fn faults(mut self, fault_seed: u64) -> Self {
        self.fault_seed = fault_seed;
        self
    }

    /// Sets the quanta-denominated deadline.
    pub fn deadline(mut self, quanta: u64) -> Self {
        self.deadline_quanta = Some(quanta);
        self
    }

    /// The spec's canonical wire form — the same argument list `submit`
    /// accepts, and the text a durable job directory records so a
    /// restarted pool can rebuild the job from its log alone.
    pub fn canonical_line(&self) -> String {
        let mut line = format!("{} {}", self.workload, self.seed);
        if self.fault_seed != 0 {
            line.push_str(&format!(" fault={}", self.fault_seed));
        }
        if let Some(d) = self.deadline_quanta {
            line.push_str(&format!(" deadline={d}"));
        }
        if let Some(ms) = self.timeout_ms {
            line.push_str(&format!(" timeout={ms}"));
        }
        if self.shard {
            line.push_str(" shard=1");
        }
        line
    }

    /// Parses a `submit`-style argument list: `<workload> <seed>
    /// [fault=N] [deadline=N] [timeout=MS] [shard=1]`. The inverse of
    /// [`canonical_line`](Self::canonical_line).
    ///
    /// # Errors
    /// A usage message for a missing workload/seed, a bad number, or an
    /// unknown `key=value` option.
    pub fn parse_args(args: &[&str]) -> Result<JobSpec, String> {
        let [workload, seed, rest @ ..] = args else {
            return Err(
                "usage: submit <workload> <seed> [fault=N] [deadline=N] [timeout=MS] [shard=1]"
                    .into(),
            );
        };
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
        let mut spec = JobSpec::new(*workload, seed);
        for opt in rest {
            let (key, value) = opt
                .split_once('=')
                .ok_or_else(|| format!("bad option {opt:?} (want key=value)"))?;
            let n: u64 = value
                .parse()
                .map_err(|_| format!("bad value in {opt:?}"))?;
            match key {
                "fault" => spec.fault_seed = n,
                "deadline" => spec.deadline_quanta = Some(n),
                "timeout" => spec.timeout_ms = Some(n),
                "shard" => spec.shard = n != 0,
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        Ok(spec)
    }

    /// Parses one canonical spec line (see
    /// [`canonical_line`](Self::canonical_line)).
    ///
    /// # Errors
    /// Same conditions as [`parse_args`](Self::parse_args).
    pub fn parse_canonical(line: &str) -> Result<JobSpec, String> {
        let words: Vec<&str> = line.split_whitespace().collect();
        Self::parse_args(&words)
    }
}

/// splitmix64: the registry's tiny deterministic shaping PRNG.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the deterministic fault plan for `fault_seed` (empty for 0):
/// one-to-two grant-keyed global exceptions plus, for odd seeds, an
/// exception raised mid-recovery (the overlapping DEX→REX path).
pub fn fault_plan(fault_seed: u64) -> ChaosPlan {
    let mut plan = ChaosPlan::new();
    if fault_seed == 0 {
        return plan;
    }
    const KINDS: &[ExceptionKind] = &[
        ExceptionKind::SoftFault,
        ExceptionKind::VoltageEmergency,
        ExceptionKind::ThermalEmergency,
        ExceptionKind::ApproximationError,
    ];
    let r0 = mix(fault_seed);
    let r1 = mix(r0);
    // First event: early (every registry program issues well over 8
    // grants) and Oldest-targeted (the just-granted entry is always in the
    // ROL), so a nonzero fault seed guarantees at least one delivered
    // exception whatever the workload.
    let first = mix(r1);
    plan.push(
        ChaosEvent::at_grant(2 + first % 6)
            .kind(KINDS[(first >> 8) as usize % KINDS.len()])
            .victim(VictimSelector::Oldest),
    );
    // All grant keys stay under 10 — below every registry program's
    // minimum grant count — so each grant event is guaranteed to fire and
    // the chaos oracle's lower exception bound holds.
    for i in 0..r0 % 2 {
        let r = mix(r1.wrapping_add(i + 1));
        let at = 4 + r % 6;
        let kind = KINDS[(r >> 8) as usize % KINDS.len()];
        let victim = match (r >> 16) % 3 {
            0 => VictimSelector::Oldest,
            1 => VictimSelector::Newest,
            _ => VictimSelector::Holder,
        };
        plan.push(ChaosEvent::at_grant(at).kind(kind).victim(victim));
    }
    if fault_seed % 2 == 1 {
        plan.push(
            ChaosEvent::mid_recovery(1)
                .kind(ExceptionKind::SoftFault)
                .victim(VictimSelector::Oldest),
        );
    }
    plan
}

/// Disjoint fetch-add chain: pure grant/checkpoint/retire traffic, the
/// smallest job the registry serves.
struct FetchAdd {
    atomic: AtomicHandle,
    rounds: u32,
    done: u32,
}

impl Checkpoint for FetchAdd {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}

impl ThreadProgram for FetchAdd {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.done == self.rounds {
            return Step::exit(u64::from(self.done));
        }
        self.done += 1;
        self.atomic.fetch_add(1)
    }
}

/// Mutex-counter worker: every round is a critical section on one shared
/// lock (contention + lock hand-off traffic).
struct MutexWorker {
    mutex: MutexHandle<u64>,
    rounds: u32,
    done: u32,
}

impl Checkpoint for MutexWorker {
    type Snapshot = u32;
    fn checkpoint(&self) -> u32 {
        self.done
    }
    fn restore(&mut self, s: &u32) {
        self.done = *s;
    }
}

impl ThreadProgram for MutexWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.done > 0 {
            ctx.with_lock(&self.mutex, |n| *n = n.wrapping_add(1));
        }
        if self.done == self.rounds {
            return Step::exit(u64::from(self.done));
        }
        self.done += 1;
        self.mutex.lock()
    }
}

/// Registers the spec's program on a builder. The seed shapes the program
/// deterministically; the shape is identical however the job is executed.
/// Public so `gprs-replay` can rebuild a served job's program onto a
/// replay-armed builder from the spec line stamped in a recording header.
pub fn register(spec: &JobSpec, b: &mut GprsBuilder) -> Result<(), String> {
    let r = mix(spec.seed ^ 0x5E44E);
    match spec.workload.as_str() {
        "fetchadd" => {
            let threads = 2 + (r % 3) as u32;
            let rounds = 6 + ((r >> 8) % 8) as u32;
            for _ in 0..threads {
                let a = b.atomic(0);
                b.thread(
                    FetchAdd {
                        atomic: a,
                        rounds,
                        done: 0,
                    },
                    GroupId::new(0),
                    1,
                );
            }
        }
        "mutex" => {
            let threads = 2 + (r % 3) as u32;
            let rounds = 4 + ((r >> 8) % 6) as u32;
            let m = b.mutex(0u64);
            for _ in 0..threads {
                b.thread(
                    MutexWorker {
                        mutex: m,
                        rounds,
                        done: 0,
                    },
                    GroupId::new(0),
                    1,
                );
            }
        }
        "histogram" => {
            let shards = 3 + (r % 3) as usize;
            let len = 6_000 + (r >> 8) % 6_000;
            let corpus = generate_corpus(len as usize, spec.seed);
            let acc = b.mutex(vec![0u64; 256]);
            let chunk = corpus.len().div_ceil(shards);
            for piece in corpus.chunks(chunk) {
                b.thread(HistogramWorker::new(piece.to_vec(), acc), GroupId::new(0), 1);
            }
        }
        "pbzip" => {
            let len = 8_000 + (r % 8_000);
            let compressors = 2 + (r >> 8) % 2;
            let _ = build_pbzip_pipeline(
                b,
                generate_corpus(len as usize, spec.seed),
                2048,
                compressors,
            );
        }
        "beacon" => {
            let (workers, rounds) = beacon_shape(spec.seed);
            let _ = build_beacon(b, workers, rounds);
        }
        other => return Err(format!("unknown workload {other:?}")),
    }
    Ok(())
}

/// The seed-shaped beacon geometry, shared by registration and the
/// trace-level model a sharded build consumes: independent beacon workers
/// (one provable order domain each) spinning `rounds` rounds.
fn beacon_shape(seed: u64) -> (usize, u32) {
    let r = mix(seed ^ 0x5E44E);
    (2 + (r % 3) as usize, 8 + ((r >> 8) % 16) as u32)
}

/// Cheap admission-time validation: is the workload name registered, and
/// does a sharded spec name a workload with a proven shard plan? (Seeds
/// cannot be invalid — every `u64` shapes a valid program.)
pub fn validate(spec: &JobSpec) -> Result<(), String> {
    if !WORKLOADS.contains(&spec.workload.as_str()) {
        return Err(format!("unknown workload {:?}", spec.workload));
    }
    if spec.shard && spec.workload != "beacon" {
        return Err(format!(
            "workload {:?} has no shard plan: only \"beacon\" jobs run sharded",
            spec.workload
        ));
    }
    Ok(())
}

/// Builds the spec into a runtime stamped with the given job identity.
/// The serving pool converts the result into a cooperative session; tests
/// and goldens call [`Gprs::run`] on it directly.
pub fn build_job(spec: &JobSpec, job_id: u64, submit_seq: u64) -> Result<Gprs, String> {
    let mut b = GprsBuilder::new().job(job_id, submit_seq);
    let plan = fault_plan(spec.fault_seed);
    if !plan.is_empty() {
        b = b.chaos(&plan);
    }
    register(spec, &mut b)?;
    Ok(b.build())
}

/// Builds and runs the spec solo — the golden twin every served job's
/// retired hash is compared against. Deliberately *unsharded* even for
/// sharded specs: per-domain retirement must be invisible in the retired
/// hash, so the unsharded build is the stronger twin.
pub fn build_solo(spec: &JobSpec) -> Result<Gprs, String> {
    build_job(spec, 0, 0)
}

/// Builds a sharded spec into per-domain engines stamped with the job
/// identity. There is no cooperative session over sharded domains, so the
/// pool drives the result to completion in one blocking pass on the
/// claiming worker.
///
/// # Errors
/// Any spec [`validate`] rejects, including a non-`beacon` workload.
pub fn build_job_sharded(
    spec: &JobSpec,
    job_id: u64,
    submit_seq: u64,
) -> Result<ShardedGprs, String> {
    validate(spec)?;
    let mut b = GprsBuilder::new().job(job_id, submit_seq);
    let plan = fault_plan(spec.fault_seed);
    if !plan.is_empty() {
        b = b.chaos(&plan);
    }
    let (workers, rounds) = beacon_shape(spec.seed);
    let _ = build_beacon(&mut b, workers, rounds);
    Ok(b.model(beacon_model(workers, rounds)).build_sharded())
}

/// Builds the spec onto a durable persistence backend, optionally
/// resuming against a previously loaded [`DurableImage`]: the replay is
/// verified retirement-by-retirement against the image's durable prefix,
/// so a restart *is* a recovery.
///
/// # Errors
/// Unknown workload (same as [`build_job`]).
pub fn build_job_durable(
    spec: &JobSpec,
    job_id: u64,
    submit_seq: u64,
    backend: Arc<dyn PersistBackend>,
    resume: Option<&DurableImage>,
) -> Result<Gprs, String> {
    build_job_durable_recorded(spec, job_id, submit_seq, backend, resume, None)
}

/// [`build_job_durable`] plus an optional schedule recording written next
/// to the job's durable state. The serving pool records every *fresh*
/// durable job (a resumed job re-verifies an old schedule rather than
/// producing a new one), so a failed job's directory holds both its WAL
/// image and the exact grant order that produced the failure — the input
/// `gprs-replay run`/`state` needs for a post-mortem.
pub fn build_job_durable_recorded(
    spec: &JobSpec,
    job_id: u64,
    submit_seq: u64,
    backend: Arc<dyn PersistBackend>,
    resume: Option<&DurableImage>,
    record: Option<&std::path::Path>,
) -> Result<Gprs, String> {
    let mut b = GprsBuilder::new()
        .job(job_id, submit_seq)
        .durable(backend)
        .durable_spec(spec.canonical_line());
    if let Some(image) = resume {
        b = b.resume(image);
    }
    if let Some(path) = record.filter(|_| resume.is_none()) {
        b = b
            .record(path)
            .record_meta(&spec.workload, spec.seed)
            .record_spec(spec.canonical_line());
    }
    let plan = fault_plan(spec.fault_seed);
    if !plan.is_empty() {
        b = b.chaos(&plan);
    }
    register(spec, &mut b)?;
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_shape_programs_deterministically() {
        for name in WORKLOADS {
            let a = build_solo(&JobSpec::new(*name, 42)).unwrap().run().unwrap();
            let b = build_solo(&JobSpec::new(*name, 42)).unwrap().run().unwrap();
            assert_eq!(
                a.telemetry.retired_hash, b.telemetry.retired_hash,
                "{name} must be reproducible"
            );
            assert!(a.stats.retired > 0, "{name} must do work");
        }
    }

    #[test]
    fn fault_plans_inject() {
        let spec = JobSpec::new("mutex", 7).faults(3);
        let report = build_solo(&spec).unwrap().run().unwrap();
        assert!(report.stats.exceptions > 0, "odd fault seed injects");
        assert_eq!(
            report.telemetry.counter("wal_appends"),
            report.telemetry.counter("wal_undos") + report.telemetry.counter("wal_prunes"),
        );
    }

    #[test]
    fn unknown_workload_is_an_error() {
        assert!(build_solo(&JobSpec::new("nope", 1)).is_err());
    }

    #[test]
    fn sharded_build_matches_the_unsharded_solo_twin() {
        for seed in [1u64, 9, 42] {
            let spec = JobSpec::new("beacon", seed).sharded();
            let solo = build_solo(&spec).unwrap().run().unwrap();
            let sharded = build_job_sharded(&spec, 7, 7).unwrap().run().unwrap();
            assert_eq!(
                sharded.telemetry.retired_hash, solo.telemetry.retired_hash,
                "seed {seed}: per-domain retirement must be invisible"
            );
            assert!(!sharded.shards.is_empty(), "sharded runs carry the domain ledger");
        }
    }

    #[test]
    fn shard_flag_requires_a_planned_workload() {
        assert!(validate(&JobSpec::new("beacon", 1).sharded()).is_ok());
        let err = validate(&JobSpec::new("mutex", 1).sharded()).unwrap_err();
        assert!(err.contains("no shard plan"), "{err}");
    }

    #[test]
    fn canonical_lines_round_trip() {
        let specs = [
            JobSpec::new("mutex", 9),
            JobSpec::new("pbzip", 3).faults(11),
            JobSpec::new("beacon", 6).sharded(),
            JobSpec::new("fetchadd", 1).faults(2).deadline(8),
            JobSpec {
                timeout_ms: Some(500),
                ..JobSpec::new("histogram", 42)
            },
        ];
        for spec in specs {
            let line = spec.canonical_line();
            assert_eq!(JobSpec::parse_canonical(&line).unwrap(), spec, "{line}");
        }
        assert!(JobSpec::parse_canonical("mutex").is_err());
        assert!(JobSpec::parse_canonical("mutex x").is_err());
        assert!(JobSpec::parse_canonical("mutex 1 bogus").is_err());
    }

    #[test]
    fn durable_build_matches_plain_build() {
        use gprs_core::persist::MemoryBackend;
        let spec = JobSpec::new("mutex", 5).faults(3);
        let plain = build_solo(&spec).unwrap().run().unwrap();
        let backend = Arc::new(MemoryBackend::new());
        let durable = build_job_durable(&spec, 0, 0, backend.clone(), None)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(plain.telemetry.retired_hash, durable.telemetry.retired_hash);
        let image = backend.load().unwrap();
        assert_eq!(image.spec.as_deref(), Some(spec.canonical_line().as_str()));
        assert_eq!(image.retired_len(), plain.telemetry.retired_count);
        assert!(image.ledger_balanced(), "appends == undos + prunes");
    }
}
