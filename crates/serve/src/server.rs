//! The line-delimited socket/CLI driver.
//!
//! One request per line, one JSON object per response line — trivially
//! scriptable over `nc`, a file, or a pipe. The same [`serve_session`]
//! loop backs both transports: the `gprs-serve` binary runs it over a TCP
//! connection (`--listen`) or over stdin/stdout (`--batch`).
//!
//! # Protocol
//!
//! | request | response |
//! |---|---|
//! | `submit <workload> <seed> [fault=N] [deadline=N] [timeout=MS] [shard=1]` | `{"ok":true,"job_id":N,"submit_seq":N}` |
//! | `wait` | one [`JobOutcome`] JSON line per unreported submission, in submission order, then `{"ok":true,"drained":K}` |
//! | `cancel <job_id>` | `{"ok":true}` (flag set) or an error |
//! | `stats` | pool counters as one JSON object |
//! | `shutdown` | `{"ok":true,"shutdown":true}`; the server drains and exits after this connection closes |
//! | `quit` (or EOF) | connection ends; unwaited jobs keep running |
//!
//! Reports stream in submission order: deterministic for scripted
//! clients, and head-of-line blocking is bounded because long jobs yield
//! every quantum.

use crate::pool::{JobTicket, PoolConfig, ServeHandle, ServePool};
use crate::spec::JobSpec;
use gprs_telemetry::JsonWriter;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn ok_line(fields: &[(&str, u64)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("ok").bool(true);
    for (k, v) in fields {
        w.field_u64(k, *v);
    }
    w.end_object();
    w.finish()
}

fn err_line(msg: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .key("ok")
        .bool(false)
        .field_str("error", msg)
        .end_object();
    w.finish()
}

/// Parses a `submit` argument list: `<workload> <seed> [key=value...]`.
fn parse_submit(args: &[&str]) -> Result<JobSpec, String> {
    JobSpec::parse_args(args)
}

/// Runs one client session: reads requests from `input` line by line,
/// writes one JSON response line per request to `output`. Returns `true`
/// if the client requested a server-wide shutdown.
///
/// Malformed input never kills the connection: a line that is not valid
/// UTF-8 is decoded lossily and answered (like any other unparseable
/// request) with an `{"ok":false,...}` protocol-error line, and `cancel`
/// with a non-numeric, stale, or already-reported job id gets a specific
/// error line instead of silently misbehaving.
///
/// # Errors
/// Propagates transport I/O errors; protocol errors are reported to the
/// client as `{"ok":false,...}` lines instead.
pub fn serve_session(
    handle: &ServeHandle,
    mut input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<bool> {
    let mut pending: Vec<JobTicket> = Vec::new();
    // Job ids already reported (or cancelled-and-reported) on this
    // connection — a later `cancel` of one is "stale", not "unknown".
    let mut reaped: Vec<u64> = Vec::new();
    let mut shutdown = false;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if input.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        // Lossy decode: a malformed (non-UTF-8) request line degrades to a
        // parse error answered in-protocol, never a dropped connection.
        let line = String::from_utf8_lossy(&buf);
        let words: Vec<&str> = line.split_whitespace().collect();
        let response = match words.as_slice() {
            [] => continue,
            ["submit", args @ ..] => match parse_submit(args) {
                Ok(spec) => match handle.submit(spec) {
                    Ok(ticket) => {
                        let ack = ok_line(&[
                            ("job_id", ticket.id()),
                            ("submit_seq", ticket.seq()),
                        ]);
                        pending.push(ticket);
                        ack
                    }
                    Err(e) => err_line(&e.to_string()),
                },
                Err(e) => err_line(&e),
            },
            ["wait"] => {
                let drained = pending.len() as u64;
                for ticket in pending.drain(..) {
                    reaped.push(ticket.id());
                    let outcome = ticket.wait();
                    writeln!(output, "{}", outcome.to_json())?;
                }
                ok_line(&[("drained", drained)])
            }
            ["cancel", id] => match id.parse::<u64>() {
                Ok(id) => match pending.iter().find(|t| t.id() == id) {
                    Some(ticket) => {
                        ticket.cancel();
                        ok_line(&[("job_id", id)])
                    }
                    None if reaped.contains(&id) => {
                        err_line(&format!("job {id} was already reported on this connection"))
                    }
                    None => err_line(&format!("job {id} is not pending on this connection")),
                },
                Err(_) => err_line(&format!("bad job id {id:?}")),
            },
            ["cancel", ..] => err_line("usage: cancel <job_id>"),
            ["stats"] => handle.stats().to_json(),
            ["shutdown"] => {
                shutdown = true;
                let mut w = JsonWriter::new();
                w.begin_object()
                    .key("ok")
                    .bool(true)
                    .key("shutdown")
                    .bool(true)
                    .end_object();
                w.finish()
            }
            ["quit"] => break,
            [cmd, ..] => err_line(&format!("unknown command {cmd:?}")),
        };
        writeln!(output, "{response}")?;
        output.flush()?;
        if shutdown {
            break;
        }
    }
    // Connection over: any reports the client never asked for are dropped,
    // but the jobs themselves drain normally inside the pool.
    Ok(shutdown)
}

/// A TCP front-end over a [`ServePool`].
pub struct Server {
    listener: TcpListener,
    pool: ServePool,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over a
    /// freshly started pool.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: PoolConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            pool: ServePool::start(cfg),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Panics
    /// Panics if the socket's local address cannot be read.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// A submission handle onto the underlying pool (for in-process
    /// clients living next to the socket front-end).
    pub fn handle(&self) -> ServeHandle {
        self.pool.handle()
    }

    /// Accepts connections until a client sends `shutdown`, then drains
    /// the pool gracefully. Each connection is served on its own thread.
    ///
    /// # Errors
    /// Propagates accept-loop I/O errors.
    ///
    /// # Panics
    /// Panics if a connection-handler thread panicked.
    pub fn run(self) -> std::io::Result<()> {
        let mut sessions = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = stream?;
            let handle = self.pool.handle();
            let stop = self.stop.clone();
            let addr = self.local_addr();
            sessions.push(std::thread::spawn(move || {
                let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                match serve_session(&handle, reader, stream) {
                    Ok(true) => {
                        stop.store(true, Ordering::Release);
                        // Self-connect to unblock the accept loop.
                        let _ = TcpStream::connect(addr);
                    }
                    Ok(false) => {}
                    Err(_) => {} // client went away mid-session
                }
            }));
        }
        for s in sessions {
            s.join().expect("session threads do not panic");
        }
        self.pool.shutdown();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_submit_lines() {
        let spec = parse_submit(&["mutex", "9", "fault=3", "deadline=8"]).unwrap();
        assert_eq!(spec.workload, "mutex");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.fault_seed, 3);
        assert_eq!(spec.deadline_quanta, Some(8));
        assert_eq!(spec.timeout_ms, None);
        assert!(parse_submit(&["mutex"]).is_err());
        assert!(parse_submit(&["mutex", "x"]).is_err());
        assert!(parse_submit(&["mutex", "1", "bogus"]).is_err());
    }

    #[test]
    fn batch_session_round_trips() {
        let pool = ServePool::start(PoolConfig {
            workers: 2,
            quantum: 16,
            ..Default::default()
        });
        let handle = pool.handle();
        let script = "submit fetchadd 3\nsubmit mutex 5 fault=2\nwait\nstats\nquit\n";
        let mut out = Vec::new();
        let shutdown = serve_session(&handle, script.as_bytes(), &mut out).unwrap();
        assert!(!shutdown);
        let text = String::from_utf8_lossy(&out);
        let lines: Vec<&str> = text.lines().collect();
        // 2 acks + 2 reports + wait summary + stats.
        assert_eq!(lines.len(), 6, "{text}");
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[2].contains("\"status\":\"completed\""));
        assert!(lines[3].contains("\"retired_hash\""));
        assert!(lines[5].contains("\"submitted\":2"));
        pool.shutdown();
    }

    /// Satellite robustness sweep: malformed lines (including invalid
    /// UTF-8) and bad/stale/reaped cancel ids each get a protocol-error
    /// line, and the connection keeps serving afterwards.
    #[test]
    fn malformed_requests_get_error_lines_not_a_dropped_connection() {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            quantum: 16,
            ..Default::default()
        });
        let handle = pool.handle();
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(b"submit fetchadd 3\n"); // ack: job 1
        script.extend_from_slice(b"bogus command\n");
        script.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']); // invalid UTF-8
        script.extend_from_slice(b"submit mutex notanumber\n");
        script.extend_from_slice(b"submit mutex 5 tilt=3\n");
        script.extend_from_slice(b"cancel beans\n"); // non-numeric id
        script.extend_from_slice(b"cancel\n"); // missing id
        script.extend_from_slice(b"cancel 99\n"); // never submitted here
        script.extend_from_slice(b"wait\n"); // reaps job 1
        script.extend_from_slice(b"cancel 1\n"); // reaped id
        script.extend_from_slice(b"submit fetchadd 4\nwait\nquit\n"); // still serving
        let mut out = Vec::new();
        let shutdown = serve_session(&handle, script.as_slice(), &mut out).unwrap();
        assert!(!shutdown);
        let text = String::from_utf8_lossy(&out);
        let lines: Vec<&str> = text.lines().collect();
        // ack, 7 errors, report + wait summary, stale-cancel error,
        // ack + report + wait summary.
        assert_eq!(lines.len(), 14, "{text}");
        assert!(lines[0].contains("\"ok\":true"), "{text}");
        for (i, expect) in [
            (1, "unknown command"),
            (2, "unknown command"),
            (3, "bad seed"),
            (4, "unknown option"),
            (5, "bad job id"),
            (6, "usage: cancel"),
            (7, "not pending on this connection"),
        ] {
            assert!(lines[i].contains("\"ok\":false"), "line {i}: {text}");
            assert!(lines[i].contains(expect), "line {i} wanted {expect:?}: {text}");
        }
        assert!(lines[8].contains("\"status\":\"completed\""), "{text}");
        assert!(lines[10].contains("already reported"), "{text}");
        assert!(lines[12].contains("\"status\":\"completed\""), "{text}");
        pool.shutdown();
    }

    /// A workload name full of control characters, quotes and non-ASCII
    /// must round-trip the serve socket as well-formed one-line JSON: the
    /// submit rejection echoes the name (quotes and backslashes escaped,
    /// UTF-8 passed through raw), and a report carrying such a name
    /// directly — [`JobOutcome::to_json`] is the same serializer the
    /// socket streams — `\u`-escapes every raw control char.
    #[test]
    fn hostile_names_round_trip_escaped_through_the_report_stream() {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            quantum: 16,
            ..Default::default()
        });
        let handle = pool.handle();
        let script = "submit na\u{1}ïve\"🚀 3\nwait\nquit\n";
        let mut out = Vec::new();
        let shutdown = serve_session(&handle, script.as_bytes(), &mut out).unwrap();
        assert!(!shutdown);
        let text = String::from_utf8_lossy(&out);
        let lines: Vec<&str> = text.lines().collect();
        // Rejection line (unknown workload, name echoed), wait summary.
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"ok\":false"), "{text}");
        assert!(lines[0].contains("unknown workload"), "{text}");
        assert!(lines[0].contains("\\\""), "quote stays escaped: {text}");
        assert!(lines[0].contains("ïve") && lines[0].contains("🚀"), "{text}");
        assert!(
            text.lines().all(|l| l.chars().all(|c| (c as u32) >= 0x20)),
            "no raw control byte in the stream: {text}"
        );
        pool.shutdown();

        // The report serializer itself, fed raw control chars (a future
        // registry could admit such names; the stream must not split).
        let outcome = crate::pool::JobOutcome {
            job_id: 1,
            submit_seq: 1,
            spec: JobSpec::new("na\u{1}ïve\n\"🚀", 3),
            status: crate::pool::JobStatus::Failed,
            report: None,
            error: Some("tab\there\u{2}".into()),
            quanta: 0,
        };
        let line = outcome.to_json();
        assert!(!line.contains('\n') && !line.contains('\t'), "{line}");
        assert!(line.contains("\\u0001") && line.contains("\\u0002"), "{line}");
        assert!(line.contains("\\n") && line.contains("\\t"), "{line}");
        assert!(line.contains("\\\"🚀"), "{line}");
    }
}
