//! **gprs-serve** — a multi-tenant serving layer over the GPRS runtime:
//! many independent precise-restartable programs (jobs) share one pool of
//! OS worker threads.
//!
//! The paper's runtime executes one program per process; this crate turns
//! it into a service. Each admitted [`spec::JobSpec`] is built into a
//! fully isolated engine (its own OrderGate, reorder list, write-ahead
//! log, history store, and telemetry — nothing static is shared between
//! tenants) and driven cooperatively in bounded *quanta* of ordered
//! grants via [`gprs_runtime::session::GprsSession`]:
//!
//! * **FIFO scheduling, atomic job states.** `Idle → Pending → Running`
//!   transitions are compare-exchanges, so a job can never be
//!   double-enqueued and only its claiming worker may yield or finish it.
//! * **Quantum yielding.** A job that exhausts its grant budget parks —
//!   its precise-restart state quiesced inside the engine — and re-enters
//!   the FIFO tail, so a long job cannot delay queued jobs by more than
//!   about one quantum per pass. Restartability is the scheduling
//!   primitive, not just the fault path.
//! * **Determinism across tenancy.** Grant order is worker-count and
//!   interleaving independent, so a served job's retired hash is
//!   bit-identical to the same spec run solo — multi-tenancy provably
//!   does not leak into results.
//! * **Cancellation, deadlines, graceful shutdown.** All three reuse
//!   recovery: stopping a job squashes its in-flight suffix through the
//!   ordinary restart path, leaving the WAL ledger balanced and the
//!   retired prefix committed.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use gprs_serve::pool::{PoolConfig, ServePool};
//! use gprs_serve::spec::JobSpec;
//!
//! let pool = ServePool::start(PoolConfig { workers: 2, quantum: 32, ..Default::default() });
//! let handle = pool.handle();
//! let ticket = handle.submit(JobSpec::new("fetchadd", 7)).unwrap();
//! let outcome = ticket.wait();
//! let report = outcome.report.expect("completed");
//! // Bit-identical to the same spec run solo:
//! let solo = gprs_serve::spec::build_solo(&JobSpec::new("fetchadd", 7))
//!     .unwrap().run().unwrap();
//! assert_eq!(report.telemetry.retired_hash, solo.telemetry.retired_hash);
//! pool.shutdown();
//! ```
//!
//! The line-delimited socket/CLI driver lives in [`server`] and the
//! `gprs-serve` binary.

#![warn(missing_docs)]

pub mod pool;
pub mod server;
pub mod spec;

pub use pool::{JobOutcome, JobStatus, JobTicket, PoolConfig, PoolStats, ServeHandle, ServePool};
pub use spec::{
    build_job, build_job_durable, build_job_sharded, build_solo, fault_plan, JobSpec, WORKLOADS,
};
