//! The shared worker pool: FIFO scheduling, quantum yielding, cancel,
//! deadlines, and graceful shutdown.
//!
//! Each submitted [`JobSpec`] becomes an isolated cooperative
//! [`GprsSession`] — its own OrderGate/ROL/WAL/history/telemetry, nothing
//! shared with co-resident jobs — driven by whichever pool worker claims
//! it next. Job states follow the atomic `Idle → Pending → Running`
//! discipline: a job is enqueued exactly when it transitions into
//! `Pending` (a failed compare-exchange means someone else owns the
//! transition, so a job can never be double-enqueued), and only the
//! claiming worker may move it out of `Running`. A quantum is a bounded
//! number of ordered grants; a job that yields re-enters the FIFO tail
//! with its precise state parked inside the engine, so long jobs cannot
//! starve the queue and a job may migrate between OS workers across
//! quanta without perturbing its deterministic schedule.
//!
//! [`JobSpec::shard`] jobs are the one exception to quantum slicing:
//! sessions are never sharded, so the claiming worker drives the whole
//! sharded run to completion in a single blocking pass (the per-domain
//! engines spawn and join their own worker threads inside it). They still
//! honour claim-time cancellation and publish ordinary outcomes.

use crate::spec::{build_job, build_job_durable_recorded, build_job_sharded, validate, JobSpec};
use gprs_core::persist::{DurableImage, DurableRecord, FileBackend, PersistBackend};
use gprs_runtime::report::RunReport;
use gprs_runtime::session::{GprsSession, QuantumOutcome};
use gprs_telemetry::{Counter, Histogram, HistogramSnapshot, JsonWriter};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default grants per scheduling quantum.
pub const DEFAULT_QUANTUM: u64 = 64;

/// Pool sizing and scheduling knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// OS worker threads sharing the job queue.
    pub workers: usize,
    /// Ordered grants per quantum before a job yields back to the FIFO.
    pub quantum: u64,
    /// Root directory for durable job state. When set, every admitted job
    /// gets its own directory (`job-<seq>/`) holding a checksummed WAL +
    /// merkle checkpoint store, and [`ServePool::start`] rescans the root
    /// for unfinished jobs and resubmits them — served jobs survive a pool
    /// (or whole-process) crash. `None` keeps today's in-memory behaviour.
    pub durable_root: Option<PathBuf>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            quantum: DEFAULT_QUANTUM,
            durable_root: None,
        }
    }
}

/// Job lifecycle states (the atomic scheduling discipline).
const IDLE: u8 = 0;
const PENDING: u8 = 1;
const RUNNING: u8 = 2;
const FINISHED: u8 = 3;

/// Pool lifecycle.
const RUN: u8 = 0;
/// Stop admitting; drain queued and in-flight jobs to completion.
const DRAIN: u8 = 1;
/// Stop admitting; cancel queued and in-flight jobs through their
/// recovery gates (still a clean, ledger-balanced stop).
const HALT: u8 = 2;

/// How a job left the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion.
    Completed,
    /// Cancelled by [`JobTicket::cancel`], [`ServeHandle::cancel`], or a
    /// halting shutdown; the in-flight suffix was squashed through
    /// recovery, everything retired stays committed.
    Cancelled,
    /// Cancelled because the job exceeded its quanta deadline.
    DeadlineExceeded,
    /// Cancelled because the job exceeded its wall-clock timeout.
    TimedOut,
    /// The program poisoned (step panic or deadlock).
    Failed,
}

impl JobStatus {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::DeadlineExceeded => "deadline",
            JobStatus::TimedOut => "timeout",
            JobStatus::Failed => "failed",
        }
    }
}

/// Everything the pool reports back for one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Stable job id (also stamped into the report).
    pub job_id: u64,
    /// Monotonic submission sequence number.
    pub submit_seq: u64,
    /// The spec as submitted.
    pub spec: JobSpec,
    /// How the job left the pool.
    pub status: JobStatus,
    /// The run report: full for `Completed`, partial (everything retired
    /// before the stop) for the cancelled statuses, `None` for `Failed`
    /// and for jobs cancelled before they ever ran a quantum.
    pub report: Option<RunReport>,
    /// Poison message for `Failed`.
    pub error: Option<String>,
    /// Scheduling quanta the job consumed.
    pub quanta: u64,
}

impl JobOutcome {
    /// Serializes the outcome as a single JSON object (the socket driver's
    /// per-job response line).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("job_id", self.job_id)
            .field_u64("submit_seq", self.submit_seq)
            .field_str("workload", &self.spec.workload)
            .field_u64("seed", self.spec.seed)
            .field_u64("fault_seed", self.spec.fault_seed)
            .field_str("status", self.status.as_str())
            .field_u64("quanta", self.quanta);
        if let Some(report) = &self.report {
            w.field_hex("schedule_hash", report.telemetry.schedule_hash)
                .field_hex("retired_hash", report.telemetry.retired_hash)
                .field_u64("retired", report.telemetry.retired_count)
                .field_u64("grants", report.stats.grants)
                .field_u64("exceptions", report.stats.exceptions)
                .field_u64("squashed", report.stats.squashed)
                .field_u64("recoveries", report.stats.recoveries);
            if !report.shards.is_empty() {
                w.field_u64("domains", report.shards.len() as u64);
            }
        }
        if let Some(error) = &self.error {
            w.field_str("error", error);
        }
        w.end_object();
        w.finish()
    }
}

/// File name of the schedule recording a fresh durable job writes into
/// its durable directory (`gprs-replay run/diff/state` input).
pub const RECORDING_FILE: &str = "recording.gprs";

/// A job's durable persistence attachment.
struct JobDurable {
    /// The job's own directory under the pool's durable root.
    dir: PathBuf,
    /// File backend every epoch of this job logs through.
    backend: Arc<FileBackend>,
    /// The image a resumed job replays against (taken by the first
    /// claiming worker; `None` for fresh submissions).
    resume: Mutex<Option<DurableImage>>,
}

/// One admitted job.
struct Job {
    id: u64,
    seq: u64,
    spec: JobSpec,
    /// Durable state, when the pool has a `durable_root`.
    durable: Option<JobDurable>,
    state: AtomicU8,
    cancel: AtomicBool,
    admitted: Instant,
    /// Stamped at every enqueue; read by the claiming worker for the
    /// queue-wait histogram.
    enqueued: Mutex<Instant>,
    /// Built lazily by the first claiming worker (admission only
    /// validates), so engine construction parallelizes across the pool
    /// instead of serializing on submitters.
    session: Mutex<Option<GprsSession>>,
    quanta: AtomicU64,
    outcome: Mutex<Option<JobOutcome>>,
    done_cv: Condvar,
}

/// Pool-level counters (shared across all tenants; each job additionally
/// carries its fully isolated per-run telemetry in its report).
#[derive(Debug, Default)]
struct PoolMetrics {
    submitted: Counter,
    completed: Counter,
    cancelled: Counter,
    failed: Counter,
    quanta: Counter,
    yields: Counter,
    /// Microseconds between a job entering the FIFO and a worker claiming
    /// it (every quantum round-trip records one sample).
    queue_wait_us: Histogram,
}

/// A point-in-time copy of the pool counters.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled (explicit, deadline, timeout, or halting shutdown).
    pub cancelled: u64,
    /// Jobs that poisoned.
    pub failed: u64,
    /// Scheduling quanta executed.
    pub quanta: u64,
    /// Quanta that ended in a yield (vs. job completion).
    pub yields: u64,
    /// FIFO wait distribution, microseconds.
    pub queue_wait_us: HistogramSnapshot,
}

impl PoolStats {
    /// Serializes the stats as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("submitted", self.submitted)
            .field_u64("completed", self.completed)
            .field_u64("cancelled", self.cancelled)
            .field_u64("failed", self.failed)
            .field_u64("quanta", self.quanta)
            .field_u64("yields", self.yields)
            .field_u64("queue_wait_us_count", self.queue_wait_us.count)
            .field_u64("queue_wait_us_max", self.queue_wait_us.max)
            .end_object();
        w.finish()
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    cv: Condvar,
    phase: AtomicU8,
    /// Admitted jobs not yet `FINISHED`; drain shutdown completes when
    /// this reaches zero.
    unfinished: AtomicU64,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    quantum: u64,
    /// See [`PoolConfig::durable_root`].
    durable_root: Option<PathBuf>,
    metrics: PoolMetrics,
}

impl Shared {
    /// Enqueues a job that the caller just transitioned into `PENDING`.
    fn push(&self, job: Arc<Job>) {
        *job.enqueued.lock() = Instant::now();
        self.queue.lock().push_back(job);
        self.cv.notify_one();
    }

    fn stats(&self) -> PoolStats {
        let m = &self.metrics;
        PoolStats {
            submitted: m.submitted.get(),
            completed: m.completed.get(),
            cancelled: m.cancelled.get(),
            failed: m.failed.get(),
            quanta: m.quanta.get(),
            yields: m.yields.get(),
            queue_wait_us: m.queue_wait_us.snapshot(),
        }
    }
}

/// Errors a submission can be rejected with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool is shutting down.
    ShuttingDown,
    /// The spec did not build (unknown workload).
    BadSpec(String),
    /// The job's durable directory could not be created or written.
    Durable(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
            SubmitError::BadSpec(msg) => write!(f, "bad job spec: {msg}"),
            SubmitError::Durable(msg) => write!(f, "durable store: {msg}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A claim check for one submitted job.
pub struct JobTicket {
    job: Arc<Job>,
}

impl JobTicket {
    /// The job's stable id.
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// The job's submission sequence number.
    pub fn seq(&self) -> u64 {
        self.job.seq
    }

    /// Requests cancellation. The job is stopped at its next quantum
    /// boundary (or on claim, if still queued) by squashing the in-flight
    /// suffix through recovery; [`wait`](Self::wait) then returns a
    /// `Cancelled` outcome with the partial report (no report if the job
    /// never ran a quantum). Idempotent; a no-op once the job finished.
    pub fn cancel(&self) {
        self.job.cancel.store(true, Ordering::Release);
    }

    /// Blocks until the job leaves the pool and returns its outcome.
    pub fn wait(self) -> JobOutcome {
        let mut slot = self.job.outcome.lock();
        while slot.is_none() {
            self.job.done_cv.wait(&mut slot);
        }
        slot.take().expect("outcome present")
    }

    /// Non-blocking probe: the outcome, if the job already finished.
    pub fn try_wait(&self) -> Option<JobOutcome> {
        self.job.outcome.lock().take()
    }
}

/// A clonable submission handle onto a running [`ServePool`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Admits a job: validates the spec, assigns it the next stable id and
    /// submission sequence number, and enqueues it. The isolated engine is
    /// materialized by the first worker that claims the job, so admission
    /// stays cheap and construction parallelizes across the pool.
    ///
    /// # Errors
    /// [`SubmitError::ShuttingDown`] after a shutdown began;
    /// [`SubmitError::BadSpec`] for unknown workloads.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        if self.shared.phase.load(Ordering::Acquire) != RUN {
            return Err(SubmitError::ShuttingDown);
        }
        validate(&spec).map_err(SubmitError::BadSpec)?;
        if spec.shard && self.shared.durable_root.is_some() {
            // `build_sharded` rejects durable persistence (per-domain WALs
            // have no durable merge rule yet); refuse at admission rather
            // than fail the job on first claim.
            return Err(SubmitError::BadSpec(
                "sharded jobs do not support the durable store".into(),
            ));
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let durable = match &self.shared.durable_root {
            Some(root) => {
                // Record the canonical spec line before the job ever runs:
                // a job that crashes while still queued is resumable from
                // its spec alone (the engine re-records the spec into a
                // fresh epoch when it actually builds).
                let dir = root.join(format!("job-{seq:08}"));
                let attach = FileBackend::open(&dir)
                    .and_then(|backend| {
                        backend.record(&DurableRecord::Spec {
                            text: spec.canonical_line(),
                        })?;
                        backend.sync()?;
                        Ok(backend)
                    })
                    .map_err(|e| SubmitError::Durable(e.to_string()))?;
                Some(JobDurable {
                    dir,
                    backend: Arc::new(attach),
                    resume: Mutex::new(None),
                })
            }
            None => None,
        };
        let job = Arc::new(Job {
            id,
            seq,
            spec,
            durable,
            state: AtomicU8::new(IDLE),
            cancel: AtomicBool::new(false),
            admitted: Instant::now(),
            enqueued: Mutex::new(Instant::now()),
            session: Mutex::new(None),
            quanta: AtomicU64::new(0),
            outcome: Mutex::new(None),
            done_cv: Condvar::new(),
        });
        self.shared.unfinished.fetch_add(1, Ordering::AcqRel);
        self.shared.metrics.submitted.inc();
        let claimed = job
            .state
            .compare_exchange(IDLE, PENDING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        debug_assert!(claimed, "a fresh job has no competing enqueuer");
        self.shared.push(job.clone());
        Ok(JobTicket { job })
    }

    /// A point-in-time copy of the pool counters.
    pub fn stats(&self) -> PoolStats {
        self.shared.stats()
    }

    /// Whether a shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.phase.load(Ordering::Acquire) != RUN
    }
}

/// The shared worker pool. Dropping it without calling
/// [`shutdown`](Self::shutdown) drains gracefully.
pub struct ServePool {
    shared: Arc<Shared>,
    joins: Vec<std::thread::JoinHandle<()>>,
    /// Tickets for jobs resurrected from the durable root at start.
    resumed: Vec<JobTicket>,
}

impl ServePool {
    /// Boots `cfg.workers` OS threads sharing one FIFO job queue. With a
    /// [`durable_root`](PoolConfig::durable_root), unfinished job
    /// directories from a previous pool incarnation are resubmitted before
    /// any worker starts — collect their tickets with
    /// [`take_resumed`](Self::take_resumed).
    pub fn start(cfg: PoolConfig) -> ServePool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            phase: AtomicU8::new(RUN),
            unfinished: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            quantum: cfg.quantum.max(1),
            durable_root: cfg.durable_root.clone(),
            metrics: PoolMetrics::default(),
        });
        let resumed = match &cfg.durable_root {
            Some(root) => resume_jobs(&shared, root),
            None => Vec::new(),
        };
        let workers = cfg.workers.max(1);
        let mut joins = Vec::with_capacity(workers);
        for ix in 0..workers {
            let shared = shared.clone();
            joins.push(
                std::thread::Builder::new()
                    .name(format!("gprs-serve-{ix}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker"),
            );
        }
        ServePool {
            shared,
            joins,
            resumed,
        }
    }

    /// Tickets for the jobs [`start`](Self::start) resurrected from the
    /// durable root (empty without one, and on every later call).
    pub fn take_resumed(&mut self) -> Vec<JobTicket> {
        std::mem::take(&mut self.resumed)
    }

    /// A submission handle (clonable, usable from any thread).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: self.shared.clone(),
        }
    }

    /// Graceful shutdown: stops admissions, drains every queued and
    /// in-flight job to completion — each one passes its recovery gates
    /// before its final report is published — then joins the workers.
    pub fn shutdown(self) -> PoolStats {
        self.stop(DRAIN)
    }

    /// Halting shutdown: stops admissions and cancels every queued and
    /// in-flight job at its next quantum boundary. Cancellation runs the
    /// ordinary recovery path, so even a halt leaves every job's ledger
    /// balanced and its retired prefix committed.
    pub fn shutdown_now(self) -> PoolStats {
        self.stop(HALT)
    }

    fn stop(mut self, phase: u8) -> PoolStats {
        self.shared.phase.store(phase, Ordering::Release);
        self.shared.cv.notify_all();
        for j in self.joins.drain(..) {
            j.join().expect("pool workers do not panic");
        }
        self.shared.stats()
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        if self.joins.is_empty() {
            return;
        }
        self.shared.phase.store(DRAIN, Ordering::Release);
        self.shared.cv.notify_all();
        for j in self.joins.drain(..) {
            j.join().expect("pool workers do not panic");
        }
    }
}

/// Scans `root` for unfinished durable job directories (no `DONE`
/// marker), loads each one's image, and resubmits it under its original
/// identity with the image attached as the replay-verification prefix.
/// Unreadable or specless directories are skipped loudly on stderr and
/// left on disk for inspection.
fn resume_jobs(shared: &Arc<Shared>, root: &Path) -> Vec<JobTicket> {
    if let Err(e) = std::fs::create_dir_all(root) {
        eprintln!("gprs-serve: durable root {}: {e}", root.display());
        return Vec::new();
    }
    let mut dirs: Vec<(u64, PathBuf)> = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(it) => it,
        Err(e) => {
            eprintln!("gprs-serve: durable root {}: {e}", root.display());
            return Vec::new();
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(seq) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("job-"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if path.join("DONE").exists() || !path.is_dir() {
            continue;
        }
        dirs.push((seq, path));
    }
    dirs.sort_unstable();
    let mut tickets = Vec::new();
    let mut max_seq = 0u64;
    for (seq, dir) in dirs {
        let backend = match FileBackend::open(&dir) {
            Ok(b) => Arc::new(b),
            Err(e) => {
                eprintln!("gprs-serve: cannot resume {}: {e}", dir.display());
                continue;
            }
        };
        let image = match backend.load() {
            Ok(image) => image,
            Err(e) => {
                eprintln!("gprs-serve: cannot resume {}: {e}", dir.display());
                continue;
            }
        };
        let spec = match image
            .spec
            .as_deref()
            .ok_or_else(|| "no spec record in the durable log".to_string())
            .and_then(JobSpec::parse_canonical)
        {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!(
                    "gprs-serve: cannot resume {}: bad spec record {:?}: {e}",
                    dir.display(),
                    image.spec
                );
                continue;
            }
        };
        max_seq = max_seq.max(seq);
        let job = Arc::new(Job {
            id: seq,
            seq,
            spec,
            durable: Some(JobDurable {
                dir,
                backend,
                resume: Mutex::new(Some(image)),
            }),
            state: AtomicU8::new(PENDING),
            cancel: AtomicBool::new(false),
            admitted: Instant::now(),
            enqueued: Mutex::new(Instant::now()),
            session: Mutex::new(None),
            quanta: AtomicU64::new(0),
            outcome: Mutex::new(None),
            done_cv: Condvar::new(),
        });
        shared.unfinished.fetch_add(1, Ordering::AcqRel);
        shared.metrics.submitted.inc();
        shared.push(job.clone());
        tickets.push(JobTicket { job });
    }
    // New submissions must never collide with a resurrected directory.
    shared.next_id.fetch_max(max_seq, Ordering::Relaxed);
    shared.next_seq.fetch_max(max_seq, Ordering::Relaxed);
    tickets
}

/// One pool worker: claim the FIFO head, drive one quantum, publish or
/// requeue.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                let phase = shared.phase.load(Ordering::Acquire);
                if phase != RUN && shared.unfinished.load(Ordering::Acquire) == 0 {
                    return;
                }
                if phase == HALT {
                    // In-flight jobs are being cancelled by their owners;
                    // re-check rather than sleep so stragglers can't park
                    // this worker forever.
                    drop(q);
                    std::thread::yield_now();
                    q = shared.queue.lock();
                    continue;
                }
                shared.cv.wait(&mut q);
            }
        };
        if job
            .state
            .compare_exchange(PENDING, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Stale entry: the job is owned elsewhere. The enqueue
            // discipline makes this unreachable, but skipping is always
            // safe — the owner will requeue it.
            continue;
        }
        let waited = job.enqueued.lock().elapsed();
        shared
            .metrics
            .queue_wait_us
            .record(waited.as_micros() as u64);
        drive(shared, &job);
    }
}

/// Runs one quantum of `job` (already claimed `RUNNING`) and either
/// requeues it or publishes its outcome.
fn drive(shared: &Shared, job: &Arc<Job>) {
    let mut guard = job.session.lock();
    let halting = shared.phase.load(Ordering::Acquire) == HALT;
    let stopping = job.cancel.load(Ordering::Acquire) || halting;
    if job.spec.shard {
        // Sharded jobs have no cooperative session: the per-domain engines
        // spawn and join their own workers inside `run`, so this claim
        // drives the job to completion in one blocking pass. Cancellation
        // is claim-time only; deadlines and timeouts are quantum-boundary
        // checks and never fire inside the single pass.
        if stopping {
            publish(shared, job, guard, Some(JobStatus::Cancelled), None, None);
            return;
        }
        shared.metrics.quanta.inc();
        job.quanta.fetch_add(1, Ordering::Relaxed);
        let outcome = build_job_sharded(&job.spec, job.id, job.seq)
            .and_then(|sharded| sharded.run().map_err(|e| e.to_string()));
        let (report, error) = match outcome {
            Ok(report) => (Some(report), None),
            Err(e) => (None, Some(e)),
        };
        publish(shared, job, guard, None, report, error);
        return;
    }
    if guard.is_none() && !stopping {
        // First claim: materialize the isolated engine here, on a pool
        // worker. A job stopped before this point never builds an engine
        // at all (a halt over thousands of queued jobs must not pay
        // thousands of constructions just to cancel them).
        let built = match &job.durable {
            Some(d) => {
                let image = d.resume.lock().take();
                // Fresh durable jobs also record their schedule next to
                // the WAL image: a failed job's directory then carries the
                // exact grant order for a `gprs-replay` post-mortem.
                build_job_durable_recorded(
                    &job.spec,
                    job.id,
                    job.seq,
                    d.backend.clone(),
                    image.as_ref(),
                    Some(&d.dir.join(RECORDING_FILE)),
                )
            }
            None => build_job(&job.spec, job.id, job.seq),
        };
        match built {
            Ok(gprs) => *guard = Some(gprs.into_session()),
            Err(e) => {
                // Unreachable given admission validation; fail defensively.
                publish(shared, job, guard, Some(JobStatus::Failed), None, Some(e));
                return;
            }
        }
    }
    let mut status = None;
    if let Some(session) = guard.as_mut() {
        if stopping {
            session.cancel();
            status = Some(JobStatus::Cancelled);
        } else {
            shared.metrics.quanta.inc();
            let quanta = job.quanta.fetch_add(1, Ordering::Relaxed) + 1;
            match session.run_quantum(shared.quantum) {
                QuantumOutcome::Finished => {}
                QuantumOutcome::Yielded => {
                    if job.spec.deadline_quanta.is_some_and(|d| quanta >= d) {
                        session.cancel();
                        status = Some(JobStatus::DeadlineExceeded);
                    } else if job
                        .spec
                        .timeout_ms
                        .is_some_and(|ms| job.admitted.elapsed().as_millis() as u64 >= ms)
                    {
                        session.cancel();
                        status = Some(JobStatus::TimedOut);
                    } else {
                        shared.metrics.yields.inc();
                        drop(guard);
                        let requeued = job
                            .state
                            .compare_exchange(RUNNING, PENDING, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok();
                        debug_assert!(requeued, "only the owner moves a job out of RUNNING");
                        shared.push(job.clone());
                        return;
                    }
                }
            }
        }
    } else {
        // Stopped before its first quantum: no engine, nothing retired.
        status = Some(JobStatus::Cancelled);
    }
    // The job finished (completed, cancelled, or poisoned): publish.
    let (report, error) = match guard.take() {
        Some(session) => {
            if status.is_none() && session.was_cancelled() {
                status = Some(JobStatus::Cancelled);
            }
            match session.finish() {
                Ok(report) => (Some(report), None),
                Err(e) => (None, Some(e.to_string())),
            }
        }
        None => (None, None),
    };
    publish(shared, job, guard, status, report, error);
}

/// Publishes a terminal outcome for `job` (owner-only; `guard` must hold
/// the job's now-empty session slot).
fn publish(
    shared: &Shared,
    job: &Arc<Job>,
    guard: parking_lot::MutexGuard<'_, Option<GprsSession>>,
    status: Option<JobStatus>,
    report: Option<RunReport>,
    error: Option<String>,
) {
    let status = if error.is_some() {
        JobStatus::Failed
    } else {
        status.unwrap_or(JobStatus::Completed)
    };
    match status {
        JobStatus::Completed => shared.metrics.completed.inc(),
        JobStatus::Failed => shared.metrics.failed.inc(),
        _ => shared.metrics.cancelled.inc(),
    }
    let outcome = JobOutcome {
        job_id: job.id,
        submit_seq: job.seq,
        spec: job.spec.clone(),
        status,
        report,
        error,
        quanta: job.quanta.load(Ordering::Relaxed),
    };
    if let Some(d) = &job.durable {
        // Terminal outcome: mark the directory so a pool restart does not
        // resurrect this job. A crash between the final sync and this
        // marker re-runs the job — recovery is idempotent, so that is
        // merely wasted work, never a wrong answer.
        if let Err(e) = std::fs::write(d.dir.join("DONE"), status.as_str()) {
            eprintln!("gprs-serve: DONE marker {}: {e}", d.dir.display());
        }
    }
    drop(guard);
    job.state.store(FINISHED, Ordering::Release);
    *job.outcome.lock() = Some(outcome);
    job.done_cv.notify_all();
    if shared.unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last job done: wake any workers sleeping through a drain.
        shared.cv.notify_all();
    }
}
