//! `gprs-replay` — deterministic record/replay & time-travel debugging.
//!
//! ```text
//! gprs-replay run   <recording> [--workers N] [--scale F] [--expect-golden]
//! gprs-replay diff  <a> <b>
//! gprs-replay state <recording> [--at N] [--workers N]
//! ```
//!
//! Exit codes: `0` — verified (or faithfully reproduced a recorded
//! failure; with `--expect-golden` only a clean verified replay counts),
//! `2` — schedule divergence or diff mismatch, `1` — anything that stopped
//! the replay from running at all (usage, unreadable or corrupt recording,
//! unknown workload).

use gprs_core::recording::{first_divergence, RecordedOutcome, Recording, RecordingDiff};
use gprs_replay::{record_program, replay_recording, state_at, ReplayOptions, ReplayOutcome};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage:
  gprs-replay record <program> <out> [--workers N] [--session]
  gprs-replay run    <recording> [--workers N] [--scale F] [--expect-golden]
  gprs-replay diff   <a> <b>
  gprs-replay state  <recording> [--at N] [--workers N]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("gprs-replay: {msg}");
    ExitCode::from(1)
}

fn load(path: &str) -> Result<Recording, String> {
    Recording::load(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

/// Parses `--workers N` / `--scale F` / `--at N` / `--expect-golden` out
/// of the tail of an argument list.
struct Flags {
    opts: ReplayOptions,
    at: Option<u64>,
    expect_golden: bool,
    session: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        opts: ReplayOptions::default(),
        at: None,
        expect_golden: false,
        session: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                f.opts.workers =
                    Some(v.parse().map_err(|_| format!("bad --workers value {v:?}"))?);
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                f.opts.scale = v.parse().map_err(|_| format!("bad --scale value {v:?}"))?;
            }
            "--at" => {
                let v = it.next().ok_or("--at needs a value")?;
                f.at = Some(v.parse().map_err(|_| format!("bad --at value {v:?}"))?);
            }
            "--expect-golden" => f.expect_golden = true,
            "--session" => f.session = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(f)
}

fn cmd_run(path: &str, flags: &Flags) -> ExitCode {
    let rec = match load(path) {
        Ok(r) => Arc::new(r),
        Err(e) => return fail(&e),
    };
    println!(
        "replaying {:?} ({} mode, {} events, recorded outcome: {})",
        rec.header.workload,
        rec.header.mode,
        rec.events.len(),
        match &rec.outcome {
            RecordedOutcome::Complete => "complete".to_string(),
            RecordedOutcome::Poisoned(m) => format!("poisoned: {m}"),
        }
    );
    match replay_recording(&rec, &flags.opts) {
        Err(e) => fail(&e),
        Ok(ReplayOutcome::Verified { events, schedule, retired }) => {
            println!(
                "verified: {events} events replayed, schedule {schedule:016x}, \
                 retired {retired:016x}"
            );
            ExitCode::SUCCESS
        }
        Ok(ReplayOutcome::Reproduced { events, original }) => {
            println!(
                "reproduced the recorded failure after {events} events: {original}"
            );
            if flags.expect_golden {
                eprintln!("gprs-replay: --expect-golden requires a clean verified replay");
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Ok(ReplayOutcome::Diverged(msg)) => {
            eprintln!("gprs-replay: divergence: {msg}");
            ExitCode::from(2)
        }
    }
}

fn cmd_diff(pa: &str, pb: &str) -> ExitCode {
    let (a, b) = match (load(pa), load(pb)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    for (what, va, vb) in [
        ("workload", &a.header.workload, &b.header.workload),
        ("mode", &a.header.mode.to_string(), &b.header.mode.to_string()),
        ("schedule", &a.header.schedule, &b.header.schedule),
    ] {
        if va != vb {
            println!("header {what}: {va:?} vs {vb:?}");
        }
    }
    let diff = first_divergence(&a, &b);
    println!("{diff}");
    match diff {
        RecordingDiff::Identical => ExitCode::SUCCESS,
        _ => ExitCode::from(2),
    }
}

fn cmd_state(path: &str, flags: &Flags) -> ExitCode {
    let rec = match load(path) {
        Ok(r) => Arc::new(r),
        Err(e) => return fail(&e),
    };
    match state_at(&rec, flags.at, &flags.opts) {
        Err(e) => fail(&e),
        Ok(state) => {
            print!("{state}");
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail(USAGE);
    };
    match cmd.as_str() {
        "record" => {
            let (Some(program), Some(out)) = (args.get(1), args.get(2)) else {
                return fail(USAGE);
            };
            let flags = match parse_flags(&args[3..]) {
                Ok(f) => f,
                Err(e) => return fail(&e),
            };
            match record_program(
                program,
                std::path::Path::new(out),
                flags.opts.workers,
                flags.session,
            ) {
                Ok((schedule, retired)) => {
                    println!(
                        "recorded {program:?} to {out}: schedule {schedule:016x}, \
                         retired {retired:016x}"
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "run" | "state" => {
            let Some(path) = args.get(1) else {
                return fail(USAGE);
            };
            let flags = match parse_flags(&args[2..]) {
                Ok(f) => f,
                Err(e) => return fail(&e),
            };
            if cmd == "run" {
                cmd_run(path, &flags)
            } else {
                cmd_state(path, &flags)
            }
        }
        "diff" => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                return fail(USAGE);
            };
            if args.len() > 3 {
                return fail(USAGE);
            }
            cmd_diff(a, b)
        }
        _ => fail(USAGE),
    }
}
