//! Time-travel debugging over recorded GPRS schedules.
//!
//! A [`Recording`](gprs_core::recording::Recording) captures everything a
//! deterministic re-execution needs: the workload identity, the full
//! turn-consuming grant order, the chaos overlay, and the drive mode. This
//! crate turns that artifact into the three debugging verbs the `gprs-replay`
//! binary exposes:
//!
//! - **run** — rebuild the recorded program from the header (serve-spec
//!   line, runtime campaign program, or simulator trace), re-arm the chaos
//!   overlay, and replay the tape through the matching engine, verifying
//!   every grant and the final digests.
//! - **diff** — compare two recordings to their first divergent grant.
//! - **state** — replay a *session-mode* recording to a chosen grant index
//!   and dump the quiesced [`PreciseState`]: thread positions, lock
//!   holders, the WAL ledger — "what did the world look like right here".
//!
//! Every failure is a named error; a divergence between the tape and the
//! live run is reported as [`ReplayOutcome::Diverged`], never a panic.

use gprs_chaos::programs::{register_gprs, RUNTIME_PROGRAMS};
use gprs_core::chaos::ChaosPlan;
use gprs_core::recording::{DriveMode, RecordedOutcome, Recording};
use gprs_runtime::prelude::*;
use gprs_serve::spec::{register as register_spec, JobSpec};
use gprs_sim::gprs::{run_gprs, GprsSimConfig};
use gprs_workloads::traces::{try_build, TraceParams};
use std::sync::Arc;

/// What replaying a recording established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The replay completed and every verification gate passed: all
    /// recorded events re-granted in order, final schedule and retired
    /// digests bit-identical to the footer.
    Verified {
        /// Recorded events verified.
        events: u64,
        /// Final schedule-order digest.
        schedule: u64,
        /// Final retired-order digest.
        retired: u64,
    },
    /// The recording captured a *failed* run and the replay faithfully
    /// re-reached the recorded failure point — the success case for
    /// debugging a poisoned job.
    Reproduced {
        /// Recorded events verified before the failure point.
        events: u64,
        /// The original run's poison message, from the footer.
        original: String,
    },
    /// The live run and the tape disagreed; the message names the first
    /// divergent event.
    Diverged(String),
}

/// How to rebuild the recorded program. Knobs the recording itself cannot
/// carry: worker override for pool replays (`None` = the recorded count)
/// and the trace scale for simulator workloads (recordings do not embed
/// [`TraceParams`]; a mismatched scale replays loudly as a divergence).
#[derive(Debug, Clone, Copy)]
pub struct ReplayOptions {
    /// Worker count for pool-mode replays (`None` keeps the header's).
    pub workers: Option<u32>,
    /// `TraceParams::paper().scaled(scale)` for sim-mode replays.
    pub scale: f64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions { workers: None, scale: 1.0 }
    }
}

/// Rebuilds a pool/session recording's program onto a fresh builder:
/// serve-spec line if the header carries one, otherwise a runtime campaign
/// program by name — and re-arms the recorded chaos overlay.
fn rebuild_runtime(rec: &Recording, opts: &ReplayOptions) -> Result<GprsBuilder, String> {
    let header = &rec.header;
    let mut b =
        GprsBuilder::new().workers(opts.workers.unwrap_or(header.workers).max(1) as usize);
    match &header.spec {
        Some(line) => {
            let spec = JobSpec::parse_canonical(line)
                .map_err(|e| format!("recording carries an unparseable job spec: {e}"))?;
            register_spec(&spec, &mut b)
                .map_err(|e| format!("recording's job spec does not rebuild: {e}"))?;
        }
        None => {
            if !RUNTIME_PROGRAMS.contains(&header.workload.as_str()) {
                return Err(format!(
                    "recording names unknown runtime program {:?} (known: {})",
                    header.workload,
                    RUNTIME_PROGRAMS.join(", ")
                ));
            }
            register_gprs(&header.workload, &mut b);
        }
    }
    if let Some(text) = &header.chaos {
        let plan = ChaosPlan::parse(text)
            .map_err(|e| format!("recording carries an unparseable chaos overlay: {e}"))?;
        b = b.chaos(&plan);
    }
    Ok(b)
}

/// Classifies a replayed runtime failure: re-reaching a recorded failure
/// is a reproduction, anything else is a divergence.
fn classify_failure(rec: &Recording, msg: String) -> ReplayOutcome {
    if let RecordedOutcome::Poisoned(original) = &rec.outcome {
        if msg.contains("end of a failed recording") {
            return ReplayOutcome::Reproduced {
                events: rec.events.len() as u64,
                original: original.clone(),
            };
        }
    }
    ReplayOutcome::Diverged(msg)
}

/// Replays a recording through the engine its header names, end to end.
///
/// # Errors
/// Configuration problems that prevent the replay from even starting —
/// unknown workload, unparseable spec or chaos overlay. Schedule-level
/// disagreement is *not* an `Err`: it comes back as
/// [`ReplayOutcome::Diverged`].
pub fn replay_recording(
    rec: &Arc<Recording>,
    opts: &ReplayOptions,
) -> Result<ReplayOutcome, String> {
    match rec.header.mode {
        DriveMode::Sim => {
            let params = TraceParams::paper().scaled(opts.scale);
            let w = try_build(&rec.header.workload, &params).ok_or_else(|| {
                format!(
                    "recording names unknown simulator program {:?}",
                    rec.header.workload
                )
            })?;
            let contexts = opts.workers.unwrap_or(rec.header.workers).max(1);
            let res = run_gprs(
                &w,
                &GprsSimConfig::balance_aware(contexts).with_replay(rec.clone()),
            );
            Ok(match res.replay_divergence {
                Some(msg) => classify_failure(rec, msg),
                None => ReplayOutcome::Verified {
                    events: rec.events.len() as u64,
                    schedule: res.telemetry.schedule_hash,
                    retired: res.telemetry.retired_hash,
                },
            })
        }
        DriveMode::Pool | DriveMode::Session => {
            let b = rebuild_runtime(rec, opts)?.replay(rec.clone());
            let report = if rec.header.mode == DriveMode::Session {
                let mut session = b.build().into_session();
                while session.run_quantum(256) == QuantumOutcome::Yielded {}
                session.finish()
            } else {
                b.build().run()
            };
            Ok(match report {
                Ok(r) => ReplayOutcome::Verified {
                    events: rec.events.len() as u64,
                    schedule: r.telemetry.schedule_hash,
                    retired: r.telemetry.retired_hash,
                },
                Err(e) => classify_failure(rec, e.to_string()),
            })
        }
    }
}

/// Records a runtime campaign program into `path` and returns the run's
/// final `(schedule, retired)` digests — the golden values a later
/// `replay --expect-golden` must reproduce. `session` drives the run
/// cooperatively so the resulting recording supports `gprs-replay state`.
///
/// # Errors
/// Unknown program name, or a run that poisons while recording.
pub fn record_program(
    program: &str,
    path: &std::path::Path,
    workers: Option<u32>,
    session: bool,
) -> Result<(u64, u64), String> {
    if !RUNTIME_PROGRAMS.contains(&program) {
        return Err(format!(
            "unknown runtime program {:?} (known: {})",
            program,
            RUNTIME_PROGRAMS.join(", ")
        ));
    }
    let mut b = GprsBuilder::new().workers(workers.unwrap_or(4).max(1) as usize);
    register_gprs(program, &mut b);
    let gprs = b.record(path).record_meta(program, 0).build();
    let report = if session {
        let mut s = gprs.into_session();
        while s.run_quantum(256) == QuantumOutcome::Yielded {}
        s.finish()
    } else {
        gprs.run()
    }
    .map_err(|e| format!("recorded run failed: {e}"))?;
    Ok((report.telemetry.schedule_hash, report.telemetry.retired_hash))
}

/// Replays a **session-mode** recording up to (at least) recorded event
/// index `at` and returns the quiesced [`PreciseState`] there — the
/// machine parks at the first quantum boundary at or after `at`, which is
/// exactly a recovery point. `None` replays the whole tape and returns the
/// final state.
///
/// # Errors
/// Pool and sim recordings are refused by name: free-running workers and
/// the simulator have no quiesced mid-run state to dump. Re-record the run
/// through a session to inspect it.
pub fn state_at(
    rec: &Arc<Recording>,
    at: Option<u64>,
    opts: &ReplayOptions,
) -> Result<PreciseState, String> {
    match rec.header.mode {
        DriveMode::Session => {}
        other => {
            return Err(format!(
                "precise state needs a session-mode recording; this one was \
                 captured in {other} mode (re-record the run through \
                 into_session / a serve job to inspect intermediate states)"
            ));
        }
    }
    let target = at.unwrap_or(rec.events.len() as u64);
    let mut session = rebuild_runtime(rec, opts)?
        .replay(rec.clone())
        .build()
        .into_session();
    loop {
        let replayed = session.precise_state().replayed.unwrap_or(0);
        if replayed >= target {
            break;
        }
        if session.run_quantum(1) == QuantumOutcome::Finished {
            break;
        }
    }
    Ok(session.precise_state())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::persist::unique_temp_dir;

    fn record_session(program: &str, path: &std::path::Path) {
        let mut b = GprsBuilder::new().workers(2);
        register_gprs(program, &mut b);
        let mut s = b
            .record(path)
            .record_meta(program, 0)
            .build()
            .into_session();
        while s.run_quantum(16) == QuantumOutcome::Yielded {}
        s.finish().expect("session completes");
    }

    #[test]
    fn run_verifies_a_clean_pool_recording() {
        let dir = unique_temp_dir("replay-cli-run");
        let path = dir.join("chain.gprs");
        let mut b = GprsBuilder::new().workers(2);
        register_gprs("chain", &mut b);
        let report = b
            .record(&path)
            .record_meta("chain", 0)
            .build()
            .run()
            .expect("recorded run completes");
        let rec = Arc::new(Recording::load(&path).expect("loads"));
        match replay_recording(&rec, &ReplayOptions::default()).expect("configures") {
            ReplayOutcome::Verified { schedule, retired, .. } => {
                assert_eq!(schedule, report.telemetry.schedule_hash);
                assert_eq!(retired, report.telemetry.retired_hash);
            }
            other => panic!("expected Verified, got {other:?}"),
        }
    }

    #[test]
    fn state_walks_a_session_recording_to_an_index() {
        let dir = unique_temp_dir("replay-cli-state");
        let path = dir.join("nested.gprs");
        record_session("nested", &path);
        let rec = Arc::new(Recording::load(&path).expect("loads"));
        assert!(rec.events.len() > 4, "need a tape worth walking");

        let mid = state_at(&rec, Some(3), &ReplayOptions::default()).expect("mid state");
        assert!(mid.replayed.expect("replay armed") >= 3);
        assert!(mid.poisoned.is_none());

        let end = state_at(&rec, None, &ReplayOptions::default()).expect("final state");
        assert_eq!(end.replayed, Some(rec.events.len() as u64));
        assert_eq!(end.schedule_digest, rec.sched_hash);
        assert_eq!(end.retired_digest, rec.retired_hash);
        assert_eq!(end.live_threads, 0);
    }

    #[test]
    fn state_refuses_pool_recordings_by_name() {
        let dir = unique_temp_dir("replay-cli-refuse");
        let path = dir.join("chain.gprs");
        let mut b = GprsBuilder::new().workers(2);
        register_gprs("chain", &mut b);
        b.record(&path).record_meta("chain", 0).build().run().expect("completes");
        let rec = Arc::new(Recording::load(&path).expect("loads"));
        let err = state_at(&rec, Some(1), &ReplayOptions::default())
            .expect_err("pool recordings have no quiesced mid-run state");
        assert!(err.contains("session-mode"), "unexpected: {err}");
    }

    /// The committed diff golden: a clean `chain` pool recording
    /// (`goldens/chain-clean.gprs`) against the chaos fixture's pinned
    /// recording of the same program under a grant-150 soft fault
    /// (`crates/chaos/fixtures/trailing-grant.gprs`). The injected run
    /// tracks the clean schedule event-for-event until the squash, so the
    /// first divergence sits at a known index: event 154, where the clean
    /// run's thread 5 exits but the faulted run re-executes squashed work.
    #[test]
    fn committed_diff_golden_pins_first_divergence() {
        use gprs_core::recording::{first_divergence, RecordingDiff, EVT_EXIT};
        let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let clean_path = manifest.join("goldens/chain-clean.gprs");
        let faulted_path = manifest.join("../chaos/fixtures/trailing-grant.gprs");
        let clean = Recording::load(&clean_path).expect("committed clean golden loads");
        let faulted = Recording::load(&faulted_path).expect("committed chaos recording loads");

        match first_divergence(&clean, &faulted) {
            RecordingDiff::Event { position: 154, a: Some(ea), b: Some(eb) } => {
                assert_eq!(ea.thread, 5, "clean side of the divergence");
                assert_eq!(ea.kind, EVT_EXIT, "clean run exits here");
                assert_eq!(eb.thread, 5, "faulted side of the divergence");
                assert_ne!(eb.kind, EVT_EXIT, "faulted run is still re-executing");
            }
            other => panic!("diff golden drifted: {other}"),
        }

        // Freshness: the committed clean golden must match a fresh
        // recording of the same program byte for byte (recordings carry no
        // timestamps, so regenerate-and-compare is exact). A drift here
        // means `gprs-replay record chain crates/replay/goldens/chain-clean.gprs`
        // needs a rerun. The faulted side's freshness is pinned by
        // `gprs-lint --check-artifacts` via its fixture's header.
        let dir = unique_temp_dir("replay-diff-golden");
        let fresh_path = dir.join("chain-clean.gprs");
        record_program("chain", &fresh_path, None, false).expect("fresh recording");
        let fresh = Recording::load(&fresh_path).expect("fresh recording loads");
        assert_eq!(
            clean.to_text(),
            fresh.to_text(),
            "committed goldens/chain-clean.gprs is stale — regenerate with \
             `gprs-replay record chain crates/replay/goldens/chain-clean.gprs`"
        );

        // And the committed golden still replays clean through the engine.
        match replay_recording(&Arc::new(clean), &ReplayOptions::default())
            .expect("configures")
        {
            ReplayOutcome::Verified { schedule, retired, .. } => {
                assert_eq!(schedule, fresh.sched_hash);
                assert_eq!(retired, fresh.retired_hash);
            }
            other => panic!("expected Verified, got {other:?}"),
        }
    }

    #[test]
    fn unknown_workload_is_a_config_error_not_a_divergence() {
        let dir = unique_temp_dir("replay-cli-unknown");
        let path = dir.join("chain.gprs");
        let mut b = GprsBuilder::new().workers(2);
        register_gprs("chain", &mut b);
        b.record(&path).record_meta("chain", 0).build().run().expect("completes");
        let mut rec = Recording::load(&path).expect("loads");
        rec.header.workload = "no-such-program".to_string();
        let err = replay_recording(&Arc::new(rec), &ReplayOptions::default())
            .expect_err("unknown program cannot configure");
        assert!(err.contains("unknown runtime program"), "unexpected: {err}");
    }
}
