//! Static workload analysis for the GPRS reproduction.
//!
//! The paper's hybrid mode falls back to coordinated-CPR scope only for
//! program regions that are not data-race-free, and its balance-aware
//! ordering needs well-chosen thread groups and weights. Both decisions are
//! dynamic in the runtime (the FastTrack-style detector; hand-written
//! groups in `gprs-workloads`); this crate makes them *ahead of time* by
//! analyzing the trace-level [`Workload`] vocabulary before execution:
//!
//! * **Lockset / static happens-before** ([`CellVerdict`]): every shared
//!   cell touched via `Segment::plain` is classified `ProvenDrf`,
//!   `Guarded`, or `PotentialRace` (with the two indicted sites), rolled up
//!   into a [`RecoveryAdvice`] — proven-DRF workloads skip the vector-clock
//!   overhead entirely and stay eligible for selective restart; potentially
//!   racy ones pre-select hybrid CPR.
//! * **Lock-order graph**: hold-and-wait edges from nested critical
//!   sections, with cycle detection (potential-deadlock warnings naming the
//!   lock cycle).
//! * **Channel topology**: producer/consumer graph, statically starved
//!   `Pop`s, unbalanced stages, and a synthesized balance-aware group /
//!   weight assignment ([`SuggestedSchedule`]).
//! * **Interference partitioning** ([`ShardPlan`]): per-segment effect
//!   summaries drive an interference relation over threads whose transitive
//!   closure yields provably independent *order domains* (channels and
//!   barriers stay explicit cross-domain edges) — the static contract a
//!   sharded order enforcer consumes.
//! * **Restartability verification** ([`RestartSummary`]): every segment is
//!   classified read-only / undo-covered / externally-effectful, with
//!   deny-lints (`uncovered-write`, `effect-escape`) for effects recovery
//!   cannot contain, plus the two static elision proofs the engines consume
//!   (redundant checkpoints, dead write-only cells).
//!
//! The report is deterministic — same workload, bit-identical
//! [`AnalysisReport`] — and serializes through `gprs-telemetry`'s serde-free
//! JSON writer.
//!
//! # Example
//!
//! ```
//! use gprs_analyze::{analyze, CellVerdict, RecoveryAdvice};
//! use gprs_core::ids::{AtomicId, GroupId, ThreadId};
//! use gprs_core::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};
//!
//! // Two threads update the same cell with no common guard: a race.
//! let seg = Segment::new(100, SimOp::End).with_plain(AtomicId::new(0), PlainKind::Update);
//! let w = Workload::new("demo", (0..2).map(|i| ThreadSpec::new(
//!     ThreadId::new(i), GroupId::new(0), 1, vec![seg],
//! )).collect());
//! let report = analyze(&w);
//! assert_eq!(report.advice, RecoveryAdvice::HybridCpr);
//! assert_eq!(report.cells[0].verdict, CellVerdict::PotentialRace);
//! assert!(!report.race_free());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channels;
mod effects;
mod lockorder;
mod lockset;
pub mod report;
mod restart;
mod shard;
mod validate;

pub use channels::MAX_WEIGHT;
pub use effects::{
    checkpoint_elidable, dead_cells, summarize, ChanDir, EffectSummary, SegmentClass,
};
pub use report::{
    AnalysisReport, CellReport, CellVerdict, Diagnostic, RecoveryAdvice, Severity, Site,
    StageAdvice, SuggestedSchedule,
};
pub use restart::RestartSummary;
pub use shard::{shard_plan, CrossEdge, EdgeKind, ShardDomain, ShardPlan};

use gprs_core::workload::Workload;

/// Runs all analysis passes over `w` and returns the severity-ranked
/// report. Pure and deterministic: repeated calls on the same workload
/// produce bit-identical reports.
pub fn analyze(w: &Workload) -> AnalysisReport {
    let mut r = AnalysisReport::new(&w.name, w.threads.len());
    validate::run(w, &mut r);
    lockset::run(w, &mut r);
    lockorder::run(w, &mut r);
    channels::run(w, &mut r);
    restart::run(w, &mut r);
    shard::run(w, &mut r);
    // Severity-ranked: errors first; insertion order (stable sort) breaks
    // ties deterministically.
    r.diagnostics
        .sort_by_key(|d| std::cmp::Reverse(d.severity));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::ids::{AtomicId, BarrierId, ChannelId, GroupId, LockId, ThreadId};
    use gprs_core::workload::{PlainKind, Segment, SimOp, ThreadSpec, Workload};

    fn tid(n: u32) -> ThreadId {
        ThreadId::new(n)
    }
    fn two_threads(segs: [Vec<Segment>; 2]) -> Workload {
        let [a, b] = segs;
        Workload::new(
            "t",
            vec![
                ThreadSpec::new(tid(0), GroupId::new(0), 1, a),
                ThreadSpec::new(tid(1), GroupId::new(0), 1, b),
            ],
        )
    }

    #[test]
    fn unguarded_updates_race() {
        let cell = AtomicId::new(7);
        let seg = Segment::new(10, SimOp::End).with_plain(cell, PlainKind::Update);
        let r = analyze(&two_threads([vec![seg], vec![seg]]));
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.cells[0].verdict, CellVerdict::PotentialRace);
        assert_eq!(
            r.cells[0].indicted,
            Some((Site::new(tid(0), 0), Site::new(tid(1), 0)))
        );
        assert_eq!(r.advice, RecoveryAdvice::HybridCpr);
        assert_eq!(r.errors(), 1);
    }

    #[test]
    fn common_lock_guards() {
        let cell = AtomicId::new(7);
        let l = LockId::new(0);
        let segs = vec![
            Segment::new(10, SimOp::Lock { lock: l, cs_work: 5 }),
            Segment::new(10, SimOp::End).with_plain(cell, PlainKind::Update),
        ];
        let r = analyze(&two_threads([segs.clone(), segs]));
        assert_eq!(r.cells[0].verdict, CellVerdict::Guarded);
        assert_eq!(r.advice, RecoveryAdvice::Selective);
        assert!(r.race_free());
    }

    #[test]
    fn nested_lock_guards_too() {
        let cell = AtomicId::new(7);
        let m = LockId::new(3);
        let seg = Segment::new(10, SimOp::End)
            .with_plain(cell, PlainKind::Update)
            .with_nested(m);
        let r = analyze(&two_threads([vec![seg], vec![seg]]));
        assert_eq!(r.cells[0].verdict, CellVerdict::Guarded);
    }

    #[test]
    fn reads_and_single_thread_are_proven_drf() {
        let cell = AtomicId::new(7);
        let read = Segment::new(10, SimOp::End).with_plain(cell, PlainKind::Read);
        let r = analyze(&two_threads([vec![read], vec![read]]));
        assert_eq!(r.cells[0].verdict, CellVerdict::ProvenDrf);
        let wr = Segment::new(
            10,
            SimOp::Atomic {
                atomic: AtomicId::new(1),
            },
        )
        .with_plain(cell, PlainKind::Write);
        let one = Workload::new(
            "t",
            vec![ThreadSpec::new(tid(0), GroupId::new(0), 1, vec![wr, wr])],
        );
        assert_eq!(analyze(&one).cells[0].verdict, CellVerdict::ProvenDrf);
    }

    #[test]
    fn barrier_phases_order_accesses() {
        let cell = AtomicId::new(7);
        let b = BarrierId::new(0);
        let bar = Segment::new(1, SimOp::Barrier { barrier: b });
        // T0 writes before the barrier, T1 after it: separated.
        let w = two_threads([
            vec![
                Segment::new(10, SimOp::Barrier { barrier: b })
                    .with_plain(cell, PlainKind::Write),
                bar,
            ],
            vec![
                bar,
                bar,
                Segment::new(10, SimOp::End).with_plain(cell, PlainKind::Write),
            ],
        ]);
        let r = analyze(&w);
        assert_eq!(r.cells[0].verdict, CellVerdict::Guarded, "{r}");
        // Same phase on both sides: not separated.
        let racy = two_threads([
            vec![Segment::new(10, SimOp::Barrier { barrier: b })
                .with_plain(cell, PlainKind::Write)],
            vec![Segment::new(10, SimOp::Barrier { barrier: b })
                .with_plain(cell, PlainKind::Write)],
        ]);
        assert_eq!(analyze(&racy).cells[0].verdict, CellVerdict::PotentialRace);
    }

    // Regression tests pinning the static/dynamic ordering boundary for
    // channels: the dynamic detector carries push→pop provenance (its
    // `ChanPop` open edge), and before the SPSC provenance rule the static
    // pass missed it — a hand-off that the runtime proves ordered was
    // reported as a potential race.
    #[test]
    fn spsc_handoff_orders_producer_before_consumer() {
        let cell = AtomicId::new(7);
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![Segment::new(10, SimOp::Push { chan: c }).with_plain(cell, PlainKind::Write)],
            vec![
                Segment::new(1, SimOp::Pop { chan: c }),
                Segment::new(10, SimOp::End).with_plain(cell, PlainKind::Update),
            ],
        ]);
        let r = analyze(&w);
        assert_eq!(r.cells[0].verdict, CellVerdict::Guarded, "{r}");
        assert!(r.race_free());
    }

    #[test]
    fn access_in_the_pop_segment_itself_is_not_ordered() {
        // The consumer's access runs in the pop segment's *body*, i.e.
        // before the pop grant — no provenance has arrived yet.
        let cell = AtomicId::new(7);
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![Segment::new(10, SimOp::Push { chan: c }).with_plain(cell, PlainKind::Write)],
            vec![Segment::new(1, SimOp::Pop { chan: c }).with_plain(cell, PlainKind::Update)],
        ]);
        assert_eq!(analyze(&w).cells[0].verdict, CellVerdict::PotentialRace);
    }

    #[test]
    fn channel_carries_no_backpressure_edge() {
        // Consumer writes before its pop; producer reads after its push —
        // the FIFO orders nothing in that direction.
        let cell = AtomicId::new(7);
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![
                Segment::new(10, SimOp::Push { chan: c }),
                Segment::new(10, SimOp::End).with_plain(cell, PlainKind::Update),
            ],
            vec![
                Segment::new(10, SimOp::Pop { chan: c }).with_plain(cell, PlainKind::Write),
            ],
        ]);
        assert_eq!(analyze(&w).cells[0].verdict, CellVerdict::PotentialRace);
    }

    #[test]
    fn multi_producer_channel_gives_no_ordering() {
        let cell = AtomicId::new(7);
        let c = ChannelId::new(0);
        let w = Workload::new(
            "t",
            vec![
                ThreadSpec::new(tid(0), GroupId::new(0), 1, vec![
                    Segment::new(1, SimOp::Push { chan: c }).with_plain(cell, PlainKind::Write),
                ]),
                ThreadSpec::new(tid(1), GroupId::new(0), 1, vec![
                    Segment::new(1, SimOp::Push { chan: c }),
                ]),
                ThreadSpec::new(tid(2), GroupId::new(0), 1, vec![
                    Segment::new(1, SimOp::Pop { chan: c }),
                    Segment::new(1, SimOp::Pop { chan: c }),
                    Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Update),
                ]),
            ],
        );
        assert_eq!(analyze(&w).cells[0].verdict, CellVerdict::PotentialRace);
    }

    #[test]
    fn later_handoffs_order_later_producer_accesses() {
        // The second push/pop pair carries provenance for a producer access
        // between the pushes; a consumer access between the pops is only
        // covered by the first pair.
        let cell = AtomicId::new(7);
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![
                Segment::new(1, SimOp::Push { chan: c }),
                Segment::new(1, SimOp::Push { chan: c }).with_plain(cell, PlainKind::Write),
            ],
            vec![
                Segment::new(1, SimOp::Pop { chan: c }),
                Segment::new(1, SimOp::Pop { chan: c }),
                Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Update),
            ],
        ]);
        assert_eq!(analyze(&w).cells[0].verdict, CellVerdict::Guarded);
        // Same producer access, but the consumer touches the cell after
        // only the *first* pop: the write sits at push 2, provenance only
        // reached push 1 — unordered.
        let early = two_threads([
            vec![
                Segment::new(1, SimOp::Push { chan: c }),
                Segment::new(1, SimOp::Push { chan: c }).with_plain(cell, PlainKind::Write),
            ],
            vec![
                Segment::new(1, SimOp::Pop { chan: c }),
                Segment::new(1, SimOp::Pop { chan: c }).with_plain(cell, PlainKind::Update),
            ],
        ]);
        assert_eq!(analyze(&early).cells[0].verdict, CellVerdict::PotentialRace);
    }

    #[test]
    fn lock_cycle_detected() {
        let (a, b) = (LockId::new(0), LockId::new(1));
        let w = two_threads([
            vec![
                Segment::new(1, SimOp::Lock { lock: a, cs_work: 5 }),
                Segment::new(1, SimOp::End).with_nested(b),
            ],
            vec![
                Segment::new(1, SimOp::Lock { lock: b, cs_work: 5 }),
                Segment::new(1, SimOp::End).with_nested(a),
            ],
        ]);
        let r = analyze(&w);
        assert_eq!(r.lock_order_edges, vec![(a, b), (b, a)]);
        assert_eq!(r.lock_cycles, vec![vec![a, b]]);
        assert_eq!(r.warnings(), 1);
        assert!(r.race_free(), "a deadlock hazard is not a data race");
    }

    #[test]
    fn consistent_nesting_has_no_cycle() {
        let (a, b) = (LockId::new(0), LockId::new(1));
        let segs = vec![
            Segment::new(1, SimOp::Lock { lock: a, cs_work: 5 }),
            Segment::new(1, SimOp::End).with_nested(b),
        ];
        let r = analyze(&two_threads([segs.clone(), segs]));
        assert_eq!(r.lock_order_edges, vec![(a, b)]);
        assert!(r.lock_cycles.is_empty());
    }

    #[test]
    fn starved_pop_is_an_error() {
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![Segment::new(1, SimOp::Pop { chan: c })],
            vec![Segment::new(1, SimOp::End)],
        ]);
        let r = analyze(&w);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].code, "starved-pop");
        assert!(!r.race_free(), "a starved workload cannot complete");
    }

    #[test]
    fn pipeline_gets_multi_group_suggestion() {
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![Segment::new(1, SimOp::Push { chan: c }); 4],
            vec![Segment::new(100, SimOp::Pop { chan: c }); 4],
        ]);
        let r = analyze(&w);
        let s = r.suggestion.expect("producer/consumer implies stages");
        assert!(s.is_multi_group());
        assert_eq!(s.stages[0].threads, vec![tid(0)]);
        assert_eq!(s.stages[1].threads, vec![tid(1)]);
        let applied = s.apply(&w);
        assert_ne!(
            applied.threads[0].group, applied.threads[1].group,
            "stages become distinct groups"
        );
    }

    #[test]
    fn structural_violations_are_diagnosed() {
        let w = Workload::new(
            "bad",
            vec![ThreadSpec {
                thread: tid(0),
                group: GroupId::new(0),
                weight: 0,
                segments: vec![
                    Segment::new(1, SimOp::End),
                    Segment::new(1, SimOp::Atomic { atomic: AtomicId::new(0) }),
                ],
            }],
        );
        let r = analyze(&w);
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"zero-weight"), "{codes:?}");
        assert!(codes.contains(&"structure"), "{codes:?}");
        assert!(!r.race_free());
    }

    #[test]
    fn uncovered_write_is_denied() {
        let seg = Segment::new(1, SimOp::End)
            .with_plain(AtomicId::new(0), PlainKind::Write)
            .with_ckpt_bytes(0)
            .with_nested(LockId::new(0));
        let r = analyze(&two_threads([vec![seg], vec![seg]]));
        // The shared nested lock keeps the cell race-free, but the missing
        // checkpoint coverage is a restartability error in its own right.
        assert_eq!(r.cells[0].verdict, CellVerdict::Guarded);
        assert_eq!(r.errors(), 2);
        assert!(r.diagnostics.iter().all(|d| d.code == "uncovered-write"
            || d.severity != Severity::Error));
        assert!(!r.race_free(), "uncovered writes veto the elision proofs");
        assert_eq!(r.restart.external, 2);
    }

    #[test]
    fn external_segment_is_denied() {
        let seg = Segment::new(1, SimOp::End).with_external();
        let r = analyze(&two_threads([vec![seg], vec![Segment::new(1, SimOp::End)]]));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].code, "effect-escape");
        assert!(!r.race_free());
    }

    #[test]
    fn report_carries_shard_plan_and_restartability() {
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![Segment::new(1, SimOp::Push { chan: c }); 2],
            vec![Segment::new(0, SimOp::Pop { chan: c }); 2],
        ]);
        let r = analyze(&w);
        assert_eq!(r.shard_plan.domains.len(), 2, "{r}");
        assert_eq!(r.shard_plan.edges.len(), 1);
        // The pop bodies and the auto-appended End segments do no work.
        assert!(r.restart.read_only >= 4, "{:?}", r.restart);
        assert!(r.to_json().contains("\"shard_plan\""));
        assert!(r.to_json().contains("\"restartability\""));
    }

    #[test]
    fn report_is_bit_identical_and_serializable() {
        let cell = AtomicId::new(0);
        let c = ChannelId::new(0);
        let w = two_threads([
            vec![
                Segment::new(1, SimOp::Push { chan: c }).with_plain(cell, PlainKind::Update),
            ],
            vec![
                Segment::new(1, SimOp::Pop { chan: c }).with_plain(cell, PlainKind::Update),
            ],
        ]);
        let (a, b) = (analyze(&w), analyze(&w));
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"advice\":\"hybrid-cpr\""));
        assert!(!format!("{a}").is_empty());
    }
}
