//! Structural-invariant validation of the workload front-end.
//!
//! The engines assume well-formed [`ThreadSpec`]s (terminating `End`, no
//! trailing segments, registrable weights); violating them downstream turns
//! into panics or enforcer errors deep inside a run. Surfacing them here as
//! diagnostics lets `gprs-lint` and `analyze(true)` reject a workload before
//! any cycles are burned.

use crate::report::{AnalysisReport, Severity, Site};
use gprs_core::workload::{SimOp, ThreadSpec, Workload};

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    if w.threads.is_empty() {
        r.push(
            Severity::Warning,
            "empty-workload",
            "workload has no threads".to_string(),
            Vec::new(),
        );
        return;
    }
    for t in &w.threads {
        check_thread(t, r);
    }
}

fn check_thread(t: &ThreadSpec, r: &mut AnalysisReport) {
    let tid = t.thread;
    if t.weight == 0 {
        r.push(
            Severity::Error,
            "zero-weight",
            format!("{tid}: weight 0 is rejected by the balance-aware enforcer"),
            Vec::new(),
        );
    }
    let Some(last) = t.segments.last() else {
        r.push(
            Severity::Error,
            "structure",
            format!("{tid}: thread has no segments (missing terminating End)"),
            Vec::new(),
        );
        return;
    };
    if last.op != SimOp::End {
        r.push(
            Severity::Error,
            "structure",
            format!("{tid}: final segment op is `{}`, not End", last.op),
            vec![Site::new(tid, t.segments.len() - 1)],
        );
    }
    for (i, s) in t.segments.iter().enumerate() {
        if s.op == SimOp::End && i + 1 < t.segments.len() {
            r.push(
                Severity::Error,
                "structure",
                format!("{tid}: segment {i} ends the thread but {} segments follow", t.segments.len() - 1 - i),
                vec![Site::new(tid, i)],
            );
            break; // one report per thread is enough
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use gprs_core::ids::{GroupId, ThreadId};
    use gprs_core::workload::Segment;

    fn fresh(w: &Workload) -> AnalysisReport {
        let mut r = AnalysisReport::new(&w.name, w.threads.len());
        run(w, &mut r);
        r
    }

    fn spec(segments: Vec<Segment>) -> ThreadSpec {
        ThreadSpec {
            thread: ThreadId::new(0),
            group: GroupId::new(0),
            weight: 1,
            segments,
        }
    }

    #[test]
    fn empty_workload_warns_and_stops() {
        let w = Workload::new("empty", vec![]);
        let r = fresh(&w);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "empty-workload");
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        // The full pipeline also survives a threadless workload.
        let full = analyze(&w);
        assert_eq!(full.errors(), 0);
        assert!(full.shard_plan.domains.is_empty());
        assert_eq!(full.restart, crate::RestartSummary::default());
    }

    #[test]
    fn single_thread_trace_is_clean() {
        let w = Workload::new(
            "solo",
            vec![spec(vec![
                Segment::new(10, SimOp::Atomic {
                    atomic: gprs_core::ids::AtomicId::new(0),
                }),
                Segment::new(0, SimOp::End),
            ])],
        );
        let r = fresh(&w);
        assert!(r.diagnostics.is_empty(), "{r}");
        let full = analyze(&w);
        assert!(full.race_free());
        assert_eq!(full.shard_plan.domains.len(), 1);
    }

    #[test]
    fn zero_effect_segments_are_structurally_fine() {
        // A thread of pure no-ops: zero work, zero plain accesses, default
        // checkpoint bytes. Nothing to lint, everything read-only.
        let w = Workload::new(
            "noop",
            vec![spec(vec![
                Segment::new(0, SimOp::End).with_ckpt_bytes(0),
            ])],
        );
        let r = fresh(&w);
        assert!(r.diagnostics.is_empty(), "{r}");
        let full = analyze(&w);
        assert_eq!(full.restart.read_only, 1);
        assert_eq!(full.restart.elidable_checkpoints, 1);
    }

    #[test]
    fn thread_with_no_segments_is_an_error() {
        let w = Workload::new("t", vec![spec(vec![])]);
        let r = fresh(&w);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].code, "structure");
        assert!(r.diagnostics[0].message.contains("no segments"));
    }

    #[test]
    fn zero_weight_is_an_error() {
        let mut t = spec(vec![Segment::new(0, SimOp::End)]);
        t.weight = 0;
        let r = fresh(&Workload::new("t", vec![t]));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].code, "zero-weight");
    }

    #[test]
    fn missing_terminal_end_is_an_error() {
        let w = Workload::new(
            "t",
            vec![spec(vec![Segment::new(1, SimOp::Atomic {
                atomic: gprs_core::ids::AtomicId::new(0),
            })])],
        );
        let r = fresh(&w);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].sites, vec![Site::new(ThreadId::new(0), 0)]);
    }

    #[test]
    fn mid_thread_end_reports_once() {
        let w = Workload::new(
            "t",
            vec![spec(vec![
                Segment::new(1, SimOp::End),
                Segment::new(1, SimOp::End),
                Segment::new(1, SimOp::End),
            ])],
        );
        let r = fresh(&w);
        // One structure report for the first premature End, not one per
        // trailing segment.
        assert_eq!(r.errors(), 1);
        assert!(r.diagnostics[0].message.contains("2 segments follow"));
    }
}

