//! Structural-invariant validation of the workload front-end.
//!
//! The engines assume well-formed [`ThreadSpec`]s (terminating `End`, no
//! trailing segments, registrable weights); violating them downstream turns
//! into panics or enforcer errors deep inside a run. Surfacing them here as
//! diagnostics lets `gprs-lint` and `analyze(true)` reject a workload before
//! any cycles are burned.

use crate::report::{AnalysisReport, Severity, Site};
use gprs_core::workload::{SimOp, ThreadSpec, Workload};

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    if w.threads.is_empty() {
        r.push(
            Severity::Warning,
            "empty-workload",
            "workload has no threads".to_string(),
            Vec::new(),
        );
        return;
    }
    for t in &w.threads {
        check_thread(t, r);
    }
}

fn check_thread(t: &ThreadSpec, r: &mut AnalysisReport) {
    let tid = t.thread;
    if t.weight == 0 {
        r.push(
            Severity::Error,
            "zero-weight",
            format!("{tid}: weight 0 is rejected by the balance-aware enforcer"),
            Vec::new(),
        );
    }
    let Some(last) = t.segments.last() else {
        r.push(
            Severity::Error,
            "structure",
            format!("{tid}: thread has no segments (missing terminating End)"),
            Vec::new(),
        );
        return;
    };
    if last.op != SimOp::End {
        r.push(
            Severity::Error,
            "structure",
            format!("{tid}: final segment op is `{}`, not End", last.op),
            vec![Site::new(tid, t.segments.len() - 1)],
        );
    }
    for (i, s) in t.segments.iter().enumerate() {
        if s.op == SimOp::End && i + 1 < t.segments.len() {
            r.push(
                Severity::Error,
                "structure",
                format!("{tid}: segment {i} ends the thread but {} segments follow", t.segments.len() - 1 - i),
                vec![Site::new(tid, i)],
            );
            break; // one report per thread is enough
        }
    }
}

/// Checkpoint-coverage lint: a segment whose body performs a plain write
/// but records no mod-set bytes cannot be undone by selective restart.
pub(crate) fn ckpt_lints(w: &Workload, r: &mut AnalysisReport) {
    use gprs_core::workload::PlainKind;
    for t in &w.threads {
        for (i, s) in t.segments.iter().enumerate() {
            if let Some((cell, kind)) = s.plain {
                if matches!(kind, PlainKind::Write | PlainKind::Update) && s.ckpt_bytes == 0 {
                    r.push(
                        Severity::Warning,
                        "uncheckpointed-write",
                        format!(
                            "{}/seg{i} plain-writes {cell} with ckpt_bytes == 0: the store cannot be rolled back",
                            t.thread
                        ),
                        vec![Site::new(t.thread, i)],
                    );
                }
            }
        }
    }
}
