//! Restartability verification: can every segment be squashed precisely?
//!
//! The paper's precision guarantee holds only if every effect a squashed
//! sub-thread performed is either undone (WAL control records, checkpointed
//! mod sets) or harmlessly re-executed. This pass classifies every segment
//! on the [`SegmentClass`] lattice and deny-lints the two ways a workload
//! can break the guarantee:
//!
//! * `uncovered-write` — a plain write with `ckpt_bytes == 0`: the store's
//!   old value is recorded nowhere, so a squash cannot restore it.
//! * `effect-escape` — an `external` segment: its effect is visible outside
//!   the process before retirement, so no recovery scope can contain it.
//!
//! Both are errors (not warnings): they falsify `race_free()` and therefore
//! also veto every elision the proofs would otherwise license.
//!
//! The summary additionally carries the two static elision proofs the
//! engines consume: boundaries whose checkpoint is provably redundant
//! ([`checkpoint_elidable`]) and write-only *dead cells* whose WAL undo
//! records can never matter ([`dead_cells`]).

use crate::effects::{checkpoint_elidable, dead_cells, SegmentClass};
use crate::report::{AnalysisReport, Severity, Site};
use gprs_core::ids::AtomicId;
use gprs_core::workload::{PlainKind, Workload};
use gprs_telemetry::json::JsonWriter;
use std::fmt;

/// Rolled-up restartability verdicts for one workload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RestartSummary {
    /// Segments classified [`SegmentClass::ReadOnly`].
    pub read_only: u64,
    /// Segments classified [`SegmentClass::UndoCovered`].
    pub undo_covered: u64,
    /// Segments classified [`SegmentClass::External`].
    pub external: u64,
    /// Sub-thread boundaries whose checkpoint is provably redundant.
    pub elidable_checkpoints: u64,
    /// Write-only cells whose WAL undo records are provably dead.
    pub dead_cells: Vec<AtomicId>,
}

impl RestartSummary {
    /// True when every segment can be squashed precisely.
    pub fn all_covered(&self) -> bool {
        self.external == 0
    }

    /// Serializes the summary into `w` as one JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object()
            .field_u64("read_only", self.read_only)
            .field_u64("undo_covered", self.undo_covered)
            .field_u64("external", self.external)
            .field_u64("elidable_checkpoints", self.elidable_checkpoints);
        w.key("dead_cells").begin_array();
        for c in &self.dead_cells {
            w.string(&c.to_string());
        }
        w.end_array().end_object();
    }
}

impl fmt::Display for RestartSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restartability: {} read-only, {} undo-covered, {} external; \
             {} elidable checkpoint(s), {} dead cell(s)",
            self.read_only,
            self.undo_covered,
            self.external,
            self.elidable_checkpoints,
            self.dead_cells.len()
        )
    }
}

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    let mut sum = RestartSummary::default();
    for t in &w.threads {
        for (i, s) in t.segments.iter().enumerate() {
            match SegmentClass::of(s) {
                SegmentClass::ReadOnly => sum.read_only += 1,
                SegmentClass::UndoCovered => sum.undo_covered += 1,
                SegmentClass::External => sum.external += 1,
            }
            let opening = (i > 0).then(|| t.segments[i - 1].op);
            if checkpoint_elidable(opening, s) {
                sum.elidable_checkpoints += 1;
            }
            if let Some((cell, kind)) = s.plain {
                if matches!(kind, PlainKind::Write | PlainKind::Update) && s.ckpt_bytes == 0 {
                    r.push(
                        Severity::Error,
                        "uncovered-write",
                        format!(
                            "{}/seg{i} plain-writes {cell} with ckpt_bytes == 0: \
                             neither checkpoint nor WAL can restore it after a squash",
                            t.thread
                        ),
                        vec![Site::new(t.thread, i)],
                    );
                }
            }
            if s.external {
                r.push(
                    Severity::Error,
                    "effect-escape",
                    format!(
                        "{}/seg{i} performs an external effect that escapes retirement \
                         ordering: selective restart cannot squash it precisely",
                        t.thread
                    ),
                    vec![Site::new(t.thread, i)],
                );
            }
        }
    }
    sum.dead_cells = dead_cells(w).into_iter().collect();
    r.restart = sum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use gprs_core::ids::{ChannelId, GroupId, ThreadId};
    use gprs_core::workload::{Segment, SimOp, ThreadSpec};

    fn one_thread(segs: Vec<Segment>) -> Workload {
        Workload::new("t", vec![ThreadSpec::new(
            ThreadId::new(0),
            GroupId::new(0),
            1,
            segs,
        )])
    }

    #[test]
    fn classes_are_counted_and_totals_add_up() {
        let w = one_thread(vec![
            Segment::new(0, SimOp::Pop { chan: ChannelId::new(0) }),
            Segment::new(10, SimOp::Push { chan: ChannelId::new(0) }),
        ]);
        // Channel balance is not this pass's business; only classes are.
        let r = analyze(&w);
        let s = &r.restart;
        // Three segments including the auto-appended End (zero work: read-only).
        assert_eq!(s.read_only + s.undo_covered + s.external, 3);
        assert_eq!(s.read_only, 2);
        assert_eq!(s.undo_covered, 1);
        assert!(s.all_covered());
    }

    #[test]
    fn uncovered_write_is_an_error() {
        let w = one_thread(vec![Segment::new(1, SimOp::End)
            .with_plain(gprs_core::ids::AtomicId::new(0), PlainKind::Write)
            .with_ckpt_bytes(0)]);
        let r = analyze(&w);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].code, "uncovered-write");
        assert!(!r.race_free(), "an uncoverable write vetoes elision proofs");
        assert_eq!(r.restart.external, 1);
    }

    #[test]
    fn external_effect_is_an_error() {
        let w = one_thread(vec![Segment::new(1, SimOp::End).with_external()]);
        let r = analyze(&w);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diagnostics[0].code, "effect-escape");
        assert!(!r.restart.all_covered());
    }

    #[test]
    fn summary_serializes() {
        let w = one_thread(vec![Segment::new(0, SimOp::End)
            .with_plain(gprs_core::ids::AtomicId::new(3), PlainKind::Write)]);
        let r = analyze(&w);
        assert_eq!(r.restart.dead_cells, vec![gprs_core::ids::AtomicId::new(3)]);
        let mut jw = JsonWriter::new();
        r.restart.write_json(&mut jw);
        let json = jw.finish();
        assert!(json.contains("\"dead_cells\""), "{json}");
    }
}
