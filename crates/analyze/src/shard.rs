//! Interference partitioning: provably independent order domains.
//!
//! Two threads *interfere* when they share mutable state whose access order
//! the global retirement order must arbitrate: a common lock (opening or
//! nested), a common synchronizing atomic, or a plain cell at least one of
//! them writes. The transitive closure of that relation partitions the
//! workload into **order domains** — thread sets that could retire through
//! independent OrderGates without any cross-gate arbitration.
//!
//! Channels and barriers deliberately do *not* merge domains: a channel is a
//! directed FIFO hand-off and a barrier is a rendezvous, both of which a
//! sharded enforcer can implement as explicit cross-shard edges rather than
//! by collapsing the shards into one. The [`ShardPlan`] therefore carries
//! those residual couplings as [`CrossEdge`]s — the static contract the
//! ROADMAP-3 sharded OrderGate consumes: retire freely within a domain,
//! synchronize only along the listed edges.

use crate::report::AnalysisReport;
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, LockId, ThreadId};
use gprs_core::workload::{PlainKind, SimOp, Workload};
use gprs_telemetry::json::JsonWriter;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One provably independent set of threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDomain {
    /// Dense domain index (ordered by smallest member thread id).
    pub id: usize,
    /// Member threads, in id order.
    pub threads: Vec<ThreadId>,
    /// Aggregate computation cycles across the domain — the shard's load
    /// weight.
    pub weight: u64,
    /// Aggregate synchronization operations (token demand) in the domain.
    pub sync_ops: u64,
}

/// What couples two (or more) domains that the partition kept apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A directed FIFO hand-off.
    Channel(ChannelId),
    /// An undirected rendezvous.
    Barrier(BarrierId),
}

/// A residual cross-domain coupling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossEdge {
    /// The resource that couples the domains.
    pub kind: EdgeKind,
    /// For [`EdgeKind::Channel`]: `[from, to]` (producer domain to consumer
    /// domain). For [`EdgeKind::Barrier`]: every participating domain, in
    /// order.
    pub domains: Vec<usize>,
}

/// The full partition: the static contract for a sharded order enforcer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardPlan {
    /// The independent domains, ordered by smallest member thread id.
    pub domains: Vec<ShardDomain>,
    /// Residual couplings between domains, in deterministic resource order.
    pub edges: Vec<CrossEdge>,
}

impl ShardPlan {
    /// True when the partition actually splits the workload.
    pub fn is_sharded(&self) -> bool {
        self.domains.len() > 1
    }

    /// The domain a thread belongs to, if the plan covers it.
    pub fn domain_of(&self, t: ThreadId) -> Option<usize> {
        self.domains
            .iter()
            .find(|d| d.threads.contains(&t))
            .map(|d| d.id)
    }

    /// Serializes the plan into `w` as one JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("domains").begin_array();
        for d in &self.domains {
            w.begin_object()
                .field_u64("id", d.id as u64)
                .field_u64("weight", d.weight)
                .field_u64("sync_ops", d.sync_ops);
            w.key("threads").begin_array();
            for t in &d.threads {
                w.string(&t.to_string());
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.key("edges").begin_array();
        for e in &self.edges {
            w.begin_object();
            match e.kind {
                EdgeKind::Channel(c) => {
                    w.field_str("kind", "channel").field_str("resource", &c.to_string());
                }
                EdgeKind::Barrier(b) => {
                    w.field_str("kind", "barrier").field_str("resource", &b.to_string());
                }
            }
            w.key("domains").begin_array();
            for d in &e.domains {
                w.begin_object().field_u64("id", *d as u64).end_object();
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// The plan as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Parses a plan from the JSON document [`Self::to_json`] emits (the
    /// committed `artifacts/shardplan.<program>.json` contract).
    ///
    /// # Errors
    /// A description of the first malformed construct. Parsing is strict:
    /// unknown edge kinds, bad id prefixes and structural deviations are
    /// all errors — a plan that cannot be read exactly must not be trusted
    /// to drive a sharded enforcer.
    pub fn from_json(text: &str) -> std::result::Result<ShardPlan, String> {
        let v = json::parse(text)?;
        let obj = v.as_object("plan")?;
        let mut plan = ShardPlan::default();
        for d in json::get(obj, "domains")?.as_array("domains")? {
            let d = d.as_object("domain")?;
            let mut threads = Vec::new();
            for t in json::get(d, "threads")?.as_array("threads")? {
                threads.push(parse_id(t.as_str("thread")?, "TH").map(ThreadId::new)?);
            }
            plan.domains.push(ShardDomain {
                id: json::get(d, "id")?.as_u64("id")? as usize,
                threads,
                weight: json::get(d, "weight")?.as_u64("weight")?,
                sync_ops: json::get(d, "sync_ops")?.as_u64("sync_ops")?,
            });
        }
        for e in json::get(obj, "edges")?.as_array("edges")? {
            let e = e.as_object("edge")?;
            let resource = json::get(e, "resource")?.as_str("resource")?;
            let kind = match json::get(e, "kind")?.as_str("kind")? {
                "channel" => EdgeKind::Channel(ChannelId::new(parse_id(resource, "CH")?)),
                "barrier" => EdgeKind::Barrier(BarrierId::new(parse_id(resource, "B")?)),
                other => return Err(format!("unknown edge kind {other:?}")),
            };
            let mut domains = Vec::new();
            for d in json::get(e, "domains")?.as_array("edge domains")? {
                domains
                    .push(json::get(d.as_object("edge domain")?, "id")?.as_u64("id")? as usize);
            }
            plan.edges.push(CrossEdge { kind, domains });
        }
        Ok(plan)
    }

    /// Validates this plan against the live workload topology: the thread
    /// partition, weights, and cross-domain edges must all match what
    /// [`shard_plan`] derives from `w` today.
    ///
    /// # Errors
    /// A named `stale shard plan` diagnostic describing the first
    /// divergence (wrong thread set, wrong partition, missing or spurious
    /// edge). A stale plan must fail loudly — silently falling back to an
    /// unsharded run would hide exactly the drift this check exists to
    /// catch.
    pub fn validate_against(&self, w: &Workload) -> std::result::Result<(), String> {
        let fresh = shard_plan(w);
        let planned: BTreeSet<ThreadId> =
            self.domains.iter().flat_map(|d| d.threads.iter().copied()).collect();
        let live: BTreeSet<ThreadId> = w.threads.iter().map(|t| t.thread).collect();
        if planned != live {
            let missing: Vec<String> =
                live.difference(&planned).map(|t| t.to_string()).collect();
            let spurious: Vec<String> =
                planned.difference(&live).map(|t| t.to_string()).collect();
            return Err(format!(
                "stale shard plan for {:?}: thread set mismatch (workload threads absent \
                 from plan: [{}]; plan threads absent from workload: [{}])",
                w.name,
                missing.join(", "),
                spurious.join(", "),
            ));
        }
        if self.domains != fresh.domains {
            return Err(format!(
                "stale shard plan for {:?}: domain partition differs from the workload's \
                 interference analysis (plan has {} domain(s), analysis derives {})",
                w.name,
                self.domains.len(),
                fresh.domains.len(),
            ));
        }
        for e in &fresh.edges {
            if !self.edges.contains(e) {
                return Err(format!(
                    "stale shard plan for {:?}: missing cross-domain edge {} over domains \
                     {:?}",
                    w.name,
                    match e.kind {
                        EdgeKind::Channel(c) => c.to_string(),
                        EdgeKind::Barrier(b) => b.to_string(),
                    },
                    e.domains,
                ));
            }
        }
        for e in &self.edges {
            if !fresh.edges.contains(e) {
                return Err(format!(
                    "stale shard plan for {:?}: spurious cross-domain edge {} over domains \
                     {:?}",
                    w.name,
                    match e.kind {
                        EdgeKind::Channel(c) => c.to_string(),
                        EdgeKind::Barrier(b) => b.to_string(),
                    },
                    e.domains,
                ));
            }
        }
        Ok(())
    }

    /// Refines the proven partition into an *executable* one: domains that
    /// co-produce or co-consume the same channel are merged, so every
    /// residual channel edge has exactly one producer domain and one
    /// consumer domain.
    ///
    /// The interference partition deliberately keeps channel ends apart
    /// (they are provably independent for *retirement*), but a sharded
    /// enforcer forwarding items across domains needs a deterministic
    /// per-channel order on both ends: multiple producer (or consumer)
    /// domains racing one queue would make the hand-off order
    /// timing-dependent. Merging those ends trades a little parallelism
    /// for strict determinism; domains never touching a shared channel end
    /// are left untouched.
    pub fn coalesce_for_execution(&self, w: &Workload) -> ShardPlan {
        let n = self.domains.len();
        let mut dom_of: BTreeMap<ThreadId, usize> = BTreeMap::new();
        for d in &self.domains {
            for &t in &d.threads {
                dom_of.insert(t, d.id);
            }
        }
        let mut dsu = Dsu::new(n);
        let mut chan_ends: BTreeMap<ChannelId, (BTreeSet<usize>, BTreeSet<usize>)> =
            BTreeMap::new();
        let mut barrier_users: BTreeMap<BarrierId, BTreeSet<ThreadId>> = BTreeMap::new();
        for t in &w.threads {
            let Some(&dom) = dom_of.get(&t.thread) else { continue };
            for s in &t.segments {
                match s.op {
                    SimOp::Push { chan } => {
                        chan_ends.entry(chan).or_default().0.insert(dom);
                    }
                    SimOp::Pop { chan } => {
                        chan_ends.entry(chan).or_default().1.insert(dom);
                    }
                    SimOp::Barrier { barrier } => {
                        barrier_users.entry(barrier).or_default().insert(t.thread);
                    }
                    _ => {}
                }
            }
        }
        for (pushers, poppers) in chan_ends.values() {
            merge_all(&mut dsu, pushers);
            merge_all(&mut dsu, poppers);
        }

        // Rebuild merged domains ordered by smallest member thread id, the
        // same convention `shard_plan` uses.
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for d in 0..n {
            by_root.entry(dsu.find(d)).or_default().push(d);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|members| {
            members
                .iter()
                .filter_map(|&d| self.domains[d].threads.first())
                .min()
                .copied()
        });
        let mut exec_of = vec![0usize; n];
        let mut domains = Vec::with_capacity(groups.len());
        for (id, members) in groups.into_iter().enumerate() {
            let mut threads = Vec::new();
            let mut weight = 0;
            let mut sync_ops = 0;
            for &d in &members {
                threads.extend(self.domains[d].threads.iter().copied());
                weight += self.domains[d].weight;
                sync_ops += self.domains[d].sync_ops;
                exec_of[d] = id;
            }
            threads.sort_unstable();
            domains.push(ShardDomain {
                id,
                threads,
                weight,
                sync_ops,
            });
        }

        let mut edges = Vec::new();
        for (chan, (pushers, poppers)) in chan_ends {
            let from: BTreeSet<usize> = pushers.iter().map(|&d| exec_of[d]).collect();
            let to: BTreeSet<usize> = poppers.iter().map(|&d| exec_of[d]).collect();
            debug_assert!(from.len() <= 1 && to.len() <= 1, "ends merged above");
            if let (Some(&f), Some(&t)) = (from.first(), to.first()) {
                if f != t {
                    edges.push(CrossEdge {
                        kind: EdgeKind::Channel(chan),
                        domains: vec![f, t],
                    });
                }
            }
        }
        for (bar, users) in barrier_users {
            let ds: BTreeSet<usize> = users
                .iter()
                .filter_map(|t| dom_of.get(t).map(|&d| exec_of[d]))
                .collect();
            if ds.len() > 1 {
                edges.push(CrossEdge {
                    kind: EdgeKind::Barrier(bar),
                    domains: ds.into_iter().collect(),
                });
            }
        }
        ShardPlan { domains, edges }
    }
}

/// Parses a prefixed id like `TH3` / `CH0` / `B1`.
fn parse_id<T: std::str::FromStr>(s: &str, prefix: &str) -> std::result::Result<T, String> {
    s.strip_prefix(prefix)
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| format!("bad {prefix} id {s:?}"))
}

/// A minimal strict JSON reader for the shard-plan document. The repo
/// deliberately has no serde dependency; the writer side is the hand-rolled
/// [`JsonWriter`], and this is its matching reader — just enough JSON for
/// the artifacts the toolchain itself emits.
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Object(BTreeMap<String, Value>),
        Array(Vec<Value>),
        String(String),
        Number(u64),
        Bool(bool),
        Null,
    }

    impl Value {
        pub fn as_object(
            &self,
            what: &str,
        ) -> Result<&BTreeMap<String, Value>, String> {
            match self {
                Value::Object(m) => Ok(m),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }
        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Array(v) => Ok(v),
                other => Err(format!("{what}: expected array, got {other:?}")),
            }
        }
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::String(s) => Ok(s),
                other => Err(format!("{what}: expected string, got {other:?}")),
            }
        }
        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }
    }

    pub fn get<'v>(
        obj: &'v BTreeMap<String, Value>,
        key: &str,
    ) -> Result<&'v Value, String> {
        obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&mut self) -> Result<u8, String> {
            self.ws();
            self.b
                .get(self.i)
                .copied()
                .ok_or_else(|| "unexpected end of document".to_string())
        }
        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, got {:?}",
                    c as char, self.i, self.b[self.i] as char
                ))
            }
        }
        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::String(self.string()?)),
                b'0'..=b'9' => self.number(),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                c => Err(format!("unexpected {:?} at byte {}", c as char, self.i)),
            }
        }
        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut m = BTreeMap::new();
            if self.peek()? == b'}' {
                self.i += 1;
                return Ok(Value::Object(m));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                m.insert(key, self.value()?);
                match self.peek()? {
                    b',' => self.i += 1,
                    b'}' => {
                        self.i += 1;
                        return Ok(Value::Object(m));
                    }
                    c => return Err(format!("expected , or }} got {:?}", c as char)),
                }
            }
        }
        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut v = Vec::new();
            if self.peek()? == b']' {
                self.i += 1;
                return Ok(Value::Array(v));
            }
            loop {
                v.push(self.value()?);
                match self.peek()? {
                    b',' => self.i += 1,
                    b']' => {
                        self.i += 1;
                        return Ok(Value::Array(v));
                    }
                    c => return Err(format!("expected , or ] got {:?}", c as char)),
                }
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                let c = *self
                    .b
                    .get(self.i)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.i += 1;
                match c {
                    b'"' => return Ok(s),
                    b'\\' => {
                        let e = *self
                            .b
                            .get(self.i)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.i += 1;
                        s.push(match e {
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            other => {
                                return Err(format!(
                                    "unsupported escape \\{}",
                                    other as char
                                ))
                            }
                        });
                    }
                    other => s.push(other as char),
                }
            }
        }
        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Number)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard plan: {} domain(s), {} cross-domain edge(s)",
            self.domains.len(),
            self.edges.len()
        )?;
        for d in &self.domains {
            write!(
                f,
                "  domain {} (weight {}, {} sync ops):",
                d.id, d.weight, d.sync_ops
            )?;
            for t in &d.threads {
                write!(f, " {t}")?;
            }
            writeln!(f)?;
        }
        for e in &self.edges {
            match e.kind {
                EdgeKind::Channel(c) => {
                    writeln!(f, "  edge {c}: domain {} -> domain {}", e.domains[0], e.domains[1])?;
                }
                EdgeKind::Barrier(b) => {
                    write!(f, "  edge {b}: domains")?;
                    for d in &e.domains {
                        write!(f, " {d}")?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

/// Union-find over dense thread indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins so the representative is the least thread id.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi] = lo;
        }
    }
}

/// Builds the interference partition for `w`.
pub fn shard_plan(w: &Workload) -> ShardPlan {
    let n = w.threads.len();
    let mut dsu = Dsu::new(n);

    // Resource -> user threads, in deterministic id order.
    let mut lock_users: BTreeMap<LockId, BTreeSet<usize>> = BTreeMap::new();
    let mut rmw_users: BTreeMap<AtomicId, BTreeSet<usize>> = BTreeMap::new();
    let mut cell_users: BTreeMap<AtomicId, (BTreeSet<usize>, bool)> = BTreeMap::new();
    let mut chan_ends: BTreeMap<ChannelId, (BTreeSet<usize>, BTreeSet<usize>)> = BTreeMap::new();
    let mut barrier_users: BTreeMap<BarrierId, BTreeSet<usize>> = BTreeMap::new();
    for (ti, t) in w.threads.iter().enumerate() {
        for s in &t.segments {
            match s.op {
                SimOp::Lock { lock, .. } => {
                    lock_users.entry(lock).or_default().insert(ti);
                }
                SimOp::Atomic { atomic } => {
                    rmw_users.entry(atomic).or_default().insert(ti);
                }
                SimOp::Push { chan } => {
                    chan_ends.entry(chan).or_default().0.insert(ti);
                }
                SimOp::Pop { chan } => {
                    chan_ends.entry(chan).or_default().1.insert(ti);
                }
                SimOp::Barrier { barrier } => {
                    barrier_users.entry(barrier).or_default().insert(ti);
                }
                SimOp::End => {}
            }
            if let Some(m) = s.nested {
                lock_users.entry(m).or_default().insert(ti);
            }
            if let Some((cell, kind)) = s.plain {
                let e = cell_users.entry(cell).or_default();
                e.0.insert(ti);
                e.1 |= matches!(kind, PlainKind::Write | PlainKind::Update);
            }
        }
    }

    // Symmetric data sharing merges; read-only cells never conflict.
    for users in lock_users.values().chain(rmw_users.values()) {
        merge_all(&mut dsu, users);
    }
    for (users, written) in cell_users.values() {
        if *written {
            merge_all(&mut dsu, users);
        }
    }

    // Domains in first-thread order; roots are the least member id.
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for ti in 0..n {
        by_root.entry(dsu.find(ti)).or_default().push(ti);
    }
    let mut domain_of = vec![0usize; n];
    let mut domains = Vec::with_capacity(by_root.len());
    for (id, (_, members)) in by_root.into_iter().enumerate() {
        let mut weight = 0;
        let mut sync_ops = 0;
        for &ti in &members {
            let t = &w.threads[ti];
            weight += t.total_work();
            sync_ops += t.segments.iter().filter(|s| s.op != SimOp::End).count() as u64;
            domain_of[ti] = id;
        }
        domains.push(ShardDomain {
            id,
            threads: members.iter().map(|&ti| w.threads[ti].thread).collect(),
            weight,
            sync_ops,
        });
    }

    // Residual couplings: channel edges (producer domain -> consumer
    // domain) and barrier rendezvous spanning more than one domain.
    let mut edges = Vec::new();
    for (chan, (pushers, poppers)) in chan_ends {
        let mut seen = BTreeSet::new();
        for &p in &pushers {
            for &q in &poppers {
                let (dp, dq) = (domain_of[p], domain_of[q]);
                if dp != dq && seen.insert((dp, dq)) {
                    edges.push(CrossEdge {
                        kind: EdgeKind::Channel(chan),
                        domains: vec![dp, dq],
                    });
                }
            }
        }
    }
    for (bar, users) in barrier_users {
        let ds: BTreeSet<usize> = users.iter().map(|&ti| domain_of[ti]).collect();
        if ds.len() > 1 {
            edges.push(CrossEdge {
                kind: EdgeKind::Barrier(bar),
                domains: ds.into_iter().collect(),
            });
        }
    }

    ShardPlan { domains, edges }
}

fn merge_all(dsu: &mut Dsu, users: &BTreeSet<usize>) {
    let mut it = users.iter();
    if let Some(&first) = it.next() {
        for &u in it {
            dsu.union(first, u);
        }
    }
}

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    r.shard_plan = shard_plan(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::ids::GroupId;
    use gprs_core::workload::{Segment, ThreadSpec};

    fn tid(n: u32) -> ThreadId {
        ThreadId::new(n)
    }
    fn spec(n: u32, segs: Vec<Segment>) -> ThreadSpec {
        ThreadSpec::new(tid(n), GroupId::new(0), 1, segs)
    }

    #[test]
    fn disjoint_threads_get_singleton_domains() {
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(10, SimOp::End)]),
            spec(1, vec![Segment::new(20, SimOp::End)]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 2);
        assert!(p.is_sharded());
        assert!(p.edges.is_empty());
        assert_eq!(p.domain_of(tid(1)), Some(1));
        assert_eq!(p.domains[1].weight, 20);
    }

    #[test]
    fn shared_lock_merges() {
        let l = LockId::new(0);
        let cs = Segment::new(1, SimOp::Lock { lock: l, cs_work: 5 });
        let w = Workload::new("t", vec![
            spec(0, vec![cs]),
            spec(1, vec![Segment::new(1, SimOp::End).with_nested(l)]),
            spec(2, vec![Segment::new(1, SimOp::End)]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 2);
        assert_eq!(p.domains[0].threads, vec![tid(0), tid(1)]);
        assert_eq!(p.domains[1].threads, vec![tid(2)]);
    }

    #[test]
    fn written_cell_merges_but_read_only_cell_does_not() {
        let cell = AtomicId::new(0);
        let reads = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Read)]),
            spec(1, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Read)]),
        ]);
        assert_eq!(shard_plan(&reads).domains.len(), 2);
        let writes = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Write)]),
            spec(1, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Read)]),
        ]);
        assert_eq!(shard_plan(&writes).domains.len(), 1);
    }

    #[test]
    fn channels_and_barriers_become_edges_not_merges() {
        let c = ChannelId::new(0);
        let b = BarrierId::new(0);
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::Push { chan: c })]),
            spec(1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
            spec(2, vec![
                Segment::new(1, SimOp::Barrier { barrier: b }),
                Segment::new(1, SimOp::End),
            ]),
            spec(3, vec![
                Segment::new(1, SimOp::Barrier { barrier: b }),
                Segment::new(1, SimOp::End),
            ]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 4);
        assert_eq!(p.edges.len(), 2);
        assert_eq!(p.edges[0].kind, EdgeKind::Channel(c));
        assert_eq!(p.edges[0].domains, vec![0, 1]);
        assert_eq!(p.edges[1].kind, EdgeKind::Barrier(b));
        assert_eq!(p.edges[1].domains, vec![2, 3]);
    }

    #[test]
    fn plan_serializes_and_displays() {
        let c = ChannelId::new(0);
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::Push { chan: c })]),
            spec(1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
        ]);
        let p = shard_plan(&w);
        let json = p.to_json();
        assert!(json.contains("\"kind\":\"channel\""), "{json}");
        assert!(p.to_string().contains("2 domain(s)"));
    }

    #[test]
    fn json_round_trips() {
        let c = ChannelId::new(0);
        let b = BarrierId::new(1);
        let w = Workload::new("t", vec![
            spec(0, vec![
                Segment::new(1, SimOp::Push { chan: c }),
                Segment::new(1, SimOp::Barrier { barrier: b }),
            ]),
            spec(1, vec![
                Segment::new(1, SimOp::Pop { chan: c }),
                Segment::new(1, SimOp::Barrier { barrier: b }),
            ]),
            spec(2, vec![Segment::new(1, SimOp::End)]),
        ]);
        let p = shard_plan(&w);
        let back = ShardPlan::from_json(&p.to_json()).expect("round trip");
        assert_eq!(p, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ShardPlan::from_json("").is_err());
        assert!(ShardPlan::from_json("{\"domains\":[]}").is_err()); // no edges key
        assert!(ShardPlan::from_json("{\"domains\":[],\"edges\":[]} trailing").is_err());
        let bad_kind = "{\"domains\":[],\"edges\":[{\"kind\":\"mutex\",\
                        \"resource\":\"L0\",\"domains\":[]}]}";
        assert!(ShardPlan::from_json(bad_kind).unwrap_err().contains("mutex"));
        let bad_id = "{\"domains\":[{\"id\":0,\"weight\":1,\"sync_ops\":0,\
                      \"threads\":[\"CH0\"]}],\"edges\":[]}";
        assert!(ShardPlan::from_json(bad_id).unwrap_err().contains("bad TH id"));
    }

    #[test]
    fn validate_accepts_fresh_plan() {
        let c = ChannelId::new(0);
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::Push { chan: c })]),
            spec(1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.validate_against(&w), Ok(()));
        // And survives a serialization round trip.
        let back = ShardPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(back.validate_against(&w), Ok(()));
    }

    #[test]
    fn validate_names_thread_set_drift() {
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::End)]),
            spec(1, vec![Segment::new(1, SimOp::End)]),
        ]);
        let mut stale = shard_plan(&w);
        stale.domains[1].threads = vec![tid(7)];
        let err = stale.validate_against(&w).unwrap_err();
        assert!(err.contains("stale shard plan"), "{err}");
        assert!(err.contains("TH1"), "{err}");
        assert!(err.contains("TH7"), "{err}");
    }

    #[test]
    fn validate_names_missing_edge() {
        let c = ChannelId::new(0);
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::Push { chan: c })]),
            spec(1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
        ]);
        let mut stale = shard_plan(&w);
        stale.edges.clear();
        let err = stale.validate_against(&w).unwrap_err();
        assert!(err.contains("missing cross-domain edge CH0"), "{err}");

        let mut stale = shard_plan(&w);
        stale.edges.push(CrossEdge {
            kind: EdgeKind::Barrier(BarrierId::new(9)),
            domains: vec![0, 1],
        });
        let err = stale.validate_against(&w).unwrap_err();
        assert!(err.contains("spurious cross-domain edge B9"), "{err}");
    }

    #[test]
    fn validate_names_partition_drift() {
        let l = LockId::new(0);
        let cs = Segment::new(1, SimOp::Lock { lock: l, cs_work: 5 });
        let w = Workload::new("t", vec![
            spec(0, vec![cs]),
            spec(1, vec![Segment::new(1, SimOp::End).with_nested(l)]),
        ]);
        // A plan that splits what interference analysis merges.
        let stale = ShardPlan {
            domains: vec![
                ShardDomain { id: 0, threads: vec![tid(0)], weight: 6, sync_ops: 1 },
                ShardDomain { id: 1, threads: vec![tid(1)], weight: 1, sync_ops: 1 },
            ],
            edges: Vec::new(),
        };
        let err = stale.validate_against(&w).unwrap_err();
        assert!(err.contains("domain partition differs"), "{err}");
    }

    #[test]
    fn coalesce_merges_shared_channel_ends() {
        // Two independent producers feed one channel; two independent
        // consumers drain another. Execution needs SPSC edges, so the
        // producer pair and the consumer pair each merge.
        let (a, b) = (ChannelId::new(0), ChannelId::new(1));
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::Push { chan: a })]),
            spec(1, vec![Segment::new(1, SimOp::Push { chan: a })]),
            spec(2, vec![
                Segment::new(1, SimOp::Pop { chan: a }),
                Segment::new(1, SimOp::Push { chan: b }),
            ]),
            spec(3, vec![Segment::new(1, SimOp::Pop { chan: b })]),
            spec(4, vec![Segment::new(1, SimOp::Pop { chan: b })]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 5);
        let exec = p.coalesce_for_execution(&w);
        assert_eq!(exec.domains.len(), 3);
        assert_eq!(exec.domains[0].threads, vec![tid(0), tid(1)]);
        assert_eq!(exec.domains[1].threads, vec![tid(2)]);
        assert_eq!(exec.domains[2].threads, vec![tid(3), tid(4)]);
        // Both residual channel edges are single-producer/single-consumer.
        assert_eq!(exec.edges.len(), 2);
        assert_eq!(exec.edges[0], CrossEdge {
            kind: EdgeKind::Channel(a),
            domains: vec![0, 1],
        });
        assert_eq!(exec.edges[1], CrossEdge {
            kind: EdgeKind::Channel(b),
            domains: vec![1, 2],
        });
        // Weight and sync-op mass are conserved.
        let mass = |p: &ShardPlan| p.domains.iter().map(|d| d.weight).sum::<u64>();
        assert_eq!(mass(&p), mass(&exec));
    }

    #[test]
    fn coalesce_keeps_disjoint_domains_apart() {
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(10, SimOp::End)]),
            spec(1, vec![Segment::new(20, SimOp::End)]),
        ]);
        let p = shard_plan(&w);
        let exec = p.coalesce_for_execution(&w);
        assert_eq!(exec, p);
    }

    #[test]
    fn coalesce_collapses_intra_domain_channel_edges() {
        // Producer and consumer of one channel plus a barrier tying the
        // consumer to a third thread: once the barrier's domains merge via
        // a shared channel elsewhere, edges within one exec domain vanish.
        let c = ChannelId::new(0);
        let d = ChannelId::new(1);
        let w = Workload::new("t", vec![
            spec(0, vec![
                Segment::new(1, SimOp::Push { chan: c }),
                Segment::new(1, SimOp::Push { chan: d }),
            ]),
            spec(1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
            spec(2, vec![Segment::new(1, SimOp::Pop { chan: d })]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 3);
        let exec = p.coalesce_for_execution(&w);
        // Nothing shares channel ends, so the partition is unchanged and
        // both channels stay cross-edges.
        assert_eq!(exec.domains.len(), 3);
        assert_eq!(exec.edges.len(), 2);
    }
}
