//! Interference partitioning: provably independent order domains.
//!
//! Two threads *interfere* when they share mutable state whose access order
//! the global retirement order must arbitrate: a common lock (opening or
//! nested), a common synchronizing atomic, or a plain cell at least one of
//! them writes. The transitive closure of that relation partitions the
//! workload into **order domains** — thread sets that could retire through
//! independent OrderGates without any cross-gate arbitration.
//!
//! Channels and barriers deliberately do *not* merge domains: a channel is a
//! directed FIFO hand-off and a barrier is a rendezvous, both of which a
//! sharded enforcer can implement as explicit cross-shard edges rather than
//! by collapsing the shards into one. The [`ShardPlan`] therefore carries
//! those residual couplings as [`CrossEdge`]s — the static contract the
//! ROADMAP-3 sharded OrderGate consumes: retire freely within a domain,
//! synchronize only along the listed edges.

use crate::report::AnalysisReport;
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, LockId, ThreadId};
use gprs_core::workload::{PlainKind, SimOp, Workload};
use gprs_telemetry::json::JsonWriter;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One provably independent set of threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDomain {
    /// Dense domain index (ordered by smallest member thread id).
    pub id: usize,
    /// Member threads, in id order.
    pub threads: Vec<ThreadId>,
    /// Aggregate computation cycles across the domain — the shard's load
    /// weight.
    pub weight: u64,
    /// Aggregate synchronization operations (token demand) in the domain.
    pub sync_ops: u64,
}

/// What couples two (or more) domains that the partition kept apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A directed FIFO hand-off.
    Channel(ChannelId),
    /// An undirected rendezvous.
    Barrier(BarrierId),
}

/// A residual cross-domain coupling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossEdge {
    /// The resource that couples the domains.
    pub kind: EdgeKind,
    /// For [`EdgeKind::Channel`]: `[from, to]` (producer domain to consumer
    /// domain). For [`EdgeKind::Barrier`]: every participating domain, in
    /// order.
    pub domains: Vec<usize>,
}

/// The full partition: the static contract for a sharded order enforcer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardPlan {
    /// The independent domains, ordered by smallest member thread id.
    pub domains: Vec<ShardDomain>,
    /// Residual couplings between domains, in deterministic resource order.
    pub edges: Vec<CrossEdge>,
}

impl ShardPlan {
    /// True when the partition actually splits the workload.
    pub fn is_sharded(&self) -> bool {
        self.domains.len() > 1
    }

    /// The domain a thread belongs to, if the plan covers it.
    pub fn domain_of(&self, t: ThreadId) -> Option<usize> {
        self.domains
            .iter()
            .find(|d| d.threads.contains(&t))
            .map(|d| d.id)
    }

    /// Serializes the plan into `w` as one JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("domains").begin_array();
        for d in &self.domains {
            w.begin_object()
                .field_u64("id", d.id as u64)
                .field_u64("weight", d.weight)
                .field_u64("sync_ops", d.sync_ops);
            w.key("threads").begin_array();
            for t in &d.threads {
                w.string(&t.to_string());
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.key("edges").begin_array();
        for e in &self.edges {
            w.begin_object();
            match e.kind {
                EdgeKind::Channel(c) => {
                    w.field_str("kind", "channel").field_str("resource", &c.to_string());
                }
                EdgeKind::Barrier(b) => {
                    w.field_str("kind", "barrier").field_str("resource", &b.to_string());
                }
            }
            w.key("domains").begin_array();
            for d in &e.domains {
                w.begin_object().field_u64("id", *d as u64).end_object();
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// The plan as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard plan: {} domain(s), {} cross-domain edge(s)",
            self.domains.len(),
            self.edges.len()
        )?;
        for d in &self.domains {
            write!(
                f,
                "  domain {} (weight {}, {} sync ops):",
                d.id, d.weight, d.sync_ops
            )?;
            for t in &d.threads {
                write!(f, " {t}")?;
            }
            writeln!(f)?;
        }
        for e in &self.edges {
            match e.kind {
                EdgeKind::Channel(c) => {
                    writeln!(f, "  edge {c}: domain {} -> domain {}", e.domains[0], e.domains[1])?;
                }
                EdgeKind::Barrier(b) => {
                    write!(f, "  edge {b}: domains")?;
                    for d in &e.domains {
                        write!(f, " {d}")?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

/// Union-find over dense thread indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins so the representative is the least thread id.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi] = lo;
        }
    }
}

/// Builds the interference partition for `w`.
pub fn shard_plan(w: &Workload) -> ShardPlan {
    let n = w.threads.len();
    let mut dsu = Dsu::new(n);

    // Resource -> user threads, in deterministic id order.
    let mut lock_users: BTreeMap<LockId, BTreeSet<usize>> = BTreeMap::new();
    let mut rmw_users: BTreeMap<AtomicId, BTreeSet<usize>> = BTreeMap::new();
    let mut cell_users: BTreeMap<AtomicId, (BTreeSet<usize>, bool)> = BTreeMap::new();
    let mut chan_ends: BTreeMap<ChannelId, (BTreeSet<usize>, BTreeSet<usize>)> = BTreeMap::new();
    let mut barrier_users: BTreeMap<BarrierId, BTreeSet<usize>> = BTreeMap::new();
    for (ti, t) in w.threads.iter().enumerate() {
        for s in &t.segments {
            match s.op {
                SimOp::Lock { lock, .. } => {
                    lock_users.entry(lock).or_default().insert(ti);
                }
                SimOp::Atomic { atomic } => {
                    rmw_users.entry(atomic).or_default().insert(ti);
                }
                SimOp::Push { chan } => {
                    chan_ends.entry(chan).or_default().0.insert(ti);
                }
                SimOp::Pop { chan } => {
                    chan_ends.entry(chan).or_default().1.insert(ti);
                }
                SimOp::Barrier { barrier } => {
                    barrier_users.entry(barrier).or_default().insert(ti);
                }
                SimOp::End => {}
            }
            if let Some(m) = s.nested {
                lock_users.entry(m).or_default().insert(ti);
            }
            if let Some((cell, kind)) = s.plain {
                let e = cell_users.entry(cell).or_default();
                e.0.insert(ti);
                e.1 |= matches!(kind, PlainKind::Write | PlainKind::Update);
            }
        }
    }

    // Symmetric data sharing merges; read-only cells never conflict.
    for users in lock_users.values().chain(rmw_users.values()) {
        merge_all(&mut dsu, users);
    }
    for (users, written) in cell_users.values() {
        if *written {
            merge_all(&mut dsu, users);
        }
    }

    // Domains in first-thread order; roots are the least member id.
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for ti in 0..n {
        by_root.entry(dsu.find(ti)).or_default().push(ti);
    }
    let mut domain_of = vec![0usize; n];
    let mut domains = Vec::with_capacity(by_root.len());
    for (id, (_, members)) in by_root.into_iter().enumerate() {
        let mut weight = 0;
        let mut sync_ops = 0;
        for &ti in &members {
            let t = &w.threads[ti];
            weight += t.total_work();
            sync_ops += t.segments.iter().filter(|s| s.op != SimOp::End).count() as u64;
            domain_of[ti] = id;
        }
        domains.push(ShardDomain {
            id,
            threads: members.iter().map(|&ti| w.threads[ti].thread).collect(),
            weight,
            sync_ops,
        });
    }

    // Residual couplings: channel edges (producer domain -> consumer
    // domain) and barrier rendezvous spanning more than one domain.
    let mut edges = Vec::new();
    for (chan, (pushers, poppers)) in chan_ends {
        let mut seen = BTreeSet::new();
        for &p in &pushers {
            for &q in &poppers {
                let (dp, dq) = (domain_of[p], domain_of[q]);
                if dp != dq && seen.insert((dp, dq)) {
                    edges.push(CrossEdge {
                        kind: EdgeKind::Channel(chan),
                        domains: vec![dp, dq],
                    });
                }
            }
        }
    }
    for (bar, users) in barrier_users {
        let ds: BTreeSet<usize> = users.iter().map(|&ti| domain_of[ti]).collect();
        if ds.len() > 1 {
            edges.push(CrossEdge {
                kind: EdgeKind::Barrier(bar),
                domains: ds.into_iter().collect(),
            });
        }
    }

    ShardPlan { domains, edges }
}

fn merge_all(dsu: &mut Dsu, users: &BTreeSet<usize>) {
    let mut it = users.iter();
    if let Some(&first) = it.next() {
        for &u in it {
            dsu.union(first, u);
        }
    }
}

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    r.shard_plan = shard_plan(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::ids::GroupId;
    use gprs_core::workload::{Segment, ThreadSpec};

    fn tid(n: u32) -> ThreadId {
        ThreadId::new(n)
    }
    fn spec(n: u32, segs: Vec<Segment>) -> ThreadSpec {
        ThreadSpec::new(tid(n), GroupId::new(0), 1, segs)
    }

    #[test]
    fn disjoint_threads_get_singleton_domains() {
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(10, SimOp::End)]),
            spec(1, vec![Segment::new(20, SimOp::End)]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 2);
        assert!(p.is_sharded());
        assert!(p.edges.is_empty());
        assert_eq!(p.domain_of(tid(1)), Some(1));
        assert_eq!(p.domains[1].weight, 20);
    }

    #[test]
    fn shared_lock_merges() {
        let l = LockId::new(0);
        let cs = Segment::new(1, SimOp::Lock { lock: l, cs_work: 5 });
        let w = Workload::new("t", vec![
            spec(0, vec![cs]),
            spec(1, vec![Segment::new(1, SimOp::End).with_nested(l)]),
            spec(2, vec![Segment::new(1, SimOp::End)]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 2);
        assert_eq!(p.domains[0].threads, vec![tid(0), tid(1)]);
        assert_eq!(p.domains[1].threads, vec![tid(2)]);
    }

    #[test]
    fn written_cell_merges_but_read_only_cell_does_not() {
        let cell = AtomicId::new(0);
        let reads = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Read)]),
            spec(1, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Read)]),
        ]);
        assert_eq!(shard_plan(&reads).domains.len(), 2);
        let writes = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Write)]),
            spec(1, vec![Segment::new(1, SimOp::End).with_plain(cell, PlainKind::Read)]),
        ]);
        assert_eq!(shard_plan(&writes).domains.len(), 1);
    }

    #[test]
    fn channels_and_barriers_become_edges_not_merges() {
        let c = ChannelId::new(0);
        let b = BarrierId::new(0);
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::Push { chan: c })]),
            spec(1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
            spec(2, vec![
                Segment::new(1, SimOp::Barrier { barrier: b }),
                Segment::new(1, SimOp::End),
            ]),
            spec(3, vec![
                Segment::new(1, SimOp::Barrier { barrier: b }),
                Segment::new(1, SimOp::End),
            ]),
        ]);
        let p = shard_plan(&w);
        assert_eq!(p.domains.len(), 4);
        assert_eq!(p.edges.len(), 2);
        assert_eq!(p.edges[0].kind, EdgeKind::Channel(c));
        assert_eq!(p.edges[0].domains, vec![0, 1]);
        assert_eq!(p.edges[1].kind, EdgeKind::Barrier(b));
        assert_eq!(p.edges[1].domains, vec![2, 3]);
    }

    #[test]
    fn plan_serializes_and_displays() {
        let c = ChannelId::new(0);
        let w = Workload::new("t", vec![
            spec(0, vec![Segment::new(1, SimOp::Push { chan: c })]),
            spec(1, vec![Segment::new(1, SimOp::Pop { chan: c })]),
        ]);
        let p = shard_plan(&w);
        let json = p.to_json();
        assert!(json.contains("\"kind\":\"channel\""), "{json}");
        assert!(p.to_string().contains("2 domain(s)"));
    }
}
