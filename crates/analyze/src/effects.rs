//! Per-segment effect summaries — the shared substrate of the interference
//! (shard) and restartability passes.
//!
//! A [`Segment`] in the trace IR already names everything its body can do to
//! state outside its own stack frame: plain reads/writes of shared cells,
//! critical sections (opening and nested), the closing synchronization op,
//! and the `external` escape hatch for effects no WAL record can undo. An
//! [`EffectSummary`] normalizes that into one flat record per segment so the
//! downstream passes (interference partitioning, restartability
//! classification, elision planning) never re-derive it from IR shape.

use crate::report::Site;
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, LockId};
use gprs_core::workload::{PlainKind, Segment, SimOp, Workload};
use std::collections::BTreeSet;

/// Direction of a channel operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanDir {
    /// The segment's closing op enqueues.
    Push,
    /// The segment's closing op dequeues.
    Pop,
}

/// Everything one segment can do to state outside its own stack frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSummary {
    /// The segment this summarizes.
    pub site: Site,
    /// Cells the body plain-reads (an `Update` both reads and writes).
    pub reads: Vec<AtomicId>,
    /// Cells the body plain-writes.
    pub writes: Vec<AtomicId>,
    /// Locks the segment interacts with: the closing `Lock` op plus any
    /// nested critical section.
    pub locks: Vec<LockId>,
    /// The atomic the closing op read-modify-writes, if any.
    pub rmw: Option<AtomicId>,
    /// The channel op closing the segment, if any.
    pub channel: Option<(ChannelId, ChanDir)>,
    /// The barrier the closing op waits on, if any.
    pub barrier: Option<BarrierId>,
    /// The body performs an effect that escapes the recovery envelope.
    pub external: bool,
    /// Body computation cycles.
    pub work: u64,
    /// Checkpointed mod-set bytes covering the body.
    pub ckpt_bytes: u64,
}

impl EffectSummary {
    /// Summarizes one segment.
    pub fn of(site: Site, s: &Segment) -> Self {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        match s.plain {
            Some((cell, PlainKind::Read)) => reads.push(cell),
            Some((cell, PlainKind::Write)) => writes.push(cell),
            Some((cell, PlainKind::Update)) => {
                reads.push(cell);
                writes.push(cell);
            }
            None => {}
        }
        let mut locks = Vec::new();
        let mut rmw = None;
        let mut channel = None;
        let mut barrier = None;
        match s.op {
            SimOp::Lock { lock, .. } => locks.push(lock),
            SimOp::Atomic { atomic } => rmw = Some(atomic),
            SimOp::Push { chan } => channel = Some((chan, ChanDir::Push)),
            SimOp::Pop { chan } => channel = Some((chan, ChanDir::Pop)),
            SimOp::Barrier { barrier: b } => barrier = Some(b),
            SimOp::End => {}
        }
        if let Some(m) = s.nested {
            if !locks.contains(&m) {
                locks.push(m);
            }
        }
        EffectSummary {
            site,
            reads,
            writes,
            locks,
            rmw,
            channel,
            barrier,
            external: s.external,
            work: s.work,
            ckpt_bytes: s.ckpt_bytes,
        }
    }
}

/// Flat effect summaries for every segment, in `(thread, segment)` order.
pub fn summarize(w: &Workload) -> Vec<EffectSummary> {
    let mut out = Vec::with_capacity(w.total_segments() as usize);
    for t in &w.threads {
        for (i, s) in t.segments.iter().enumerate() {
            out.push(EffectSummary::of(Site::new(t.thread, i), s));
        }
    }
    out
}

/// The restartability verdict for one segment, from the recovery system's
/// point of view: what does squashing the sub-thread this segment bodies
/// cost, and can it be done precisely at all?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentClass {
    /// The body provably modifies nothing: zero computation, no plain
    /// write, no nested critical section, no external effect. Squashing it
    /// restores no state, so its checkpoint records nothing of value.
    ReadOnly,
    /// Every effect is covered: plain writes have checkpointed mod-set
    /// bytes, sync-op effects are undone by WAL control records, private
    /// computation is covered by the sub-thread snapshot.
    UndoCovered,
    /// At least one effect escapes the recovery envelope — an explicit
    /// `external` marker, or a plain write with no checkpoint coverage.
    /// Selective restart cannot squash this segment precisely.
    External,
}

impl SegmentClass {
    /// Classifies one segment's body.
    pub fn of(s: &Segment) -> Self {
        let writes = matches!(s.plain, Some((_, PlainKind::Write | PlainKind::Update)));
        if s.external || (writes && s.ckpt_bytes == 0) {
            return SegmentClass::External;
        }
        if !writes && s.nested.is_none() && s.work == 0 {
            return SegmentClass::ReadOnly;
        }
        SegmentClass::UndoCovered
    }

    /// A stable label for display and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SegmentClass::ReadOnly => "read-only",
            SegmentClass::UndoCovered => "undo-covered",
            SegmentClass::External => "external",
        }
    }
}

/// Is the checkpoint at the sub-thread boundary whose *body* is `body` and
/// whose opening op is `opening` (the previous segment's closing op, `None`
/// for a thread's initial sub-thread) provably elidable?
///
/// Two conditions, both static:
/// * the body is [`SegmentClass::ReadOnly`] — it modifies no private or
///   shared state, so rewinding to this boundary restores nothing; and
/// * the opening op is not a `Lock` — under unlock subsumption the critical
///   section's `cs_work` executes *inside* this sub-thread, and the CS body
///   mutates the lock-protected data the checkpoint exists to cover.
///
/// Sync-op effects of the opening itself (the push/pop/fetch-add) are undone
/// by WAL control records, never by the checkpoint, so they do not block
/// elision.
pub fn checkpoint_elidable(opening: Option<SimOp>, body: &Segment) -> bool {
    SegmentClass::of(body) == SegmentClass::ReadOnly
        && !matches!(opening, Some(SimOp::Lock { .. }))
}

/// Cells whose every access across the whole workload is a plain `Write`:
/// the value is never observed — not by a plain read, not by an `Update`
/// read-modify-write, not by a synchronizing `Atomic` op — so the WAL undo
/// record protecting the old value can never matter. Squash leaves a stale
/// value behind, re-execution deterministically overwrites it, and no read
/// exists to see the window in between.
pub fn dead_cells(w: &Workload) -> BTreeSet<AtomicId> {
    let mut written = BTreeSet::new();
    let mut observed = BTreeSet::new();
    for t in &w.threads {
        for s in &t.segments {
            match s.plain {
                Some((cell, PlainKind::Write)) => {
                    written.insert(cell);
                }
                Some((cell, PlainKind::Read | PlainKind::Update)) => {
                    observed.insert(cell);
                }
                None => {}
            }
            if let SimOp::Atomic { atomic } = s.op {
                observed.insert(atomic);
            }
        }
    }
    written.retain(|c| !observed.contains(c));
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use gprs_core::ids::{GroupId, ThreadId};
    use gprs_core::workload::ThreadSpec;

    #[test]
    fn summary_splits_update_into_read_and_write() {
        let cell = AtomicId::new(3);
        let s = Segment::new(5, SimOp::Lock {
            lock: LockId::new(1),
            cs_work: 2,
        })
        .with_plain(cell, PlainKind::Update)
        .with_nested(LockId::new(2));
        let e = EffectSummary::of(Site::new(ThreadId::new(0), 0), &s);
        assert_eq!(e.reads, vec![cell]);
        assert_eq!(e.writes, vec![cell]);
        assert_eq!(e.locks, vec![LockId::new(1), LockId::new(2)]);
        assert_eq!(e.rmw, None);
        assert!(!e.external);
    }

    #[test]
    fn classes_cover_the_lattice() {
        let ro = Segment::new(0, SimOp::Pop {
            chan: ChannelId::new(0),
        });
        assert_eq!(SegmentClass::of(&ro), SegmentClass::ReadOnly);
        let covered = Segment::new(10, SimOp::End);
        assert_eq!(SegmentClass::of(&covered), SegmentClass::UndoCovered);
        let uncovered = Segment::new(0, SimOp::End)
            .with_plain(AtomicId::new(0), PlainKind::Write)
            .with_ckpt_bytes(0);
        assert_eq!(SegmentClass::of(&uncovered), SegmentClass::External);
        let escape = Segment::new(0, SimOp::End).with_external();
        assert_eq!(SegmentClass::of(&escape), SegmentClass::External);
        // A plain read does not block read-only.
        let read = Segment::new(0, SimOp::End).with_plain(AtomicId::new(0), PlainKind::Read);
        assert_eq!(SegmentClass::of(&read), SegmentClass::ReadOnly);
    }

    #[test]
    fn lock_opening_blocks_checkpoint_elision() {
        let body = Segment::new(0, SimOp::End);
        assert!(checkpoint_elidable(None, &body));
        assert!(checkpoint_elidable(
            Some(SimOp::Push {
                chan: ChannelId::new(0)
            }),
            &body
        ));
        assert!(!checkpoint_elidable(
            Some(SimOp::Lock {
                lock: LockId::new(0),
                cs_work: 0
            }),
            &body
        ));
    }

    #[test]
    fn dead_cells_require_write_only_access() {
        let beacon = AtomicId::new(0);
        let live = AtomicId::new(1);
        let rmw = AtomicId::new(2);
        let t0 = ThreadSpec::new(ThreadId::new(0), GroupId::new(0), 1, vec![
            Segment::new(1, SimOp::End).with_plain(beacon, PlainKind::Write),
        ]);
        let t1 = ThreadSpec::new(ThreadId::new(1), GroupId::new(0), 1, vec![
            Segment::new(1, SimOp::Atomic { atomic: rmw }).with_plain(live, PlainKind::Write),
            Segment::new(1, SimOp::End).with_plain(live, PlainKind::Read),
        ]);
        // `rmw` is also plain-written by a third thread: the Atomic op
        // observes it, so it stays live.
        let t2 = ThreadSpec::new(ThreadId::new(2), GroupId::new(0), 1, vec![
            Segment::new(1, SimOp::End).with_plain(rmw, PlainKind::Write),
        ]);
        let w = Workload::new("t", vec![t0, t1, t2]);
        let dead = dead_cells(&w);
        assert!(dead.contains(&beacon));
        assert!(!dead.contains(&live));
        assert!(!dead.contains(&rmw));
    }
}
