//! Channel-topology analysis: starvation, imbalance, and the schedule
//! advisor.
//!
//! Channels induce a producer/consumer digraph over threads. Three things
//! fall out of it statically:
//!
//! * a `Pop` on a channel nothing ever pushes (or more pops than pushes)
//!   can never complete — the run would stall, so that is an error;
//! * surplus pushes leave items behind — suspicious but non-fatal;
//! * when the digraph is an acyclic, non-trivial pipeline, its depth
//!   levels *are* the natural balance-aware stages: group = depth, weight
//!   proportional to the stage's aggregate token demand (each segment's
//!   closing op costs one token grant), normalized so the lightest stage
//!   gets weight 1 and capped at [`MAX_WEIGHT`]. This reproduces the
//!   paper's §4 observation that Pbzip2 wants its read stage weighted
//!   against the write stage rather than round-robined.

use crate::report::{AnalysisReport, Severity, Site, StageAdvice, SuggestedSchedule};
use gprs_core::ids::{ChannelId, GroupId, ThreadId};
use gprs_core::workload::{SimOp, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// Cap on suggested stage weights: beyond this the token parks on one group
/// long enough to starve the others' reorder-list windows.
pub const MAX_WEIGHT: u32 = 8;

#[derive(Default)]
struct ChanStat {
    pushes: u64,
    pops: u64,
    producers: BTreeSet<ThreadId>,
    consumers: BTreeSet<ThreadId>,
    pop_sites: Vec<Site>,
}

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    let mut chans: BTreeMap<ChannelId, ChanStat> = BTreeMap::new();
    for t in &w.threads {
        for (i, s) in t.segments.iter().enumerate() {
            match s.op {
                SimOp::Push { chan } => {
                    let c = chans.entry(chan).or_default();
                    c.pushes += 1;
                    c.producers.insert(t.thread);
                }
                SimOp::Pop { chan } => {
                    let c = chans.entry(chan).or_default();
                    c.pops += 1;
                    c.consumers.insert(t.thread);
                    if c.pop_sites.len() < 4 {
                        c.pop_sites.push(Site::new(t.thread, i));
                    }
                }
                _ => {}
            }
        }
    }

    for (chan, c) in &chans {
        if c.pops > c.pushes {
            r.push(
                Severity::Error,
                "starved-pop",
                if c.pushes == 0 {
                    format!("{chan}: {} pops but nothing ever pushes", c.pops)
                } else {
                    format!(
                        "{chan}: {} pops vs {} pushes — {} pops can never be matched",
                        c.pops,
                        c.pushes,
                        c.pops - c.pushes
                    )
                },
                c.pop_sites.clone(),
            );
        } else if c.pushes > c.pops {
            r.push(
                Severity::Warning,
                "channel-imbalance",
                format!(
                    "{chan}: {} pushes vs {} pops — {} items are never consumed",
                    c.pushes,
                    c.pops,
                    c.pushes - c.pops
                ),
                Vec::new(),
            );
        }
    }

    r.suggestion = advise(w, &chans, r);
}

/// Builds the thread-level producer/consumer DAG and synthesizes the
/// balance-aware stage assignment, or `None` when the topology is trivial
/// (no channels) or cyclic.
fn advise(
    w: &Workload,
    chans: &BTreeMap<ChannelId, ChanStat>,
    r: &mut AnalysisReport,
) -> Option<SuggestedSchedule> {
    if chans.is_empty() {
        return None;
    }
    let n = w.threads.len();
    let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    for c in chans.values() {
        for &p in &c.producers {
            for &q in &c.consumers {
                if p != q && succ[p.raw() as usize].insert(q.raw() as usize) {
                    indeg[q.raw() as usize] += 1;
                }
            }
        }
    }

    // Longest-path depth via Kahn's algorithm; a cycle leaves nodes
    // unprocessed.
    let mut depth: Vec<usize> = vec![0; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &q in &succ[v] {
            depth[q] = depth[q].max(depth[v] + 1);
            indeg[q] -= 1;
            if indeg[q] == 0 {
                queue.push(q);
            }
        }
    }
    if seen < n {
        r.push(
            Severity::Info,
            "cyclic-channels",
            "channel topology is cyclic; no schedule suggested".to_string(),
            Vec::new(),
        );
        return None;
    }

    let mut stages: BTreeMap<usize, (Vec<ThreadId>, u64, u64)> = BTreeMap::new();
    for (i, t) in w.threads.iter().enumerate() {
        let e = stages.entry(depth[i]).or_insert((Vec::new(), 0, 0));
        e.0.push(t.thread);
        e.1 += t.total_work();
        // Token demand: every segment's closing op consumes one grant.
        e.2 += t.segments.len() as u64;
    }
    if stages.len() < 2 {
        return None;
    }

    let min_ops = stages.values().map(|s| s.2.max(1)).min().unwrap_or(1);
    let stages: Vec<StageAdvice> = stages
        .into_iter()
        .map(|(d, (threads, work, sync_ops))| StageAdvice {
            group: GroupId::new(d as u32),
            threads,
            weight: u32::try_from((sync_ops.max(1) + min_ops / 2) / min_ops)
                .unwrap_or(MAX_WEIGHT)
                .clamp(1, MAX_WEIGHT),
            work,
            sync_ops,
        })
        .collect();

    // Imbalance lint: per-thread work differing by >8x across stages means
    // the stage populations are mis-sized for the pipeline.
    let per_thread: Vec<u64> = stages
        .iter()
        .map(|s| s.work / s.threads.len().max(1) as u64)
        .collect();
    let (lo, hi) = (
        per_thread.iter().copied().min().unwrap_or(0),
        per_thread.iter().copied().max().unwrap_or(0),
    );
    if lo > 0 && hi / lo > 8 {
        r.push(
            Severity::Info,
            "stage-imbalance",
            format!(
                "pipeline stages are unbalanced: per-thread work ranges {lo}..{hi} cycles \
                 ({}x); consider resizing stage populations",
                hi / lo
            ),
            Vec::new(),
        );
    }

    Some(SuggestedSchedule { stages })
}
