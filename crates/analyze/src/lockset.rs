//! Lockset / static-happens-before classification of plain accesses.
//!
//! Granularity deliberately matches the dynamic detector's: a sub-thread
//! under unlock subsumption spans a critical section *and* the following
//! segment, so a plain access in segment `i` inherits the guard implied by
//! segment `i-1`'s closing op (the sub-thread's opening op) plus any nested
//! critical section flattened into segment `i` itself. Two accesses are
//! statically ordered when they share a guard (lock or atomic — atomics
//! serialize through acquire/release exactly as the vector-clock detector
//! models them), when barrier phases separate them, or when a
//! single-producer/single-consumer channel hand-off carries push→pop
//! provenance between them (the dynamic detector's `ChanPop` edge: a pop
//! joins the producer's clock as of the matching push, so producer work
//! before the push happens-before consumer work after the pop). Anything
//! else is a potential race; over-approximation is the sound direction,
//! since the verdict decides whether selective restart may run without the
//! dynamic detector.

use crate::report::{AnalysisReport, CellReport, CellVerdict, RecoveryAdvice, Severity, Site};
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, ResourceId, ThreadId};
use gprs_core::workload::{PlainKind, SimOp, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// One static plain access with its derived ordering context.
struct Access {
    site: Site,
    kind: PlainKind,
    /// Locks/atomics guaranteed held (or serialized through) for the whole
    /// segment body.
    guards: BTreeSet<ResourceId>,
    /// Barrier arrivals completed by this thread strictly before the
    /// segment body runs.
    phases: BTreeMap<BarrierId, u32>,
}

/// A channel with exactly one pushing and one popping thread (and the two
/// distinct): its FIFO discipline gives static push→pop provenance.
struct Spsc {
    producer: ThreadId,
    consumer: ThreadId,
    /// Segment index of the producer's m-th push, ascending.
    pushes: Vec<usize>,
    /// Segment index of the consumer's m-th pop, ascending.
    pops: Vec<usize>,
}

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    // Total arrivals per (thread, barrier) — needed for the phase rule.
    let mut arrivals: BTreeMap<(ThreadId, BarrierId), u32> = BTreeMap::new();
    // Per-channel push/pop sites, to recognize SPSC hand-offs.
    let mut chan_sites: BTreeMap<ChannelId, (Vec<Site>, Vec<Site>)> = BTreeMap::new();
    for t in &w.threads {
        for (i, s) in t.segments.iter().enumerate() {
            match s.op {
                SimOp::Barrier { barrier } => {
                    *arrivals.entry((t.thread, barrier)).or_insert(0) += 1;
                }
                SimOp::Push { chan } => {
                    chan_sites.entry(chan).or_default().0.push(Site::new(t.thread, i));
                }
                SimOp::Pop { chan } => {
                    chan_sites.entry(chan).or_default().1.push(Site::new(t.thread, i));
                }
                _ => {}
            }
        }
    }
    let spsc: Vec<Spsc> = chan_sites
        .into_values()
        .filter_map(|(pushes, pops)| {
            let producer = pushes.first()?.thread;
            let consumer = pops.first()?.thread;
            (producer != consumer
                && pushes.iter().all(|s| s.thread == producer)
                && pops.iter().all(|s| s.thread == consumer))
            .then(|| Spsc {
                producer,
                consumer,
                pushes: pushes.iter().map(|s| s.segment).collect(),
                pops: pops.iter().map(|s| s.segment).collect(),
            })
        })
        .collect();

    // Collect accesses per cell in deterministic (cell, thread, segment)
    // order.
    let mut cells: BTreeMap<AtomicId, Vec<Access>> = BTreeMap::new();
    for t in &w.threads {
        let mut phases: BTreeMap<BarrierId, u32> = BTreeMap::new();
        for (i, s) in t.segments.iter().enumerate() {
            if let Some((cell, kind)) = s.plain {
                let mut guards = BTreeSet::new();
                if i > 0 {
                    match t.segments[i - 1].op {
                        SimOp::Lock { lock, .. } => {
                            guards.insert(ResourceId::Lock(lock));
                        }
                        SimOp::Atomic { atomic } => {
                            guards.insert(ResourceId::Atomic(atomic));
                        }
                        _ => {}
                    }
                }
                if let Some(m) = s.nested {
                    guards.insert(ResourceId::Lock(m));
                }
                cells.entry(cell).or_default().push(Access {
                    site: Site::new(t.thread, i),
                    kind,
                    guards,
                    phases: phases.clone(),
                });
            }
            // The segment's own closing arrival orders *later* bodies only.
            if let SimOp::Barrier { barrier } = s.op {
                *phases.entry(barrier).or_insert(0) += 1;
            }
        }
    }

    for (cell, accesses) in cells {
        let report = classify(cell, &accesses, &arrivals, &spsc);
        if let (CellVerdict::PotentialRace, Some((a, b))) = (report.verdict, report.indicted) {
            r.advice = RecoveryAdvice::HybridCpr;
            r.push(
                Severity::Error,
                "potential-race",
                format!(
                    "cell {cell}: unsynchronized accesses at {a} and {b} share no lock, \
                     atomic, or barrier ordering"
                ),
                vec![a, b],
            );
        }
        r.cells.push(report);
    }
}

fn classify(
    cell: AtomicId,
    accesses: &[Access],
    arrivals: &BTreeMap<(ThreadId, BarrierId), u32>,
    spsc: &[Spsc],
) -> CellReport {
    let sites: Vec<Site> = accesses.iter().map(|a| a.site).collect();
    let single_thread = accesses
        .windows(2)
        .all(|p| p[0].site.thread == p[1].site.thread);
    let all_reads = accesses.iter().all(|a| a.kind == PlainKind::Read);
    if single_thread || all_reads {
        return CellReport {
            cell,
            verdict: CellVerdict::ProvenDrf,
            sites,
            indicted: None,
        };
    }
    for (i, a) in accesses.iter().enumerate() {
        for b in &accesses[i + 1..] {
            if a.site.thread == b.site.thread {
                continue; // program order
            }
            if a.kind == PlainKind::Read && b.kind == PlainKind::Read {
                continue; // reads never conflict
            }
            if !ordered(a, b, arrivals, spsc) {
                return CellReport {
                    cell,
                    verdict: CellVerdict::PotentialRace,
                    sites,
                    indicted: Some((a.site, b.site)),
                };
            }
        }
    }
    CellReport {
        cell,
        verdict: CellVerdict::Guarded,
        sites,
        indicted: None,
    }
}

/// Is the pair statically ordered — common guard, separated by barrier
/// phases (the access in the lower phase happens-before the higher-phase
/// one, provided the lower-phase thread keeps arriving up to that phase),
/// or carried by SPSC channel provenance in either direction?
fn ordered(
    a: &Access,
    b: &Access,
    arrivals: &BTreeMap<(ThreadId, BarrierId), u32>,
    spsc: &[Spsc],
) -> bool {
    if !a.guards.is_disjoint(&b.guards) {
        return true;
    }
    if chan_ordered(a, b, spsc) || chan_ordered(b, a, spsc) {
        return true;
    }
    for (&bar, &pa) in &a.phases {
        let pb = b.phases.get(&bar).copied().unwrap_or(0);
        if separated(bar, a, pa, pb, arrivals) || separated(bar, b, pb, pa, arrivals) {
            return true;
        }
    }
    // Barriers b has seen but a has not (phase 0 for a).
    for (&bar, &pb) in &b.phases {
        if !a.phases.contains_key(&bar) && separated(bar, a, 0, pb, arrivals) {
            return true;
        }
    }
    false
}

/// `early` at phase `pe` happens-before the other access at phase `pl` on
/// `bar` when `pe < pl` and `early`'s thread arrives at `bar` at least `pl`
/// times in total (so episode `pl` — which the later access waits behind —
/// transitively waits for `early`'s arrival `pe + 1`).
fn separated(
    bar: BarrierId,
    early: &Access,
    pe: u32,
    pl: u32,
    arrivals: &BTreeMap<(ThreadId, BarrierId), u32>,
) -> bool {
    pe < pl
        && arrivals
            .get(&(early.site.thread, bar))
            .copied()
            .unwrap_or(0)
            >= pl
}

/// SPSC provenance: producer access `a` happens-before consumer access `b`
/// when some hand-off `m` has the `m`-th push at or after `a`'s segment
/// (the push grant follows `a`'s body) and the `m`-th pop strictly before
/// `b`'s segment (`b`'s body runs after the pop completes). With pushes and
/// pops both ascending, the best candidate is the last pop that completes
/// before `b` — mirroring the dynamic detector's `ChanPop` edge, which
/// joins the producer's clock as of the matching push into the consumer.
/// One direction only: a FIFO carries no backpressure edge from consumer to
/// producer.
fn chan_ordered(a: &Access, b: &Access, spsc: &[Spsc]) -> bool {
    spsc.iter().any(|c| {
        a.site.thread == c.producer
            && b.site.thread == c.consumer
            && match c.pops.iter().rposition(|&q| q < b.site.segment) {
                Some(m) => m < c.pushes.len() && a.site.segment <= c.pushes[m],
                None => false,
            }
    })
}
