//! The structured result of a static analysis run.
//!
//! Everything in this module is plain data: deterministic, comparable, and
//! serializable through `gprs-telemetry`'s hand-rolled [`JsonWriter`] so the
//! report can be archived next to the telemetry artifacts without serde.

use crate::restart::RestartSummary;
use crate::shard::ShardPlan;
use gprs_core::ids::{AtomicId, GroupId, LockId, ThreadId};
use gprs_core::workload::Workload;
use gprs_telemetry::json::JsonWriter;
use std::fmt;

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Purely informational (e.g. pipeline-shape observations).
    Info,
    /// Suspicious but not provably fatal (e.g. a lock-order cycle that may
    /// never interleave badly).
    Warning,
    /// Provably wrong or unsound for selective restart (e.g. a potential
    /// data race, a `Pop` that can never be matched).
    Error,
}

impl Severity {
    /// A stable lower-case label for display and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A static program point: a segment of a logical thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// The logical thread.
    pub thread: ThreadId,
    /// The segment index within that thread.
    pub segment: usize,
}

impl Site {
    /// Creates a site.
    pub fn new(thread: ThreadId, segment: usize) -> Self {
        Site { thread, segment }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/seg{}", self.thread, self.segment)
    }
}

/// One severity-ranked finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// A stable machine-readable code (`potential-race`, `lock-cycle`, ...).
    pub code: &'static str,
    /// The human-readable message.
    pub message: String,
    /// The program points the finding indicts, in deterministic order.
    pub sites: Vec<Site>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.sites.is_empty() {
            write!(f, " (at ")?;
            for (i, s) in self.sites.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The verdict lattice for one shared cell touched via `Segment::plain`.
///
/// `ProvenDrf < Guarded < PotentialRace`: the analysis only ever moves a
/// cell up the lattice, and the workload's [`RecoveryAdvice`] is derived
/// from the join over all cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CellVerdict {
    /// All accesses are on one thread, or all accesses are reads: race-free
    /// by construction, no synchronization needed.
    ProvenDrf,
    /// Cross-thread conflicting accesses exist but every conflicting pair
    /// is ordered by a common lock/atomic guard or by barrier phases.
    Guarded,
    /// At least one conflicting pair shares no guard and no static
    /// happens-before edge — a data race the runtime may observe.
    PotentialRace,
}

impl CellVerdict {
    /// A stable label for display and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CellVerdict::ProvenDrf => "proven-drf",
            CellVerdict::Guarded => "guarded",
            CellVerdict::PotentialRace => "potential-race",
        }
    }
}

impl fmt::Display for CellVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-cell classification produced by the lockset pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// The shared cell (named by the atomic that aliases it).
    pub cell: AtomicId,
    /// Where the lattice placed it.
    pub verdict: CellVerdict,
    /// Every static access site, in `(thread, segment)` order.
    pub sites: Vec<Site>,
    /// For [`CellVerdict::PotentialRace`]: the first (in deterministic site
    /// order) conflicting pair with no ordering between them.
    pub indicted: Option<(Site, Site)>,
}

/// What recovery configuration the workload should run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAdvice {
    /// Every cell proven DRF or guarded: selective restart is sound and the
    /// dynamic race detector can be elided.
    Selective,
    /// At least one potential race: run hybrid recovery (selective restart
    /// escalating to basic/CPR scope on racy threads) with the dynamic
    /// detector armed.
    HybridCpr,
}

impl RecoveryAdvice {
    /// A stable label for display and JSON.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryAdvice::Selective => "selective",
            RecoveryAdvice::HybridCpr => "hybrid-cpr",
        }
    }
}

impl fmt::Display for RecoveryAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One stage of the suggested balance-aware schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAdvice {
    /// The suggested group id (its depth in the producer/consumer DAG).
    pub group: GroupId,
    /// The threads assigned to the stage, in id order.
    pub threads: Vec<ThreadId>,
    /// The suggested token weight (consecutive turns per rotation).
    pub weight: u32,
    /// Aggregate computation cycles across the stage's threads.
    pub work: u64,
    /// Aggregate synchronization operations (token demand) in the stage.
    pub sync_ops: u64,
}

/// A synthesized balance-aware group/weight assignment for a pipeline
/// workload, derived from the channel producer/consumer topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuggestedSchedule {
    /// The stages in pipeline order (group 0 = sources).
    pub stages: Vec<StageAdvice>,
}

impl SuggestedSchedule {
    /// True when the suggestion actually partitions the threads (more than
    /// one group) — the precondition for balance-aware to differ from
    /// round-robin.
    pub fn is_multi_group(&self) -> bool {
        self.stages.len() > 1
    }

    /// Returns a copy of `w` with every thread's group and weight replaced
    /// by the suggested assignment. Threads not covered by any stage keep
    /// their original group/weight.
    pub fn apply(&self, w: &Workload) -> Workload {
        let mut out = w.clone();
        for stage in &self.stages {
            for t in &stage.threads {
                let spec = &mut out.threads[t.raw() as usize];
                spec.group = stage.group;
                spec.weight = stage.weight;
            }
        }
        out
    }
}

/// The full report of one `analyze` run over a [`Workload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// The workload's name.
    pub workload: String,
    /// Number of logical threads analyzed.
    pub threads: usize,
    /// The rolled-up recovery advice (join over all cell verdicts).
    pub advice: RecoveryAdvice,
    /// Per-cell classification, in cell-id order.
    pub cells: Vec<CellReport>,
    /// Lock-acquisition-order edges (outer held while acquiring nested).
    pub lock_order_edges: Vec<(LockId, LockId)>,
    /// Cycles found in the lock-order graph (each rotated so the smallest
    /// lock id leads), i.e. potential deadlocks.
    pub lock_cycles: Vec<Vec<LockId>>,
    /// Synthesized balance-aware schedule, when the channel topology forms
    /// a (non-trivial, acyclic) pipeline.
    pub suggestion: Option<SuggestedSchedule>,
    /// Interference partition: provably independent order domains plus the
    /// residual cross-domain couplings.
    pub shard_plan: ShardPlan,
    /// Restartability verdicts and the static elision proofs.
    pub restart: RestartSummary,
    /// All findings, sorted most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report for `workload` (all passes still to run).
    pub fn new(workload: impl Into<String>, threads: usize) -> Self {
        AnalysisReport {
            workload: workload.into(),
            threads,
            advice: RecoveryAdvice::Selective,
            cells: Vec::new(),
            lock_order_edges: Vec::new(),
            lock_cycles: Vec::new(),
            suggestion: None,
            shard_plan: ShardPlan::default(),
            restart: RestartSummary::default(),
            diagnostics: Vec::new(),
        }
    }

    /// Appends a diagnostic (final ordering happens in `analyze`).
    pub(crate) fn push(
        &mut self,
        severity: Severity,
        code: &'static str,
        message: String,
        sites: Vec<Site>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity,
            code,
            message,
            sites,
        });
    }

    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Number of cells classified [`CellVerdict::PotentialRace`].
    pub fn potential_races(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.verdict == CellVerdict::PotentialRace)
            .count()
    }

    /// True when every cell is proven DRF or guarded *and* no structural
    /// error undermines the proof — the precondition for eliding the
    /// dynamic race detector while staying eligible for selective restart.
    pub fn race_free(&self) -> bool {
        self.advice == RecoveryAdvice::Selective && self.errors() == 0
    }

    /// Serializes the report into `w` as one JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object()
            .field_str("workload", &self.workload)
            .field_u64("threads", self.threads as u64)
            .field_str("advice", self.advice.label())
            .field_u64("errors", self.errors() as u64)
            .field_u64("warnings", self.warnings() as u64);
        w.key("cells").begin_array();
        for c in &self.cells {
            w.begin_object()
                .field_str("cell", &c.cell.to_string())
                .field_str("verdict", c.verdict.label());
            w.key("sites").begin_array();
            for s in &c.sites {
                w.string(&s.to_string());
            }
            w.end_array();
            if let Some((a, b)) = c.indicted {
                w.key("indicted").begin_array();
                w.string(&a.to_string()).string(&b.to_string());
                w.end_array();
            }
            w.end_object();
        }
        w.end_array();
        w.key("lock_order_edges").begin_array();
        for (a, b) in &self.lock_order_edges {
            w.string(&format!("{a}->{b}"));
        }
        w.end_array();
        w.key("lock_cycles").begin_array();
        for cyc in &self.lock_cycles {
            w.begin_array();
            for l in cyc {
                w.string(&l.to_string());
            }
            w.end_array();
        }
        w.end_array();
        w.key("suggested_schedule");
        match &self.suggestion {
            None => {
                w.begin_array().end_array();
            }
            Some(sugg) => {
                w.begin_array();
                for st in &sugg.stages {
                    w.begin_object()
                        .field_str("group", &st.group.to_string())
                        .field_u64("weight", u64::from(st.weight))
                        .field_u64("work", st.work)
                        .field_u64("sync_ops", st.sync_ops);
                    w.key("threads").begin_array();
                    for t in &st.threads {
                        w.string(&t.to_string());
                    }
                    w.end_array().end_object();
                }
                w.end_array();
            }
        }
        w.key("shard_plan");
        self.shard_plan.write_json(w);
        w.key("restartability");
        self.restart.write_json(w);
        w.key("diagnostics").begin_array();
        for d in &self.diagnostics {
            w.begin_object()
                .field_str("severity", d.severity.label())
                .field_str("code", d.code)
                .field_str("message", &d.message);
            w.key("sites").begin_array();
            for s in &d.sites {
                w.string(&s.to_string());
            }
            w.end_array().end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// The report as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} threads, advice {}, {} errors, {} warnings",
            self.workload,
            self.threads,
            self.advice,
            self.errors(),
            self.warnings()
        )?;
        for c in &self.cells {
            write!(f, "  cell {}: {}", c.cell, c.verdict)?;
            if let Some((a, b)) = c.indicted {
                write!(f, " ({a} vs {b})")?;
            }
            writeln!(f)?;
        }
        for cyc in &self.lock_cycles {
            write!(f, "  lock cycle:")?;
            for l in cyc {
                write!(f, " {l} ->")?;
            }
            writeln!(f, " {}", cyc[0])?;
        }
        for line in self.shard_plan.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "  {}", self.restart)?;
        if let Some(sugg) = &self.suggestion {
            writeln!(f, "  suggested balance-aware schedule:")?;
            for st in &sugg.stages {
                write!(
                    f,
                    "    {} (weight {}, work {}, {} sync ops):",
                    st.group, st.weight, st.work, st.sync_ops
                )?;
                for t in &st.threads {
                    write!(f, " {t}")?;
                }
                writeln!(f)?;
            }
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}
