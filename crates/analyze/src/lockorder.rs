//! Lock-acquisition-order graph and potential-deadlock detection.
//!
//! The workload vocabulary has exactly one hold-and-wait pattern: a segment
//! with a [`nested`](gprs_core::workload::Segment::nested) critical section
//! whose own sub-thread already holds an outer lock (its predecessor op was
//! [`SimOp::Lock`]). Each such pattern contributes an `outer -> nested`
//! edge; a cycle in the resulting digraph is a potential deadlock — the
//! interleaving that realizes it may never occur, hence a warning, not an
//! error. Consecutive top-level acquisitions contribute *no* edge: with the
//! first lock released before the next is requested there is no
//! hold-and-wait, and the benchmarks' rotating-lock patterns would
//! otherwise drown the graph in false cycles.

use crate::report::{AnalysisReport, Severity, Site};
use gprs_core::ids::LockId;
use gprs_core::workload::{SimOp, Workload};
use std::collections::{BTreeMap, BTreeSet};

pub(crate) fn run(w: &Workload, r: &mut AnalysisReport) {
    // outer -> nested edges with one representative site each.
    let mut edges: BTreeMap<(LockId, LockId), Site> = BTreeMap::new();
    for t in &w.threads {
        for (i, s) in t.segments.iter().enumerate() {
            let Some(m) = s.nested else { continue };
            if i == 0 {
                continue;
            }
            if let SimOp::Lock { lock, .. } = t.segments[i - 1].op {
                if lock != m {
                    edges.entry((lock, m)).or_insert(Site::new(t.thread, i));
                }
            }
        }
    }
    r.lock_order_edges = edges.keys().copied().collect();

    let mut adj: BTreeMap<LockId, Vec<LockId>> = BTreeMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    for cycle in find_cycles(&adj) {
        let sites: Vec<Site> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .filter_map(|(&a, &b)| edges.get(&(a, b)).copied())
            .collect();
        let mut path = String::new();
        for l in &cycle {
            path.push_str(&format!("{l} -> "));
        }
        path.push_str(&cycle[0].to_string());
        r.push(
            Severity::Warning,
            "lock-cycle",
            format!("potential deadlock: lock acquisition order cycle {path}"),
            sites,
        );
        r.lock_cycles.push(cycle);
    }
}

/// All elementary cycles reachable by DFS back-edges, canonicalized
/// (rotated so the smallest lock leads) and deduplicated. Not an exhaustive
/// Johnson enumeration — one witness per back-edge is enough to warn.
fn find_cycles(adj: &BTreeMap<LockId, Vec<LockId>>) -> Vec<Vec<LockId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<LockId, Color> = adj.keys().map(|&k| (k, Color::White)).collect();
    let mut found: BTreeSet<Vec<LockId>> = BTreeSet::new();
    let mut stack: Vec<LockId> = Vec::new();

    fn dfs(
        v: LockId,
        adj: &BTreeMap<LockId, Vec<LockId>>,
        color: &mut BTreeMap<LockId, Color>,
        stack: &mut Vec<LockId>,
        found: &mut BTreeSet<Vec<LockId>>,
    ) {
        color.insert(v, Color::Grey);
        stack.push(v);
        for &n in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            match color.get(&n).copied().unwrap_or(Color::White) {
                Color::White => dfs(n, adj, color, stack, found),
                Color::Grey => {
                    // Back edge: the cycle is the stack suffix from `n`.
                    let start = stack.iter().position(|&x| x == n).unwrap();
                    let mut cyc: Vec<LockId> = stack[start..].to_vec();
                    let min = cyc
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| **l)
                        .map(|(i, _)| i)
                        .unwrap();
                    cyc.rotate_left(min);
                    found.insert(cyc);
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color.insert(v, Color::Black);
    }

    let keys: Vec<LockId> = adj.keys().copied().collect();
    for k in keys {
        if color[&k] == Color::White {
            dfs(k, adj, &mut color, &mut stack, &mut found);
        }
    }
    found.into_iter().collect()
}
