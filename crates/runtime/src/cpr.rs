//! Conventional coordinated checkpoint-and-recovery (P-CPR) baseline
//! executor (`§2.3`, Figure 3(a)–(b)).
//!
//! Runs the same [`crate::program::ThreadProgram`]s as the GPRS runtime, but
//! with the conventional strategy the paper compares against:
//!
//! * **No deterministic ordering** — synchronization operations are granted
//!   in arrival order (modeled as lowest-ready-thread-first for test
//!   repeatability; a real Pthreads run would be timing-dependent).
//! * **Coordinated checkpoints** — periodically (every `ckpt_every` grants,
//!   a deterministic proxy for the paper's timer), granting stops, running
//!   steps drain behind the global barrier, and the *entire* program state
//!   — every thread's application-level checkpoint and pending request,
//!   every lock's data, channels, atomics, barriers, allocator blocks — is
//!   recorded.
//! * **Global rollback** — every exception discards all work since the last
//!   checkpoint and restores that snapshot; threads spawned after it vanish
//!   (their spawn re-executes), and file output commits only at
//!   checkpoints (the CPR output-commit point).
//!
//! The contrast with GPRS's selective restart is the paper's headline
//! comparison; the benches drive both executors over the same programs.

use crate::ctx::{CtxBackend, StepCtx};
use crate::engine::EXTERNAL_RING;
use crate::handles::Recoverable;
use crate::program::{DynThread, Payload, SpawnSpec, Step, ThreadProgram};
use crate::report::{RunError, RunStats};
use gprs_core::chaos::{ChaosEvent, ChaosPlan, ChaosTrigger};
use gprs_core::exception::ExceptionScope;
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, GroupId, LockId, SubThreadId, ThreadId};
use gprs_telemetry::{
    RetiredOrderHash, ScheduleHash, Telemetry, TelemetryConfig, TelemetrySummary, TraceEvent,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A snapshot-able pending synchronization request. `Spawn` and `Exit` are
/// granted eagerly before any checkpoint, so snapshots never hold them.
enum CprWant {
    Start,
    Lock(LockId),
    Push(ChannelId, Payload),
    Pop(ChannelId),
    FetchAdd(AtomicId, u64),
    Barrier(BarrierId),
    Join(ThreadId),
    Serialized,
    Spawn(Option<SpawnSpec>),
    Exit(Payload),
}

impl CprWant {
    /// Clones the want for a checkpoint.
    ///
    /// # Panics
    /// Panics on `Spawn` — checkpoints are gated on spawn wants draining.
    fn snapshot(&self) -> CprWant {
        match self {
            CprWant::Start => CprWant::Start,
            CprWant::Lock(l) => CprWant::Lock(*l),
            CprWant::Push(c, v) => CprWant::Push(*c, v.clone()),
            CprWant::Pop(c) => CprWant::Pop(*c),
            CprWant::FetchAdd(a, d) => CprWant::FetchAdd(*a, *d),
            CprWant::Barrier(b) => CprWant::Barrier(*b),
            CprWant::Join(t) => CprWant::Join(*t),
            CprWant::Serialized => CprWant::Serialized,
            CprWant::Exit(v) => CprWant::Exit(v.clone()),
            CprWant::Spawn(_) => unreachable!("checkpoints drain spawn requests first"),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CprThState {
    Active,
    Parked,
    Done,
}

struct CprThread {
    program: Option<Box<dyn DynThread>>,
    #[allow(dead_code)] // kept for API symmetry with the GPRS executor
    group: GroupId,
    #[allow(dead_code)]
    weight: u32,
    pending: Option<CprWant>,
    popped: Option<Payload>,
    atomic_prev: Option<u64>,
    joined: Option<Payload>,
    spawned: Option<ThreadId>,
    state: CprThState,
    running: bool,
}

/// A thread's pending step inputs: popped payload, fetch-add observation,
/// join payload, spawned child.
type StepInputs = (Option<Payload>, Option<u64>, Option<Payload>, Option<ThreadId>);

/// Everything restored by a rollback.
struct CprSnapshot {
    thread_keys: BTreeSet<ThreadId>,
    programs: BTreeMap<ThreadId, Box<dyn std::any::Any + Send>>,
    wants: BTreeMap<ThreadId, Option<CprWant>>,
    inputs: BTreeMap<ThreadId, StepInputs>,
    states: BTreeMap<ThreadId, CprThState>,
    chans: BTreeMap<ChannelId, VecDeque<Payload>>,
    locks: BTreeMap<LockId, Box<dyn Recoverable>>,
    atomics: BTreeMap<AtomicId, u64>,
    barrier_waiting: BTreeMap<BarrierId, Vec<ThreadId>>,
    blocks: BTreeMap<u64, Vec<u8>>,
    next_block: u64,
    outputs: BTreeMap<ThreadId, Payload>,
    live: usize,
}

pub(crate) struct CprInner {
    threads: BTreeMap<ThreadId, CprThread>,
    next_thread: u32,
    chans: BTreeMap<ChannelId, VecDeque<Payload>>,
    locks: BTreeMap<LockId, (bool, Option<Box<dyn Recoverable>>)>,
    atomics: BTreeMap<AtomicId, u64>,
    barriers: BTreeMap<BarrierId, (u32, Vec<ThreadId>)>,
    files: BTreeMap<u64, (String, Vec<u8>, Vec<u8>)>,
    blocks: BTreeMap<u64, Vec<u8>>,
    next_block: u64,
    outputs: BTreeMap<ThreadId, Payload>,
    live: usize,
    running: usize,
    grants_since_ckpt: u64,
    ckpt_every: u64,
    ckpt_requested: bool,
    rollback_requested: u64,
    snapshot: Option<CprSnapshot>,
    stats: RunStats,
    checkpoints: u64,
    rollbacks: u64,
    telemetry: Arc<Telemetry>,
    poisoned: Option<String>,
    chaos: Option<CprChaosState>,
}

/// Chaos-plan cursor for the CPR baseline (see [`gprs_core::chaos`]).
/// Every global exception is a whole-machine rollback under CPR, so the
/// plan's victim selector is irrelevant here; only trigger, scope and
/// burst apply. `MidRecovery(n)` events queue their rollback at the end
/// of the `n`-th rollback, while the machine is still quiesced — the
/// worker loop performs the overlapping rollback before granting again.
struct CprChaosState {
    grant_events: Vec<ChaosEvent>,
    next_grant: usize,
    recovery_events: Vec<ChaosEvent>,
    next_recovery: usize,
}

impl CprChaosState {
    fn new(plan: &ChaosPlan) -> Self {
        CprChaosState {
            grant_events: plan.grant_events(),
            next_grant: 0,
            recovery_events: plan.recovery_events(),
            next_recovery: 0,
        }
    }
}

/// Shared state of a CPR run. Two waiter classes, two condvars: workers
/// seeking a grant park on `cv`; steps blocked on a nested lock park on
/// `lock_cv`. The split is what makes `notify_one` sound — a single mixed
/// queue could hand a lock-release wakeup to a seeker (or vice versa) and
/// strand the waiter that actually needed it.
pub(crate) struct CprShared {
    inner: Mutex<CprInner>,
    /// Grant seekers (one-at-a-time wakeup chains; broadcast on finish,
    /// poison, rollback and checkpoint).
    cv: Condvar,
    /// Steps blocked in [`CprShared::acquire_lock_blocking`].
    lock_cv: Condvar,
    /// Workers parked on `cv` / `lock_cv`. Mutated only while holding
    /// `inner` (see the engine's `Shared::cv_sleepers` for the exactness
    /// argument), so notify paths skip the kernel wake when nobody waits.
    cv_sleepers: AtomicUsize,
    lock_sleepers: AtomicUsize,
}

impl CprShared {
    fn count_wakeup(&self, g: &CprInner) {
        if g.telemetry.enabled() {
            g.telemetry.metrics.wakeups_issued.inc();
        }
    }

    /// `cv.notify_one()` gated on the exact sleeper count (callers hold
    /// `inner`).
    fn wake_one_seeker(&self, g: &CprInner) {
        if self.cv_sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.count_wakeup(g);
        self.cv.notify_one();
    }

    /// `lock_cv.notify_all()` gated on the exact sleeper count.
    fn wake_lock_waiters(&self, g: &CprInner) {
        if self.lock_sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.count_wakeup(g);
        self.lock_cv.notify_all();
    }

    pub(crate) fn release_lock(&self, lock: LockId, data: Box<dyn Recoverable>) {
        let mut g = self.inner.lock();
        let entry = g.locks.get_mut(&lock).expect("registered lock");
        entry.0 = false;
        entry.1 = Some(data);
        // Nested waiters plus one seeker (a Lock want may be grantable now).
        self.wake_lock_waiters(&g);
        self.wake_one_seeker(&g);
    }

    pub(crate) fn acquire_lock_blocking(&self, lock: LockId) -> Box<dyn Recoverable> {
        let mut g = self.inner.lock();
        let mut woke = false;
        loop {
            assert!(
                g.poisoned.is_none(),
                "CPR executor poisoned while waiting for a nested lock"
            );
            let entry = g.locks.get_mut(&lock).expect("registered lock");
            if !entry.0 {
                if let Some(d) = entry.1.take() {
                    entry.0 = true;
                    return d;
                }
            }
            if woke && g.telemetry.enabled() {
                g.telemetry.metrics.wakeups_spurious.inc();
            }
            self.lock_sleepers.fetch_add(1, Ordering::Relaxed);
            self.lock_cv.wait(&mut g);
            self.lock_sleepers.fetch_sub(1, Ordering::Relaxed);
            woke = true;
        }
    }

    pub(crate) fn alloc(&self, size: usize) -> u64 {
        let mut g = self.inner.lock();
        let id = g.next_block;
        g.next_block += 1;
        g.blocks.insert(id, vec![0; size]);
        g.stats.allocs += 1;
        id
    }

    pub(crate) fn free(&self, block: u64) {
        let mut g = self.inner.lock();
        g.blocks.remove(&block).expect("double free of pool block");
    }

    pub(crate) fn with_block<R>(&self, block: u64, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        let mut g = self.inner.lock();
        f(g.blocks.get_mut(&block).expect("block freed"))
    }

    pub(crate) fn read_block<R>(&self, block: u64, f: impl FnOnce(&[u8]) -> R) -> R {
        let g = self.inner.lock();
        f(g.blocks.get(&block).expect("block freed"))
    }

    /// Plain (unsynchronized) load of a shared atomic cell. The CPR
    /// baseline rolls back *all* state at once, so plain accesses need no
    /// special recovery handling (and no race detection — global rollback
    /// does not depend on data-race freedom).
    pub(crate) fn plain_load(&self, atomic: AtomicId) -> u64 {
        *self.inner.lock().atomics.get(&atomic).expect("registered atomic")
    }

    /// Plain (unsynchronized) store; see [`Self::plain_load`]. The cell is
    /// part of the coordinated snapshot, so rollback restores it.
    pub(crate) fn plain_store(&self, atomic: AtomicId, value: u64) {
        self.inner
            .lock()
            .atomics
            .insert(atomic, value)
            .expect("registered atomic");
    }
}

/// Builder for the CPR baseline executor, mirroring
/// [`crate::GprsBuilder`]'s registration API so the same programs run on
/// both executors.
pub struct CprBuilder {
    workers: usize,
    ckpt_every: u64,
    telemetry: TelemetryConfig,
    inner: CprInner,
    next_lock: u64,
    next_chan: u64,
    next_atomic: u64,
    next_barrier: u64,
    next_file: u64,
}

impl std::fmt::Debug for CprBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CprBuilder")
            .field("workers", &self.workers)
            .field("ckpt_every", &self.ckpt_every)
            .finish_non_exhaustive()
    }
}

impl Default for CprBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CprBuilder {
    /// A CPR executor checkpointing every 64 grants on 4 workers.
    pub fn new() -> Self {
        CprBuilder {
            workers: 4,
            ckpt_every: 64,
            telemetry: TelemetryConfig::default(),
            inner: CprInner {
                threads: BTreeMap::new(),
                next_thread: 0,
                chans: BTreeMap::new(),
                locks: BTreeMap::new(),
                atomics: BTreeMap::new(),
                barriers: BTreeMap::new(),
                files: BTreeMap::new(),
                blocks: BTreeMap::new(),
                next_block: 0,
                outputs: BTreeMap::new(),
                live: 0,
                running: 0,
                grants_since_ckpt: 0,
                ckpt_every: 64,
                ckpt_requested: false,
                rollback_requested: 0,
                snapshot: None,
                stats: RunStats::default(),
                checkpoints: 0,
                rollbacks: 0,
                telemetry: Arc::new(Telemetry::disabled()),
                poisoned: None,
                chaos: None,
            },
            next_lock: 0,
            next_chan: 0,
            next_atomic: 0,
            next_barrier: 0,
            next_file: 0,
        }
    }

    /// Number of OS workers.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Grants between coordinated checkpoints (checkpoint frequency).
    pub fn checkpoint_every(mut self, grants: u64) -> Self {
        self.ckpt_every = grants.max(1);
        self
    }

    /// Telemetry configuration (event rings + metrics).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = cfg;
        self
    }

    /// Attaches a deterministic chaos-injection plan (the CPR counterpart
    /// of [`crate::GprsBuilder::chaos`]); every global event requests a
    /// whole-machine rollback. An empty plan is a no-op.
    pub fn chaos(mut self, plan: &ChaosPlan) -> Self {
        self.inner.chaos = (!plan.is_empty()).then(|| CprChaosState::new(plan));
        self
    }

    /// Registers a mutex owning `init`.
    pub fn mutex<T: Clone + Send + 'static>(
        &mut self,
        init: T,
    ) -> crate::handles::MutexHandle<T> {
        let id = LockId::new(self.next_lock);
        self.next_lock += 1;
        self.inner.locks.insert(id, (false, Some(Box::new(init))));
        crate::handles::MutexHandle {
            raw: crate::handles::RawMutex(id),
            _t: std::marker::PhantomData,
        }
    }

    /// Registers a FIFO channel.
    pub fn channel<T: Send + Sync + 'static>(&mut self) -> crate::handles::ChannelHandle<T> {
        let id = ChannelId::new(self.next_chan);
        self.next_chan += 1;
        self.inner.chans.insert(id, VecDeque::new());
        crate::handles::ChannelHandle {
            raw: crate::handles::RawChannel(id),
            _t: std::marker::PhantomData,
        }
    }

    /// Registers an atomic `u64`.
    pub fn atomic(&mut self, init: u64) -> crate::handles::AtomicHandle {
        let id = AtomicId::new(self.next_atomic);
        self.next_atomic += 1;
        self.inner.atomics.insert(id, init);
        crate::handles::AtomicHandle(id)
    }

    /// Registers a barrier.
    pub fn barrier(&mut self, participants: u32) -> crate::handles::BarrierHandle {
        let id = BarrierId::new(self.next_barrier);
        self.next_barrier += 1;
        self.inner.barriers.insert(id, (participants, Vec::new()));
        crate::handles::BarrierHandle(id, participants)
    }

    /// Registers an output file (committed at checkpoints).
    pub fn file(&mut self, name: impl Into<String>) -> crate::handles::FileHandle {
        let id = self.next_file;
        self.next_file += 1;
        self.inner
            .files
            .insert(id, (name.into(), Vec::new(), Vec::new()));
        crate::handles::FileHandle(id)
    }

    /// Registers an initial thread.
    pub fn thread<P>(&mut self, program: P, group: GroupId, weight: u32) -> ThreadId
    where
        P: ThreadProgram,
        P::Snapshot: Sized,
    {
        let tid = ThreadId::new(self.inner.next_thread);
        self.inner.next_thread += 1;
        self.inner.threads.insert(
            tid,
            CprThread {
                program: Some(Box::new(program)),
                group,
                weight,
                pending: Some(CprWant::Start),
                popped: None,
                atomic_prev: None,
                joined: None,
                spawned: None,
                state: CprThState::Active,
                running: false,
            },
        );
        self.inner.live += 1;
        tid
    }

    /// Finalizes the executor.
    pub fn build(mut self) -> CprRuntime {
        self.inner.ckpt_every = self.ckpt_every;
        self.inner.telemetry = Arc::new(Telemetry::new(&self.telemetry, self.workers));
        let workers = self.workers;
        CprRuntime {
            shared: Arc::new(CprShared {
                inner: Mutex::new(self.inner),
                cv: Condvar::new(),
                lock_cv: Condvar::new(),
                cv_sleepers: AtomicUsize::new(0),
                lock_sleepers: AtomicUsize::new(0),
            }),
            workers,
        }
    }
}

/// A configured CPR baseline run.
pub struct CprRuntime {
    shared: Arc<CprShared>,
    workers: usize,
}

impl std::fmt::Debug for CprRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CprRuntime")
            .field("workers", &self.workers)
            .finish()
    }
}

/// Report of a CPR run.
#[derive(Debug)]
pub struct CprReport {
    /// Shared counter block (grants, spawns, allocs; GPRS-specific recovery
    /// fields stay zero).
    pub stats: RunStats,
    /// Coordinated checkpoints taken.
    pub checkpoints: u64,
    /// Global rollbacks performed.
    pub rollbacks: u64,
    /// Thread outputs.
    pub outputs: BTreeMap<ThreadId, Payload>,
    /// Committed file contents.
    pub files: BTreeMap<u64, (String, Vec<u8>)>,
    /// End-of-run telemetry (CPR counters/events; the determinism hashes
    /// stay empty — the baseline is timing-dependent by design).
    pub telemetry: TelemetrySummary,
}

impl CprReport {
    /// Typed access to a thread's exit value.
    ///
    /// # Panics
    /// Panics if absent or on a type mismatch.
    pub fn output<T: Clone + Send + Sync + 'static>(&self, thread: ThreadId) -> T {
        crate::program::payload_to(
            self.outputs
                .get(&thread)
                .unwrap_or_else(|| panic!("{thread} produced no output")),
        )
    }
}

/// Injects exceptions into a CPR run: each forces one global rollback.
#[derive(Clone)]
pub struct CprController {
    shared: Arc<CprShared>,
}

impl std::fmt::Debug for CprController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CprController")
    }
}

impl CprController {
    /// Requests a global rollback (every exception is global under CPR).
    pub fn inject(&self) {
        let mut g = self.shared.inner.lock();
        g.rollback_requested += 1;
        g.stats.exceptions += 1;
        drop(g);
        self.shared.cv.notify_all();
    }

    /// Whether the program has finished.
    pub fn is_finished(&self) -> bool {
        let g = self.shared.inner.lock();
        g.live == 0 && g.running == 0
    }
}

impl CprRuntime {
    /// A controller for exception injection.
    pub fn controller(&self) -> CprController {
        CprController {
            shared: self.shared.clone(),
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    /// Returns [`RunError::Poisoned`] on a step panic.
    pub fn run(self) -> Result<CprReport, RunError> {
        let mut joins = Vec::new();
        for ix in 0..self.workers {
            let shared = self.shared.clone();
            joins.push(
                std::thread::Builder::new()
                    .name(format!("cpr-worker-{ix}"))
                    .spawn(move || cpr_worker(&shared, ix))
                    .expect("spawn worker"),
            );
        }
        for j in joins {
            j.join().expect("workers do not panic");
        }
        let mut g = self.shared.inner.lock();
        if let Some(msg) = g.poisoned.take() {
            return Err(RunError::Poisoned(msg));
        }
        // Program completion is the final commit point.
        let files = g
            .files
            .iter_mut()
            .map(|(&id, (name, committed, staged))| {
                committed.extend_from_slice(staged);
                staged.clear();
                (id, (name.clone(), committed.clone()))
            })
            .collect();
        let telemetry = g.telemetry.summarize(
            &ScheduleHash::new(),
            &RetiredOrderHash::new(),
            Vec::new(),
        );
        Ok(CprReport {
            stats: g.stats,
            checkpoints: g.checkpoints,
            rollbacks: g.rollbacks,
            outputs: std::mem::take(&mut g.outputs),
            files,
            telemetry,
        })
    }
}

impl CprInner {
    fn grantable(&self, tid: ThreadId) -> bool {
        let t = &self.threads[&tid];
        match t.pending.as_ref() {
            None => false,
            Some(CprWant::Pop(c)) => self.chans.get(c).is_some_and(|q| !q.is_empty()),
            Some(CprWant::Lock(l)) => {
                self.locks.get(l).is_some_and(|(held, d)| !held && d.is_some())
            }
            Some(CprWant::Join(j)) => self
                .threads
                .get(j)
                .is_some_and(|r| r.state == CprThState::Done),
            Some(CprWant::Serialized) => self.running == 0,
            Some(_) => true,
        }
    }

    /// Checkpoints require quiescence and no pending spawn/exit requests
    /// (which are not snapshot-able / shrink the thread set).
    fn ckpt_blocked(&self) -> bool {
        self.running > 0
            || self
                .threads
                .values()
                .any(|t| matches!(t.pending, Some(CprWant::Spawn(_)) | Some(CprWant::Exit(_))))
    }

    fn take_checkpoint(&mut self) {
        let mut programs = BTreeMap::new();
        let mut wants = BTreeMap::new();
        let mut inputs = BTreeMap::new();
        let mut states = BTreeMap::new();
        for (&tid, t) in &self.threads {
            programs.insert(tid, t.program.as_ref().expect("quiesced").save());
            wants.insert(tid, t.pending.as_ref().map(CprWant::snapshot));
            inputs.insert(
                tid,
                (t.popped.clone(), t.atomic_prev, t.joined.clone(), t.spawned),
            );
            states.insert(tid, t.state);
        }
        self.snapshot = Some(CprSnapshot {
            thread_keys: self.threads.keys().copied().collect(),
            programs,
            wants,
            inputs,
            states,
            chans: self.chans.clone(),
            locks: self
                .locks
                .iter()
                .map(|(&l, (_, d))| (l, d.as_ref().expect("quiesced").clone_box()))
                .collect(),
            atomics: self.atomics.clone(),
            barrier_waiting: self
                .barriers
                .iter()
                .map(|(&b, (_, w))| (b, w.clone()))
                .collect(),
            blocks: self.blocks.clone(),
            next_block: self.next_block,
            outputs: self.outputs.clone(),
            live: self.live,
        });
        // Checkpoints are the CPR output-commit points.
        for (_, committed, staged) in self.files.values_mut() {
            committed.extend_from_slice(staged);
            staged.clear();
        }
        self.checkpoints += 1;
        self.grants_since_ckpt = 0;
        self.ckpt_requested = false;
        if self.telemetry.enabled() {
            // Pool blocks are the only byte-sized state; the rest (programs,
            // queues, locks) is opaque boxes.
            let bytes: u64 = self.blocks.values().map(|b| b.len() as u64).sum();
            self.telemetry.metrics.cpr_barriers.inc();
            self.telemetry.metrics.cpr_records.inc();
            self.telemetry.metrics.checkpoint_size.record(bytes);
            self.telemetry.metrics.checkpoint_bytes.add(bytes);
            let epoch = self.checkpoints;
            self.telemetry
                .record(EXTERNAL_RING, TraceEvent::CprBarrier { epoch });
            self.telemetry
                .record(EXTERNAL_RING, TraceEvent::CprRecord { epoch, bytes });
        }
    }

    /// Fires chaos events due at the current grant count (see
    /// [`CprChaosState`]). Global events request rollbacks; local ones are
    /// handled precisely on the faulting context (counted, no rollback).
    fn chaos_tick_grant(&mut self) {
        let Some(mut cs) = self.chaos.take() else {
            return;
        };
        while let Some(ev) = cs.grant_events.get(cs.next_grant) {
            let due = match ev.trigger {
                ChaosTrigger::AtGrant(n) => n <= self.stats.grants,
                ChaosTrigger::MidRecovery(_) => unreachable!("grant_events filtered"),
            };
            if !due {
                break;
            }
            let ev = ev.clone();
            cs.next_grant += 1;
            self.chaos_fire(&ev);
        }
        self.chaos = Some(cs);
    }

    /// Fires chaos events keyed to the rollback that just completed, while
    /// the machine is still quiesced — the requested rollback overlaps the
    /// one in flight (recovery-during-recovery on the baseline).
    fn chaos_tick_rollback(&mut self) {
        let Some(mut cs) = self.chaos.take() else {
            return;
        };
        while let Some(ev) = cs.recovery_events.get(cs.next_recovery) {
            let due = match ev.trigger {
                ChaosTrigger::MidRecovery(n) => n <= self.rollbacks,
                ChaosTrigger::AtGrant(_) => unreachable!("recovery_events filtered"),
            };
            if !due {
                break;
            }
            let ev = ev.clone();
            cs.next_recovery += 1;
            self.chaos_fire(&ev);
        }
        self.chaos = Some(cs);
    }

    /// Mirrors [`CprController::inject`] for each burst member.
    fn chaos_fire(&mut self, ev: &ChaosEvent) {
        for _ in 0..ev.burst.max(1) {
            self.stats.exceptions += 1;
            if ev.scope == ExceptionScope::Local {
                self.stats.exceptions_ignored += 1;
            } else {
                self.rollback_requested += 1;
            }
        }
    }

    fn rollback(&mut self) {
        self.rollback_requested = self.rollback_requested.saturating_sub(1);
        let Some(snap) = self.snapshot.as_ref() else {
            // No checkpoint yet: nothing to roll back to; the paper's
            // systems would restart the program from scratch. Early
            // injections are dropped (counted as ignored).
            self.stats.exceptions_ignored += 1;
            return;
        };
        let keys: Vec<ThreadId> = self.threads.keys().copied().collect();
        for k in keys {
            if !snap.thread_keys.contains(&k) {
                self.threads.remove(&k);
            }
        }
        for (&tid, prog_snap) in &snap.programs {
            let t = self.threads.get_mut(&tid).expect("snapshotted thread");
            t.program
                .as_mut()
                .expect("quiesced")
                .restore_from(prog_snap.as_ref());
            t.pending = snap.wants[&tid].as_ref().map(CprWant::snapshot);
            let (p, a, j, s) = &snap.inputs[&tid];
            t.popped = p.clone();
            t.atomic_prev = *a;
            t.joined = j.clone();
            t.spawned = *s;
            t.state = snap.states[&tid];
        }
        self.chans = snap.chans.clone();
        for (&l, data) in &snap.locks {
            self.locks.insert(l, (false, Some(data.clone_box())));
        }
        self.atomics = snap.atomics.clone();
        for (&b, w) in &snap.barrier_waiting {
            if let Some((_, waiting)) = self.barriers.get_mut(&b) {
                *waiting = w.clone();
            }
        }
        self.blocks = snap.blocks.clone();
        self.next_block = snap.next_block;
        self.outputs = snap.outputs.clone();
        self.live = snap.live;
        for (_, _, staged) in self.files.values_mut() {
            staged.clear();
        }
        self.rollbacks += 1;
        self.stats.squashed += 1;
        self.grants_since_ckpt = 0;
        if self.telemetry.enabled() {
            self.telemetry.metrics.cpr_restores.inc();
            self.telemetry
                .record(EXTERNAL_RING, TraceEvent::CprRestore { epoch: self.checkpoints });
        }
        self.chaos_tick_rollback();
    }
}

struct CprTask {
    tid: ThreadId,
    program: Box<dyn DynThread>,
    popped: Option<Payload>,
    atomic_prev: Option<u64>,
    joined: Option<Payload>,
    spawned: Option<ThreadId>,
    lock_out: Option<(LockId, Box<dyn Recoverable>)>,
}

fn cpr_worker(shared: &Arc<CprShared>, worker_ix: usize) {
    loop {
        let task = {
            let mut g = shared.inner.lock();
            'find: loop {
                // Rollback requests gate the terminal check: an exception
                // injected at one of the final grants still rolls the
                // machine back to its last checkpoint (restoring `live`)
                // instead of being dropped by an early finish.
                if g.rollback_requested > 0 && g.poisoned.is_none() {
                    if g.running == 0 {
                        g.rollback();
                        // Rollback rewrites global state: broadcast (rare).
                        shared.cv.notify_all();
                        continue;
                    }
                    shared.cv_sleepers.fetch_add(1, Ordering::Relaxed);
                    shared.cv.wait(&mut g);
                    shared.cv_sleepers.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
                if g.poisoned.is_some() || (g.live == 0 && g.running == 0) {
                    // Terminal: every waiter class must see it.
                    shared.cv.notify_all();
                    shared.lock_cv.notify_all();
                    return;
                }
                if g.grants_since_ckpt >= g.ckpt_every {
                    g.ckpt_requested = true;
                }
                if g.ckpt_requested && !g.ckpt_blocked() {
                    g.take_checkpoint();
                    // Checkpoint unblocks every drained seeker: broadcast
                    // (bounded by ckpt_every, not per-grant).
                    shared.cv.notify_all();
                    continue;
                }
                let only_drain = g.ckpt_requested;
                let tids: Vec<ThreadId> = g.threads.keys().copied().collect();
                let mut structural_grant = false;
                for tid in tids {
                    let t = &g.threads[&tid];
                    if t.running || t.state != CprThState::Active || t.pending.is_none() {
                        continue;
                    }
                    let structural = matches!(
                        t.pending,
                        Some(CprWant::Spawn(_)) | Some(CprWant::Exit(_))
                    );
                    if only_drain && !structural {
                        continue;
                    }
                    if !g.grantable(tid) {
                        continue;
                    }
                    match grant_cpr(&mut g, tid) {
                        Some(task) => {
                            g.stats.grants += 1;
                            g.grants_since_ckpt += 1;
                            g.chaos_tick_grant();
                            // Keep one peer scanning while we run the step
                            // (skipped when nobody is parked).
                            shared.wake_one_seeker(&g);
                            break 'find task;
                        }
                        None => {
                            structural_grant = true;
                            break;
                        }
                    }
                }
                if structural_grant {
                    // State changed; keep scanning under the same
                    // acquisition — follow-on grants fan out via the
                    // post-grant wakeup chain.
                    continue;
                }
                shared.cv_sleepers.fetch_add(1, Ordering::Relaxed);
                shared.cv.wait(&mut g);
                shared.cv_sleepers.fetch_sub(1, Ordering::Relaxed);
            }
        };
        run_cpr_task(shared, worker_ix, task);
    }
}

/// Grants `tid`'s pending want; returns a task when a step must run.
fn grant_cpr(g: &mut CprInner, tid: ThreadId) -> Option<CprTask> {
    let want = g
        .threads
        .get_mut(&tid)
        .expect("exists")
        .pending
        .take()
        .expect("grantable implies pending");
    let mut popped = None;
    let mut atomic_prev = None;
    let mut joined = None;
    let mut spawned = None;
    let mut lock_out = None;
    match want {
        CprWant::Start | CprWant::Serialized => {}
        CprWant::Lock(l) => {
            let entry = g.locks.get_mut(&l).expect("registered");
            entry.0 = true;
            lock_out = Some((l, entry.1.take().expect("free lock has data")));
        }
        CprWant::Push(c, v) => {
            g.chans.get_mut(&c).expect("registered").push_back(v);
        }
        CprWant::Pop(c) => {
            popped = g.chans.get_mut(&c).expect("registered").pop_front();
        }
        CprWant::FetchAdd(a, d) => {
            let slot = g.atomics.get_mut(&a).expect("registered");
            atomic_prev = Some(*slot);
            *slot = slot.wrapping_add(d);
        }
        CprWant::Join(j) => {
            joined = g.outputs.get(&j).cloned();
        }
        CprWant::Barrier(b) => {
            let t = g.threads.get_mut(&tid).expect("exists");
            t.state = CprThState::Parked;
            let (participants, waiting) = g.barriers.get_mut(&b).expect("registered");
            waiting.push(tid);
            if waiting.len() as u32 == *participants {
                let batch = std::mem::take(waiting);
                for w in batch {
                    let t = g.threads.get_mut(&w).expect("exists");
                    t.state = CprThState::Active;
                    t.pending = Some(CprWant::Start); // barrier continuation
                }
                g.stats.barrier_releases += 1;
            }
            return None;
        }
        CprWant::Spawn(mut spec_slot) => {
            let spec = spec_slot.take().expect("spawn granted once");
            let child = ThreadId::new(g.next_thread);
            g.next_thread += 1;
            g.threads.insert(
                child,
                CprThread {
                    program: Some(spec.program),
                    group: spec.group,
                    weight: spec.weight,
                    pending: Some(CprWant::Start),
                    popped: None,
                    atomic_prev: None,
                    joined: None,
                    spawned: None,
                    state: CprThState::Active,
                    running: false,
                },
            );
            g.live += 1;
            g.stats.spawns += 1;
            spawned = Some(child);
        }
        CprWant::Exit(v) => {
            let t = g.threads.get_mut(&tid).expect("exists");
            t.state = CprThState::Done;
            g.outputs.insert(tid, v);
            g.live -= 1;
            return None;
        }
    }
    let t = g.threads.get_mut(&tid).expect("exists");
    let program = t.program.take().expect("program parked");
    let popped = popped.or_else(|| t.popped.take());
    t.running = true;
    g.running += 1;
    Some(CprTask {
        tid,
        program,
        popped,
        atomic_prev,
        joined,
        spawned,
        lock_out,
    })
}

fn run_cpr_task(shared: &Arc<CprShared>, worker_ix: usize, task: CprTask) {
    let CprTask {
        tid,
        mut program,
        popped,
        atomic_prev,
        joined,
        spawned,
        lock_out,
    } = task;
    let mut ctx = StepCtx::new(
        CtxBackend::Cpr(shared.clone()),
        tid,
        SubThreadId::new(0),
        worker_ix,
        popped,
        atomic_prev,
        joined,
        spawned,
        lock_out,
    );
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| program.step(&mut ctx)));
    let (leftover_lock, staged) = ctx.into_parts();
    let mut g = shared.inner.lock();
    g.running -= 1;
    let released_lock = leftover_lock.is_some();
    if let Some((l, d)) = leftover_lock {
        let entry = g.locks.get_mut(&l).expect("registered");
        entry.0 = false;
        entry.1 = Some(d);
    }
    for (file, bytes) in staged {
        if let Some((_, _, staged)) = g.files.get_mut(&file) {
            staged.extend_from_slice(&bytes);
        }
    }
    match outcome {
        Ok(step) => {
            let t = g.threads.get_mut(&tid).expect("exists");
            t.running = false;
            t.program = Some(program);
            t.popped = None;
            t.atomic_prev = None;
            t.joined = None;
            t.pending = Some(match step {
                Step::Lock(m) => CprWant::Lock(m.id()),
                Step::Push(c, v) => CprWant::Push(c.id(), v),
                Step::Pop(c) => CprWant::Pop(c.id()),
                Step::FetchAdd(a, d) => CprWant::FetchAdd(a, d),
                Step::Barrier(b) => CprWant::Barrier(b),
                Step::Spawn(spec) => CprWant::Spawn(Some(spec)),
                Step::Join(j) => CprWant::Join(j),
                Step::Serialized => CprWant::Serialized,
                Step::Exit(v) => CprWant::Exit(v),
            });
        }
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".into());
            if g.poisoned.is_none() {
                g.poisoned = Some(format!("CPR step of {tid} panicked: {msg}"));
            }
            // Poison is terminal: wake every class so waiters bail out.
            shared.cv.notify_all();
            shared.lock_cv.notify_all();
            return;
        }
    }
    // Targeted wakeups: the depositing worker loops back to scan on its
    // own, so one extra seeker suffices; a returned lock additionally
    // wakes the nested waiters parked on it. Both are skipped outright
    // when the corresponding parked count is zero.
    if released_lock {
        shared.wake_lock_waiters(&g);
    }
    shared.wake_one_seeker(&g);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::OneShot;

    #[test]
    fn cpr_runs_one_shots() {
        let mut b = CprBuilder::new().workers(2);
        let mut tids = Vec::new();
        for i in 0..4u64 {
            tids.push(b.thread(OneShot::new(move || i + 1), GroupId::new(0), 1));
        }
        let report = b.build().run().unwrap();
        for (i, t) in tids.into_iter().enumerate() {
            assert_eq!(report.output::<u64>(t), i as u64 + 1);
        }
    }
}
