//! Typed handles to runtime-managed synchronization objects.
//!
//! All shared state lives *inside* the runtime — a mutex owns the data it
//! protects (the Rust idiom, and also exactly what GPRS needs: the data
//! under a lock is the mod set the lock aliases), channels own their items,
//! atomics their word. Handles are cheap copyable names; the typed layer
//! erases to raw ids at the [`crate::program::Step`] boundary and is
//! re-typed inside the step context.

use crate::program::Step;
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, LockId};
use std::marker::PhantomData;
use std::sync::Arc;

/// Untyped mutex name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawMutex(pub(crate) LockId);

impl RawMutex {
    /// The underlying lock id (the dependence alias of `§3.4`).
    pub fn id(self) -> LockId {
        self.0
    }
}

/// Untyped channel name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawChannel(pub(crate) ChannelId);

impl RawChannel {
    /// The underlying channel id.
    pub fn id(self) -> ChannelId {
        self.0
    }
}

/// A mutex owning a value of type `T`.
///
/// Created with [`crate::GprsBuilder::mutex`]. Returning
/// [`MutexHandle::lock`] from a step ends the sub-thread at the acquire;
/// the next step runs as the critical section and accesses the data through
/// [`crate::ctx::StepCtx::with_lock`].
pub struct MutexHandle<T> {
    pub(crate) raw: RawMutex,
    pub(crate) _t: PhantomData<fn() -> T>,
}

impl<T> MutexHandle<T> {
    /// The acquire operation ending the current sub-thread.
    pub fn lock(&self) -> Step {
        Step::Lock(self.raw)
    }

    /// The lock id used as a dependence alias.
    pub fn id(&self) -> LockId {
        self.raw.0
    }
}

impl<T> Clone for MutexHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for MutexHandle<T> {}

impl<T> std::fmt::Debug for MutexHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MutexHandle({})", self.raw.0)
    }
}

/// A FIFO channel carrying values of type `T` — the runtime-managed
/// equivalent of the paper's lock-protected queues, with precise undo:
/// squashing a pop returns the very same item to the queue front.
pub struct ChannelHandle<T> {
    pub(crate) raw: RawChannel,
    pub(crate) _t: PhantomData<fn() -> T>,
}

impl<T: Send + Sync + 'static> ChannelHandle<T> {
    /// The enqueue operation ending the current sub-thread. The value was
    /// produced by the sub-thread that ends here, which is recorded as the
    /// item's provenance for selective restart.
    pub fn push(&self, value: T) -> Step {
        Step::Push(self.raw, Arc::new(value))
    }

    /// The dequeue operation ending the current sub-thread; blocks
    /// (deterministically re-polls) while empty.
    pub fn pop(&self) -> Step {
        Step::Pop(self.raw)
    }

    /// The channel id.
    pub fn id(&self) -> ChannelId {
        self.raw.0
    }
}

impl<T> Clone for ChannelHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ChannelHandle<T> {}

impl<T> std::fmt::Debug for ChannelHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelHandle({})", self.raw.0)
    }
}

/// A runtime-managed atomic `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomicHandle(pub(crate) AtomicId);

impl AtomicHandle {
    /// Atomic fetch-add ending the current sub-thread; the next step reads
    /// the previous value via [`crate::ctx::StepCtx::atomic_prev`].
    pub fn fetch_add(&self, delta: u64) -> Step {
        Step::FetchAdd(self.0, delta)
    }

    /// The atomic id used as a dependence alias.
    pub fn id(&self) -> AtomicId {
        self.0
    }
}

/// A barrier across a fixed set of participating threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierHandle(pub(crate) BarrierId, pub(crate) u32);

impl BarrierHandle {
    /// The barrier-wait operation ending the current sub-thread.
    pub fn wait(&self) -> Step {
        Step::Barrier(self.0)
    }

    /// The barrier id.
    pub fn id(&self) -> BarrierId {
        self.0
    }

    /// Number of participating threads.
    pub fn participants(&self) -> u32 {
        self.1
    }
}

/// A recoverable append-only output file managed by the runtime's I/O
/// service (`§3.2`, "Third Party, I/O, and OS Functions"): writes are staged
/// per sub-thread and committed only at retirement, which both solves the
/// output-commit problem and makes squash-undo trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub(crate) u64);

impl FileHandle {
    /// The file's registry index.
    pub fn index(self) -> u64 {
        self.0
    }
}

/// Type-erased clone + restore support for mutex-protected data, giving the
/// history buffer a uniform way to snapshot lock mod sets.
pub(crate) trait Recoverable: Send {
    fn clone_box(&self) -> Box<dyn Recoverable>;
    #[allow(dead_code)] // exercised by unit tests
    fn as_any(&self) -> &(dyn std::any::Any + Send);
    fn as_any_mut(&mut self) -> &mut (dyn std::any::Any + Send);
}

impl<T: Clone + Send + 'static> Recoverable for T {
    fn clone_box(&self) -> Box<dyn Recoverable> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &(dyn std::any::Any + Send) {
        self
    }
    fn as_any_mut(&mut self) -> &mut (dyn std::any::Any + Send) {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_and_debug() {
        let m: MutexHandle<Vec<u8>> = MutexHandle {
            raw: RawMutex(LockId::new(3)),
            _t: PhantomData,
        };
        let m2 = m;
        assert_eq!(m.id(), m2.id());
        assert!(format!("{m:?}").contains("L3"));

        let c: ChannelHandle<u32> = ChannelHandle {
            raw: RawChannel(ChannelId::new(1)),
            _t: PhantomData,
        };
        assert_eq!(c.id(), ChannelId::new(1));
        assert!(matches!(c.pop(), Step::Pop(_)));
        assert!(matches!(c.push(7), Step::Push(_, _)));
    }

    #[test]
    fn recoverable_round_trips() {
        let v: Box<dyn Recoverable> = Box::new(vec![1u32, 2]);
        let copy = v.clone_box();
        let got = copy.as_any().downcast_ref::<Vec<u32>>().unwrap();
        assert_eq!(got, &vec![1, 2]);
    }

    #[test]
    fn atomic_and_barrier_build_steps() {
        let a = AtomicHandle(AtomicId::new(2));
        assert!(matches!(a.fetch_add(5), Step::FetchAdd(_, 5)));
        let b = BarrierHandle(BarrierId::new(0), 4);
        assert!(matches!(b.wait(), Step::Barrier(_)));
        assert_eq!(b.participants(), 4);
    }
}
