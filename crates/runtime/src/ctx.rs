//! The per-step execution context.
//!
//! A [`StepCtx`] is handed to every [`crate::program::ThreadProgram::step`]
//! invocation. It carries the values delivered by the synchronization
//! operation that opened the sub-thread (popped item, previous atomic value,
//! joined output, spawned child id, checked-out lock data) and provides the
//! mid-sub-thread services: early unlock, nested (subsumed) critical
//! sections, recoverable file output and the logged pool allocator.
//!
//! The same context type serves both executors — the GPRS runtime and the
//! coordinated-CPR baseline — so a program runs unmodified on either, which
//! is what the paper's comparison requires.

use crate::engine::SharedRef;
use crate::handles::{AtomicHandle, FileHandle, MutexHandle, Recoverable};
use crate::ops::RtOp;
use crate::program::{payload_to, Payload};
use gprs_core::ids::{LockId, SubThreadId, ThreadId};

/// Output staged during a step: `(file index, bytes)` pairs held until the
/// sub-thread's output-commit point.
pub(crate) type StagedFiles = Vec<(u64, Vec<u8>)>;

/// A lock's data checked out for the duration of a step (returned to the
/// engine at sub-thread completion).
pub(crate) type LockCheckout = Option<(LockId, Box<dyn Recoverable>)>;

/// A handle to a pool-allocated block (`§3.2`: GPRS implements its own
/// memory allocator so allocation can be undone on restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockHandle(pub(crate) u64);

/// Which executor's shared state backs this context.
pub(crate) enum CtxBackend {
    Gprs(SharedRef),
    Cpr(std::sync::Arc<crate::cpr::CprShared>),
}

/// Execution context of one running sub-thread (or CPR step).
pub struct StepCtx<'a> {
    backend: CtxBackend,
    thread: ThreadId,
    stid: SubThreadId,
    worker: usize,
    popped: Option<Payload>,
    atomic_prev: Option<u64>,
    joined: Option<Payload>,
    spawned: Option<ThreadId>,
    lock_out: Option<(LockId, Box<dyn Recoverable>)>,
    staged_files: StagedFiles,
    _lt: std::marker::PhantomData<&'a ()>,
}

impl std::fmt::Debug for StepCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepCtx")
            .field("thread", &self.thread)
            .field("subthread", &self.stid)
            .field("worker", &self.worker)
            .finish_non_exhaustive()
    }
}

impl StepCtx<'_> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        backend: CtxBackend,
        thread: ThreadId,
        stid: SubThreadId,
        worker: usize,
        popped: Option<Payload>,
        atomic_prev: Option<u64>,
        joined: Option<Payload>,
        spawned: Option<ThreadId>,
        lock_out: Option<(LockId, Box<dyn Recoverable>)>,
    ) -> Self {
        StepCtx {
            backend,
            thread,
            stid,
            worker,
            popped,
            atomic_prev,
            joined,
            spawned,
            lock_out,
            staged_files: Vec::new(),
            _lt: std::marker::PhantomData,
        }
    }

    pub(crate) fn into_parts(self) -> (LockCheckout, StagedFiles) {
        (self.lock_out, self.staged_files)
    }

    /// The logical thread this step belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The sub-thread this step executes as (GPRS executor; zero under the
    /// CPR baseline, which has no sub-threads).
    pub fn subthread(&self) -> SubThreadId {
        self.stid
    }

    /// The hardware context (worker) executing this step.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The value delivered by the `Pop` that opened this sub-thread.
    ///
    /// # Panics
    /// Panics if the sub-thread was not opened by a pop, or on a payload
    /// type mismatch (a producer/consumer wiring bug).
    pub fn popped<T: Clone + Send + Sync + 'static>(&self) -> T {
        let p = self
            .popped
            .as_ref()
            .expect("sub-thread was not opened by a channel pop");
        payload_to(p)
    }

    /// The atomic's previous value, when opened by a `FetchAdd`.
    ///
    /// # Panics
    /// Panics if the sub-thread was not opened by an atomic operation.
    pub fn atomic_prev(&self) -> u64 {
        self.atomic_prev
            .expect("sub-thread was not opened by an atomic operation")
    }

    /// The thread id created by the `Spawn` that opened this sub-thread —
    /// what `pthread_create` returns, needed for a later `Join`.
    ///
    /// # Panics
    /// Panics if the sub-thread was not opened by a spawn.
    pub fn spawned(&self) -> ThreadId {
        self.spawned
            .expect("sub-thread was not opened by a spawn")
    }

    /// The joined thread's output, when opened by a `Join`.
    ///
    /// # Panics
    /// Panics if the sub-thread was not opened by a join, or on a payload
    /// type mismatch.
    pub fn joined<T: Clone + Send + Sync + 'static>(&self) -> T {
        let p = self
            .joined
            .as_ref()
            .expect("sub-thread was not opened by a join");
        payload_to(p)
    }

    /// Accesses the data of the mutex this critical-section sub-thread
    /// holds. May be called repeatedly until [`Self::unlock`].
    ///
    /// # Panics
    /// Panics if the sub-thread holds no lock, holds a different mutex, or
    /// on a data type mismatch.
    pub fn with_lock<T: 'static, R>(
        &mut self,
        handle: &MutexHandle<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        let (lock, data) = self
            .lock_out
            .as_mut()
            .expect("sub-thread holds no lock (was it opened by Step::Lock?)");
        assert_eq!(*lock, handle.id(), "holding a different mutex");
        let typed = data
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("mutex data type mismatch");
        f(typed)
    }

    /// Releases the held mutex early ("the critical section and the
    /// succeeding code are assigned to the same sub-thread"). If never
    /// called, the lock is released automatically when the step returns.
    ///
    /// # Panics
    /// Panics if no lock is held.
    pub fn unlock<T>(&mut self, handle: &MutexHandle<T>) {
        let (lock, data) = self
            .lock_out
            .take()
            .expect("sub-thread holds no lock to unlock");
        assert_eq!(lock, handle.id(), "unlocking a different mutex");
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                let mut g = shared.inner.lock();
                g.return_lock(self.stid, lock, data);
                g.bump();
                // Targeted wakeups: nested waiters parked on this lock's
                // shard, plus one seeker in case the token waits on it.
                shared.wake_lock_shard(lock, &g.telemetry);
                shared.wake_one_seeker(&g.telemetry);
            }
            CtxBackend::Cpr(shared) => {
                shared.release_lock(lock, data);
            }
        }
    }

    /// A nested critical section, flattened into this sub-thread (`§3.2`):
    /// waits for the mutex, snapshots its data into the history buffer,
    /// runs `f`, and releases. Creates no new sub-thread.
    ///
    /// # Panics
    /// Panics on a data type mismatch, or if this sub-thread already holds
    /// the same mutex via its opening `Lock`.
    pub fn lock_nested<T: 'static, R>(
        &mut self,
        handle: &MutexHandle<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        if let Some((l, _)) = &self.lock_out {
            assert_ne!(*l, handle.id(), "recursive acquire of the held mutex");
        }
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                let lock = handle.id();
                let shard_ix = crate::engine::Shared::shard_ix(lock);
                let shard = &shared.lock_shards[shard_ix];
                let mut data = {
                    let mut g = shared.inner.lock();
                    let mut woke = false;
                    loop {
                        // Bail out of a poisoned runtime instead of waiting
                        // for a release that will never come (the panic is
                        // caught and folded into the poison message).
                        assert!(
                            g.poisoned.is_none(),
                            "runtime poisoned while waiting for a nested lock"
                        );
                        if let Some(d) = g.try_nested_acquire(self.stid, lock) {
                            break d;
                        }
                        if woke && g.telemetry.enabled() {
                            g.telemetry.metrics.wakeups_spurious.inc();
                        }
                        // Wait on the lock's shard, not the scheduler
                        // queue: only releases of (a shard-mate of) this
                        // lock wake us.
                        use std::sync::atomic::Ordering;
                        shared.shard_sleepers[shard_ix].fetch_add(1, Ordering::Relaxed);
                        shard.wait(&mut g);
                        shared.shard_sleepers[shard_ix].fetch_sub(1, Ordering::Relaxed);
                        woke = true;
                    }
                };
                let typed = data
                    .as_any_mut()
                    .downcast_mut::<T>()
                    .expect("mutex data type mismatch");
                let out = f(typed);
                let mut g = shared.inner.lock();
                g.return_lock(self.stid, lock, data);
                g.bump();
                shared.wake_lock_shard(lock, &g.telemetry);
                shared.wake_one_seeker(&g.telemetry);
                out
            }
            CtxBackend::Cpr(shared) => {
                let mut data = shared.acquire_lock_blocking(handle.id());
                let typed = data
                    .as_any_mut()
                    .downcast_mut::<T>()
                    .expect("mutex data type mismatch");
                let out = f(typed);
                shared.release_lock(handle.id(), data);
                out
            }
        }
    }

    /// Reads a shared atomic cell **without synchronization** — a *plain*
    /// load. Unlike [`crate::handles::AtomicHandle::fetch_add`] via
    /// [`crate::program::Step::FetchAdd`], this creates no sub-thread
    /// boundary, no happens-before edge and no dependence alias: two
    /// threads touching the same cell this way (one of them writing) are
    /// data-racing, which the opt-in detector
    /// ([`crate::GprsBuilder::racecheck`]) flags at retirement. Exists to
    /// model the unsynchronized accesses that break selective restart's
    /// data-race-freedom assumption.
    pub fn plain_load(&self, handle: &AtomicHandle) -> u64 {
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                shared.inner.lock().plain_load(self.stid, handle.id())
            }
            CtxBackend::Cpr(shared) => shared.plain_load(handle.id()),
        }
    }

    /// Writes a shared atomic cell **without synchronization** — a *plain*
    /// store; see [`Self::plain_load`]. Under GPRS the old value is
    /// WAL-logged so recovery can undo it, but no dependence alias is
    /// recorded — racy readers are *not* pulled into the culprit's
    /// selective-restart closure, which is why a detected race escalates
    /// recovery to a basic restart.
    pub fn plain_store(&self, handle: &AtomicHandle, value: u64) {
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                shared
                    .inner
                    .lock()
                    .plain_store(self.worker, self.stid, handle.id(), value);
            }
            CtxBackend::Cpr(shared) => shared.plain_store(handle.id(), value),
        }
    }

    /// Appends bytes to a recoverable output file. Under GPRS the write is
    /// staged and committed only when this sub-thread retires — the
    /// output-commit delay of `§3.2`; under the CPR baseline it commits at
    /// the next coordinated checkpoint.
    pub fn write_file(&mut self, file: FileHandle, bytes: &[u8]) {
        self.staged_files.push((file.0, bytes.to_vec()));
    }

    /// Allocates a zeroed block from the logged pool allocator.
    pub fn alloc(&self, size: usize) -> BlockHandle {
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                let mut g = shared.inner.lock();
                let id = g.next_block;
                g.next_block += 1;
                g.wal.append(self.stid, RtOp::Alloc { block: id });
                g.blocks.insert(id, vec![0; size]);
                g.stats.allocs += 1;
                BlockHandle(id)
            }
            CtxBackend::Cpr(shared) => BlockHandle(shared.alloc(size)),
        }
    }

    /// Frees a pool block. Under GPRS the contents are preserved in the log
    /// until the freeing sub-thread retires, so the free can be undone.
    ///
    /// # Panics
    /// Panics on double free.
    pub fn free(&self, block: BlockHandle) {
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                let mut g = shared.inner.lock();
                let data = g
                    .blocks
                    .remove(&block.0)
                    .expect("double free of pool block");
                g.wal.append(self.stid, RtOp::Free {
                    block: block.0,
                    data,
                });
            }
            CtxBackend::Cpr(shared) => shared.free(block.0),
        }
    }

    /// Mutates a pool block; under GPRS the prior contents are snapshotted
    /// so the mutation can be undone if this sub-thread is squashed.
    ///
    /// # Panics
    /// Panics if the block was freed.
    pub fn with_block<R>(&self, block: BlockHandle, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                let mut g = shared.inner.lock();
                let snap = g.blocks.get(&block.0).expect("block freed").clone();
                g.hist.seq += 1;
                let seq = g.hist.seq;
                g.hist.block_snaps.push((seq, self.stid, block.0, snap));
                f(g.blocks.get_mut(&block.0).expect("block freed"))
            }
            CtxBackend::Cpr(shared) => shared.with_block(block.0, f),
        }
    }

    /// Reads a pool block.
    ///
    /// # Panics
    /// Panics if the block was freed.
    pub fn read_block<R>(&self, block: BlockHandle, f: impl FnOnce(&[u8]) -> R) -> R {
        match &self.backend {
            CtxBackend::Gprs(shared) => {
                let g = shared.inner.lock();
                f(g.blocks.get(&block.0).expect("block freed"))
            }
            CtxBackend::Cpr(shared) => shared.read_block(block.0, f),
        }
    }
}
