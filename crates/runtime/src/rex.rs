//! The Restart Engine (REX): executes recovery plans against the live
//! runtime state (`§3.4`).
//!
//! Recovery runs with the runtime quiesced (no step executing) and the
//! state lock held. For each pending exception it:
//!
//! 1. attributes the exception to its culprit sub-thread (dropping it if
//!    the culprit already retired — retirement is the commit point);
//! 2. computes the affected set — everything younger that could have
//!    consumed the culprit's data: same-thread successors, channel-item
//!    consumers, lock/atomic-alias sharers, barrier co-participants and
//!    spawned/joined descendants (or simply the whole younger suffix under
//!    [`crate::engine::RecoveryPolicy::Basic`]);
//! 3. undoes the squashed sub-threads' **runtime operations** by walking
//!    their write-ahead-log records newest-first;
//! 4. undoes their **program state** from the history store (thread
//!    snapshots, lock mod-sets, allocator blocks), newest-first;
//! 5. drops their staged (uncommitted) file output;
//! 6. removes their reorder-list entries and re-arms each squashed thread
//!    with the synchronization request that opened its oldest squashed
//!    sub-thread, so normal granting re-executes exactly the discarded
//!    work while every unaffected sub-thread continues untouched.

use crate::engine::{Inner, OpeningWant, PendingWant, RecoveryPolicy, ThState, EXTERNAL_RING};
use crate::handles::{RawChannel, RawMutex};
use crate::ops::RtOp;
use crate::program::{DynThread, Step};
use gprs_core::ids::{BarrierId, ResourceId, SubThreadId, ThreadId};
use gprs_telemetry::TraceEvent;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Drains and handles every pending exception. Requires quiescence
/// (`inner.running` empty) — the worker loop guarantees it.
pub(crate) fn perform_recovery(inner: &mut Inner) {
    debug_assert!(inner.running.is_empty(), "recovery requires quiescence");
    while let Some(pe) = inner.pending_exceptions.pop_front() {
        inner.stats.exceptions += 1;
        let culprit = match pe.culprit {
            Some(c) if inner.rol.contains(c) => c,
            _ => {
                inner.stats.exceptions_ignored += 1;
                continue;
            }
        };
        // Idempotent re-mark. The `contains` check above makes an Err
        // unreachable today, but a stale strike — the culprit leaving the
        // ROL between the queueing of the exception and this pass (the
        // HALT-mid-squash shape) — must degrade to "ignored", never panic
        // a recovery pass that holds the whole machine.
        if inner.rol.mark_excepted(culprit, pe.exception).is_err() {
            inner.stats.exceptions_ignored += 1;
            continue;
        }
        let started = std::time::Instant::now();
        if inner.telemetry.enabled() {
            inner.telemetry.metrics.recovery_sessions.inc();
            inner
                .telemetry
                .record(EXTERNAL_RING, TraceEvent::RecoveryBegin { culprit: culprit.raw() });
        }
        let squashed = recover_one(inner, culprit);
        if inner.telemetry.enabled() {
            inner
                .telemetry
                .metrics
                .recovery_duration
                .record(started.elapsed().as_nanos() as u64);
            inner.telemetry.record(
                EXTERNAL_RING,
                TraceEvent::RecoveryEnd {
                    culprit: culprit.raw(),
                    squashed,
                },
            );
        }
        // Chaos overlap point: a `MidRecovery(n)` event keyed to this
        // session queues its exceptions now, while this pass still holds
        // the quiesced machine — the loop re-pops and recovers them in the
        // same pass (an exception during recovery).
        inner.chaos_tick_recovery();
    }
}

/// Cancels every in-flight sub-thread by driving a **basic** recovery from
/// the oldest reorder-list entry: the whole un-retired suffix is squashed,
/// its WAL records undone and its staged output dropped, so a cancelled
/// job's ledger balances (`wal_appends == wal_undos + wal_prunes`) and
/// everything already retired stays committed — cancellation is precise
/// restart pointed at "the rest of the program". Requires quiescence, like
/// any recovery. No-op when nothing is in flight.
///
/// The synthetic exception is a [`ResourceRevocation`]
/// (`§2.2`: a shared platform revoking resources is exactly what a serving
/// layer's cancel/deadline is), and it is accounted in the job's stats like
/// any other delivered exception.
///
/// [`ResourceRevocation`]: gprs_core::exception::ExceptionKind::ResourceRevocation
pub(crate) fn cancel_inflight(inner: &mut Inner) {
    use gprs_core::exception::{Exception, ExceptionKind};
    use gprs_core::ids::ContextId;
    let policy = inner.cfg.recovery;
    inner.cfg.recovery = RecoveryPolicy::Basic;
    // Drain any genuine pending exceptions first (under Basic — sound, a
    // superset squash — and the job is being discarded anyway), then squash
    // the surviving suffix from its oldest entry. A chaos `MidRecovery`
    // overlay may queue fresh exceptions during either pass; the loop
    // re-drains until the machine is empty.
    perform_recovery(inner);
    loop {
        let oldest = inner.rol.iter().next().map(|e| e.id());
        let Some(oldest) = oldest else { break };
        let exception =
            Exception::global(ExceptionKind::ResourceRevocation, ContextId::new(0), 0);
        if inner.rol.mark_excepted(oldest, exception.clone()).is_err() {
            // Unreachable today (the machine is quiesced under the lock
            // between the peek and the strike), but a HALT must never
            // panic mid-squash: poison the run and let `finish` report it.
            inner.poison("cancel: oldest ROL entry vanished mid-squash");
            break;
        }
        inner
            .pending_exceptions
            .push_back(crate::engine::PendingException {
                exception,
                culprit: Some(oldest),
            });
        perform_recovery(inner);
    }
    inner.cfg.recovery = policy;
    debug_assert_eq!(inner.wal.len(), 0, "cancellation leaves no in-flight suffix");
}

/// Executes one recovery plan; returns the number of squashed sub-threads.
fn recover_one(inner: &mut Inner, culprit: SubThreadId) -> u64 {
    let mut affected = affected_set(inner, culprit);
    // Defensive re-validation: every affected id was read out of the ROL
    // in this same quiesced pass, so all of them are still present — but
    // the `expect("affected in ROL")` family below turns any future
    // violation of that invariant (a HALT squash overlapping a chaos
    // overlay is the canonical near-miss) into a panic with the state
    // lock held. Dropping a vanished id instead keeps recovery total.
    affected.retain(|&id| inner.rol.contains(id));
    inner.stats.squashed += affected.len() as u64;
    if inner.telemetry.enabled() {
        inner.telemetry.metrics.squashed.add(affected.len() as u64);
        inner
            .telemetry
            .metrics
            .squashed_per_recovery
            .record(affected.len() as u64);
        for &id in &affected {
            // `retain` above guarantees presence; degrade (skip the trace
            // event) rather than panic with the state lock held if a
            // divergent replay ever breaks that.
            let Some(thread) = inner.rol.get(id).map(|e| e.thread()) else {
                continue;
            };
            inner.telemetry.record(
                EXTERNAL_RING,
                TraceEvent::Squash {
                    subthread: id.raw(),
                    thread: thread.raw(),
                },
            );
        }
    }

    // Oldest affected sub-thread per thread: the point each thread rolls
    // back to (recorded before entries leave the ROL).
    let mut oldest_per_thread: BTreeMap<ThreadId, SubThreadId> = BTreeMap::new();
    for &id in &affected {
        let Some(t) = inner.rol.get(id).map(|e| e.thread()) else {
            inner.poison(format!(
                "recovery: affected sub-thread {} vanished from the ROL \
                 mid-pass (divergent replay or corrupted schedule state)",
                id.raw()
            ));
            continue;
        };
        oldest_per_thread.entry(t).or_insert(id);
    }

    // Barrier generations whose release is undone (an arrival squashed):
    // their parked continuations must re-wait instead of re-running.
    let undone_gens: BTreeSet<(BarrierId, u64)> = affected
        .iter()
        .filter_map(|id| inner.arrival_gen.get(id).copied())
        .collect();

    for &id in &affected {
        if inner.rol.mark_squashed(id).is_err() {
            inner.poison(format!(
                "recovery: could not mark sub-thread {} squashed \
                 (divergent replay or corrupted schedule state)",
                id.raw()
            ));
        }
    }

    // Order-faithful redo: record, in original total order, every squashed
    // sub-thread that was opened by a lock or atomic operation. Their
    // re-executions must re-acquire in exactly this order, or replayed
    // critical sections could interleave differently than the fault-free
    // execution. Entries of threads being re-squashed are superseded.
    let affected_threads: BTreeSet<ThreadId> = affected
        .iter()
        .filter_map(|&id| inner.rol.get(id).map(|e| e.thread()))
        .collect();
    inner.redo_locks.retain(|t| !affected_threads.contains(t));
    for &id in &affected {
        if let Some(rec) = inner.opening.get(&id) {
            if matches!(
                rec.want,
                OpeningWant::Lock(_) | OpeningWant::FetchAdd(_, _)
            ) {
                if let Some(t) = inner.rol.get(id).map(|e| e.thread()) {
                    inner.redo_locks.push_back(t);
                }
            }
        }
    }

    // --- 3. WAL undo, newest first. -----------------------------------
    let squash_set: BTreeSet<SubThreadId> = affected.iter().copied().collect();
    let records = inner.wal.take_undo_records(&squash_set);
    let mut reclaimed: BTreeMap<ThreadId, Box<dyn DynThread>> = BTreeMap::new();
    for rec in records {
        if inner.telemetry.enabled() {
            inner.telemetry.metrics.wal_undos.inc();
            inner
                .telemetry
                .record(EXTERNAL_RING, TraceEvent::WalUndo { subthread: rec.subthread.raw() });
        }
        if inner.cfg.persist.is_some() {
            inner.durable_record(&gprs_core::persist::DurableRecord::Undo {
                lsn: rec.lsn.raw(),
            });
        }
        undo_op(inner, rec.subthread, rec.op, &mut reclaimed);
    }

    // --- 4. History undo, newest first (existence-guarded). -----------
    apply_history_undo(inner, &squash_set, &mut reclaimed);

    // --- 5. Drop staged output of squashed sub-threads. ---------------
    for file in inner.files.values_mut() {
        file.staged.retain(|(s, _)| !squash_set.contains(s));
    }

    // --- 6. Remove ROL entries (youngest first) and metadata. ----------
    for &id in affected.iter().rev() {
        if inner.rol.remove_squashed(id).is_err() {
            inner.poison(format!(
                "recovery: squashed sub-thread {} vanished from the ROL \
                 before removal (divergent replay or corrupted schedule state)",
                id.raw()
            ));
        }
        inner.arrival_gen.remove(&id);
        inner.edges.remove(&id);
        // Race-detector provenance of squashed work: the re-execution will
        // re-record it. The detector's clocks themselves are never rewound
        // (extra happens-before edges only mask races — the safe side).
        if let Some(v) = inner.plain_accesses.remove(&id) {
            inner.recycle_access_vec(v);
        }
        inner.race_pop_src.remove(&id);
        inner.race_arrivals.remove(&id);
        if let Some(det) = inner.racecheck.as_mut() {
            det.forget_subthread(id);
        }
    }
    for gen_key in &undone_gens {
        inner.gens.remove(gen_key);
    }
    for gen in inner.gens.values_mut() {
        gen.resumes.retain(|r| !squash_set.contains(r));
        gen.arrivals.retain(|a| !squash_set.contains(a));
    }

    // --- Re-arm squashed threads. --------------------------------------
    let mut openings: BTreeMap<ThreadId, crate::engine::OpeningRec> = BTreeMap::new();
    for (&t, &oldest) in &oldest_per_thread {
        if let Some(rec) = inner.opening.remove(&oldest) {
            openings.insert(t, rec);
        }
    }
    for &id in &affected {
        inner.opening.remove(&id);
    }
    for (t, opening) in openings {
        if inner.telemetry.enabled() {
            inner.telemetry.metrics.restarts.inc();
            inner
                .telemetry
                .record(EXTERNAL_RING, TraceEvent::Restart { thread: t.raw() });
        }
        reinstate(inner, t, opening, &undone_gens, &mut reclaimed);
    }
    debug_assert!(
        reclaimed.is_empty(),
        "every reclaimed child is re-owned by a respawn request"
    );
    inner.stats.recoveries += 1;
    affected.len() as u64
}

/// Computes the ascending affected set of `culprit` under the configured
/// policy.
///
/// Hybrid escalation: selective restart is only sound when the culprit's
/// data flowed exclusively through observed synchronization. If the race
/// detector saw the culprit's thread participate in a data race, plain
/// accesses may have leaked its state to sub-threads outside the dependence
/// closure — so the restart widens to the basic younger-suffix squash.
fn affected_set(inner: &mut Inner, culprit: SubThreadId) -> Vec<SubThreadId> {
    // `perform_recovery` re-validated the culprit against the ROL, but a
    // vanished culprit must squash nothing and poison — not panic a
    // recovery pass that holds the whole quiesced machine.
    let Some(culprit_thread) = inner.rol.get(culprit).map(|e| e.thread()) else {
        inner.poison(format!(
            "recovery: culprit sub-thread {} vanished from the ROL \
             (divergent replay or corrupted schedule state)",
            culprit.raw()
        ));
        return Vec::new();
    };
    let escalate = inner.cfg.recovery == RecoveryPolicy::Selective
        && inner
            .racecheck
            .as_ref()
            .is_some_and(|det| det.is_racy_thread(culprit_thread));
    if escalate {
        inner.stats.hybrid_escalations += 1;
        if inner.telemetry.enabled() {
            inner.telemetry.metrics.hybrid_escalations.inc();
            inner.telemetry.record(
                EXTERNAL_RING,
                TraceEvent::HybridEscalation {
                    culprit: culprit.raw(),
                    thread: culprit_thread.raw(),
                },
            );
        }
    }
    if inner.cfg.recovery == RecoveryPolicy::Basic || escalate {
        let mut suffix = inner.rol.squash_suffix(culprit);
        suffix.reverse(); // ascending
        return suffix;
    }
    let Some(culprit_entry) = inner.rol.get(culprit) else {
        return Vec::new(); // checked above; unreachable
    };
    let mut affected: BTreeSet<SubThreadId> = BTreeSet::new();
    affected.insert(culprit);
    let mut tainted_threads: BTreeSet<ThreadId> = BTreeSet::new();
    tainted_threads.insert(culprit_entry.thread());
    let mut tainted_aliases: BTreeSet<ResourceId> = BTreeSet::new();
    for r in &culprit_entry.resources {
        if !matches!(r, ResourceId::Channel(_)) {
            tainted_aliases.insert(*r);
        }
    }
    let mut dependents: BTreeSet<SubThreadId> = BTreeSet::new();
    if let Some(es) = inner.edges.get(&culprit) {
        dependents.extend(es.iter().copied());
    }
    let mut tainted_gens: BTreeSet<(BarrierId, u64)> = BTreeSet::new();
    if let Some(g) = inner.arrival_gen.get(&culprit) {
        tainted_gens.insert(*g);
    }

    // Taint flows old → young only, so one ascending pass suffices.
    for e in inner.rol.iter_younger(culprit) {
        let id = e.id();
        let same_thread = tainted_threads.contains(&e.thread());
        let shares_alias = e.resources.iter().any(|r| {
            !matches!(r, ResourceId::Channel(_)) && tainted_aliases.contains(r)
        });
        let is_dependent = dependents.contains(&id);
        let tainted_resume = match inner.opening.get(&id).map(|o| &o.want) {
            Some(OpeningWant::Resume(b, gen)) => tainted_gens.contains(&(*b, *gen)),
            _ => false,
        };
        if same_thread || shares_alias || is_dependent || tainted_resume {
            affected.insert(id);
            tainted_threads.insert(e.thread());
            for r in &e.resources {
                if !matches!(r, ResourceId::Channel(_)) {
                    tainted_aliases.insert(*r);
                }
            }
            if let Some(es) = inner.edges.get(&id) {
                dependents.extend(es.iter().copied());
            }
            if let Some(g) = inner.arrival_gen.get(&id) {
                tainted_gens.insert(*g);
            }
        }
    }
    affected.into_iter().collect()
}

/// Applies the inverse of one logged runtime operation.
fn undo_op(
    inner: &mut Inner,
    op_subthread: SubThreadId,
    op: RtOp,
    reclaimed: &mut BTreeMap<ThreadId, Box<dyn DynThread>>,
) {
    match op {
        RtOp::Push { chan, item } => {
            // Remove that very item (pointer identity), searching from the
            // back: unaffected producers' items interleaved after it stay.
            // If a consumer popped it, the consumer is squashed and its pop
            // was undone first (newer LSN), so the item is present.
            let _ = op_subthread;
            if let Some(c) = inner.chans.get_mut(&chan) {
                if let Some(ix) = c
                    .items
                    .iter()
                    .rposition(|(i, _)| Arc::ptr_eq(i, &item))
                {
                    c.items.remove(ix);
                }
            }
        }
        RtOp::Pop {
            chan,
            item,
            producer,
        } => {
            inner
                .chans
                .entry(chan)
                .or_default()
                .items
                .push_front((item, producer));
        }
        RtOp::FetchAdd { atomic, old } | RtOp::PlainStore { atomic, old } => {
            inner.atomics.insert(atomic, old);
        }
        RtOp::LockAcquire { lock } => {
            if let Some(l) = inner.locks.get_mut(&lock) {
                l.holder = None;
            }
        }
        RtOp::LockRelease { lock, holder } => {
            if let Some(l) = inner.locks.get_mut(&lock) {
                l.holder = Some(holder);
            }
        }
        RtOp::BarrierArrive { barrier, thread } => {
            if let Some(bar) = inner.barriers.get_mut(&barrier) {
                bar.waiting.retain(|&t| t != thread);
                bar.arrival_sts.retain(|&s| s != op_subthread);
            }
            // Sharded runs defer cross-domain arrival publication to the
            // arrival-ending sub-thread's retirement; squashing it must
            // drop the deferred entry so the hub never counts an arrival
            // that un-happened (re-execution re-defers it).
            if let Some(ctx) = inner.shard.as_mut() {
                if let Some(bars) = ctx.edge_arrivals.get_mut(&op_subthread) {
                    bars.retain(|&b| b != barrier);
                    if bars.is_empty() {
                        ctx.edge_arrivals.remove(&op_subthread);
                    }
                }
            }
        }
        RtOp::SpawnChild { child } => {
            let Some(mut crec) = inner.threads.remove(&child) else {
                inner.poison(format!(
                    "recovery: un-spawning thread {} but it was never \
                     created (divergent replay or corrupted WAL)",
                    child.raw()
                ));
                return;
            };
            if crec.registered && inner.enforcer.deregister_thread(child).is_err() {
                inner.poison(format!(
                    "recovery: un-spawned thread {} was marked registered \
                     but the enforcer disagrees (corrupted schedule state)",
                    child.raw()
                ));
            }
            if crec.state != ThState::Done {
                inner.live -= 1;
            }
            let Some(program) = crec.program.take() else {
                inner.poison(format!(
                    "recovery: un-spawned thread {} has no parked program \
                     (divergent replay or corrupted WAL)",
                    child.raw()
                ));
                return;
            };
            reclaimed.insert(child, program);
        }
        RtOp::ThreadExit { thread } => {
            let Some(rec) = inner.threads.get_mut(&thread) else {
                inner.poison(format!(
                    "recovery: un-exiting thread {} but it does not exist \
                     (divergent replay or corrupted WAL)",
                    thread.raw()
                ));
                return;
            };
            rec.state = ThState::Active;
            rec.final_st = None;
            if !rec.registered {
                rec.registered = true;
                let (g, w) = (rec.group, rec.weight);
                if inner.enforcer.register_thread(thread, g, w).is_err() {
                    inner.poison(format!(
                        "recovery: could not re-register un-exited thread {} \
                         (corrupted schedule state)",
                        thread.raw()
                    ));
                }
            }
            inner.outputs.remove(&thread);
            inner.live += 1;
        }
        RtOp::Alloc { block } => {
            inner.blocks.remove(&block);
        }
        RtOp::Free { block, data } => {
            inner.blocks.insert(block, data);
        }
    }
}

/// Applies program-state snapshots of the squashed set, newest first.
fn apply_history_undo(
    inner: &mut Inner,
    squash: &BTreeSet<SubThreadId>,
    reclaimed: &mut BTreeMap<ThreadId, Box<dyn DynThread>>,
) {
    enum Undo {
        Thread(ThreadId, Box<dyn std::any::Any + Send>),
        Lock(gprs_core::ids::LockId, Box<dyn crate::handles::Recoverable>),
        Block(u64, Vec<u8>),
    }
    let mut undos: Vec<(u64, Undo)> = Vec::new();
    let hist = &mut inner.hist;
    let mut keep = Vec::new();
    for (seq, st, t, snap) in hist.thread_snaps.drain(..) {
        if squash.contains(&st) {
            undos.push((seq, Undo::Thread(t, snap)));
        } else {
            keep.push((seq, st, t, snap));
        }
    }
    hist.thread_snaps = keep;
    let mut keep = Vec::new();
    for (seq, st, l, snap) in hist.lock_snaps.drain(..) {
        if squash.contains(&st) {
            undos.push((seq, Undo::Lock(l, snap)));
        } else {
            keep.push((seq, st, l, snap));
        }
    }
    hist.lock_snaps = keep;
    let mut keep = Vec::new();
    for (seq, st, b, snap) in hist.block_snaps.drain(..) {
        if squash.contains(&st) {
            undos.push((seq, Undo::Block(b, snap)));
        } else {
            keep.push((seq, st, b, snap));
        }
    }
    hist.block_snaps = keep;

    undos.sort_by_key(|u| std::cmp::Reverse(u.0)); // newest first
    for (_, u) in undos {
        match u {
            Undo::Thread(t, snap) => {
                if let Some(rec) = inner.threads.get_mut(&t) {
                    match rec.program.as_mut() {
                        Some(p) => p.restore_from(snap.as_ref()),
                        // A checked-out program during recovery means the
                        // quiescence invariant broke; poison, don't panic.
                        None => inner.poison(format!(
                            "recovery: thread {} program checked out during \
                             history undo (machine not quiesced)",
                            t.raw()
                        )),
                    }
                } else if let Some(program) = reclaimed.get_mut(&t) {
                    program.restore_from(snap.as_ref());
                }
            }
            Undo::Lock(l, snap) => {
                if let Some(lock) = inner.locks.get_mut(&l) {
                    lock.data = Some(snap);
                }
            }
            Undo::Block(b, snap) => {
                if let std::collections::btree_map::Entry::Occupied(mut e) =
                    inner.blocks.entry(b)
                {
                    e.insert(snap);
                }
            }
        }
    }
}

/// Re-arms a squashed thread with the request that opened its oldest
/// squashed sub-thread.
fn reinstate(
    inner: &mut Inner,
    thread: ThreadId,
    opening: crate::engine::OpeningRec,
    undone_gens: &BTreeSet<(BarrierId, u64)>,
    reclaimed: &mut BTreeMap<ThreadId, Box<dyn DynThread>>,
) {
    let Some(rec) = inner.threads.get_mut(&thread) else {
        // The thread itself was un-spawned; its parent's reinstated spawn
        // request owns its program now.
        return;
    };
    rec.current_st = opening.prev;
    // Normalize registration: squashing may have left the thread parked or
    // deregistered.
    if let ThState::Parked(b) = rec.state {
        // It re-executes from before (or at) the arrival; un-park.
        if let Some(bar) = inner.barriers.get_mut(&b) {
            bar.waiting.retain(|&t| t != thread);
        }
        rec.state = ThState::Active;
    }
    let rec = inner.threads.get_mut(&thread).expect("present");
    if rec.state == ThState::Done {
        rec.state = ThState::Active;
        inner.live += 1;
        inner.outputs.remove(&thread);
    }
    let rec = inner.threads.get_mut(&thread).expect("present");
    if !rec.registered {
        rec.registered = true;
        let (g, w) = (rec.group, rec.weight);
        if inner.enforcer.register_thread(thread, g, w).is_err() {
            inner.poison(format!(
                "recovery: could not re-register reinstated thread {} \
                 (corrupted schedule state)",
                thread.raw()
            ));
        }
    }

    let pending = match opening.want {
        OpeningWant::Start => Some(PendingWant::Start),
        OpeningWant::Lock(l) => Some(PendingWant::Op(Step::Lock(RawMutex(l)))),
        OpeningWant::Push(c, v) => Some(PendingWant::Op(Step::Push(RawChannel(c), v))),
        OpeningWant::Pop(c) => Some(PendingWant::Op(Step::Pop(RawChannel(c)))),
        OpeningWant::FetchAdd(a, d) => Some(PendingWant::Op(Step::FetchAdd(a, d))),
        OpeningWant::JoinParent(t) => Some(PendingWant::Op(Step::Join(t))),
        OpeningWant::SerializedRun => Some(PendingWant::SerializedRun),
        OpeningWant::SpawnParent {
            child,
            group,
            weight,
        } => match reclaimed.remove(&child) {
            Some(program) => Some(PendingWant::Respawn {
                child,
                group,
                weight,
                program,
            }),
            None => {
                inner.poison(format!(
                    "recovery: reclaimed program for un-spawned child \
                     thread {} is missing (divergent replay or corrupted WAL)",
                    child.raw()
                ));
                None
            }
        },
        OpeningWant::Resume(b, gen) => {
            if undone_gens.contains(&(b, gen)) {
                // The release itself was undone: re-park and wait for the
                // squashed arrivals to re-arrive.
                let rec = inner.threads.get_mut(&thread).expect("present");
                rec.state = ThState::Parked(b);
                rec.registered = false;
                if inner.enforcer.deregister_thread(thread).is_err() {
                    inner.poison(format!(
                        "recovery: could not deregister re-parked thread {} \
                         (corrupted schedule state)",
                        thread.raw()
                    ));
                }
                let arrival = inner.threads[&thread].current_st;
                let Some(bar) = inner.barriers.get_mut(&b) else {
                    inner.poison(format!(
                        "recovery: barrier {} of a re-parked continuation \
                         does not exist (divergent replay or corrupted WAL)",
                        b.raw()
                    ));
                    return;
                };
                bar.waiting.push(thread);
                if let Some(a) = arrival {
                    bar.arrival_sts.push(a);
                }
                bar.waiting.sort_unstable();
                None
            } else {
                // Only the continuation was squashed; the release stands.
                Some(PendingWant::Resume(b, gen))
            }
        }
    };
    inner.threads.get_mut(&thread).expect("present").pending = pending;
}
