//! The execution engine: shared runtime state, the worker loop, and the
//! deterministic grant logic — the DEX of Figure 4, with the load-balancing
//! scheduler of `§3.3` provided by the worker pool itself.
//!
//! All bookkeeping lives in [`Inner`] behind one mutex; workers take the
//! lock only to *grant* synchronization operations and to *deposit* step
//! results — the sub-thread bodies (user `step` code) run without it, in
//! parallel. Grants follow the configured deterministic schedule: the order
//! enforcer's token stops at a thread whose operation cannot proceed (a held
//! lock, a running step) and passes over empty-FIFO polls and unfinished
//! joins, so the grant sequence depends only on program structure, never on
//! timing — the determinism tests verify this by comparing grant traces
//! across worker counts.

use crate::ctx::StepCtx;
use crate::handles::Recoverable;
use crate::ops::RtOp;
use crate::program::{DynThread, Payload, SpawnSpec, Step};
use crate::report::RunStats;
use gprs_core::chaos::{ChaosEvent, ChaosPlan, ChaosTrigger, VictimSelector};
use gprs_core::exception::{Exception, ExceptionScope};
use gprs_core::ids::{
    AtomicId, BarrierId, ChannelId, ContextId, GroupId, LockId, Lsn, ResourceId, SubThreadId,
    ThreadId,
};
use gprs_core::order::{OrderEnforcer, OrderGate, ScheduleKind};
use gprs_core::persist::{merkle_root, CheckpointMeta, DurableRecord, PersistBackend, CHUNK_SIZE};
use gprs_core::racecheck::{resource_code, AccessKind, OpenEdge, RaceDetector, RetireInfo};
use gprs_core::rol::{ReorderList, RolEntry};
use gprs_core::subthread::{SubThread, SubThreadKind, SyncOp};
use gprs_core::wal::{WalRecord, WriteAheadLog};
use gprs_telemetry::{
    spsc, RetiredOrderHash, ScheduleHash, Telemetry, TelemetryConfig, TraceEvent,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which sub-threads recovery squashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Squash the culprit and everything younger (`§3.4` basic recovery).
    Basic,
    /// Squash only the culprit and its dependents: same-thread successors,
    /// consumers of its channel items, lock/atomic-alias sharers, barrier
    /// co-participants and spawn/join descendants (`§3.4` selective
    /// restart).
    Selective,
}

/// Runtime configuration (see [`crate::GprsBuilder`]).
#[derive(Debug, Clone)]
pub(crate) struct RunConfig {
    pub schedule: ScheduleKind,
    pub workers: usize,
    pub recovery: RecoveryPolicy,
    pub telemetry: TelemetryConfig,
    /// Run the happens-before race detector over the retired order.
    pub racecheck: bool,
    /// Stable job identity stamped into the report (serve layer; 0 solo).
    pub job_id: u64,
    /// Monotonic submission sequence number (serve layer; 0 solo).
    pub submit_seq: u64,
    /// Durable persistence backend mirroring the WAL/checkpoint state
    /// (`None` — the default — keeps today's volatile behaviour and hot
    /// paths: every durable hook is gated on one `is_some` branch).
    pub persist: Option<Arc<dyn PersistBackend>>,
    /// Retirements between durable checkpoints (ignored without
    /// [`RunConfig::persist`]).
    pub durable_ckpt_every: u64,
    /// Cells whose `PlainStore` WAL undo records are statically proven
    /// dead (write-only across the attached model: no plain load, no
    /// `Update`, no synchronizing fetch-add ever observes the value).
    /// Stores to these cells skip the WAL append entirely — a squash
    /// leaves a stale value no one can read, and deterministic
    /// re-execution overwrites it. Empty (the default) unless
    /// [`crate::GprsBuilder::elide`] armed the proof.
    pub elide_cells: Arc<std::collections::BTreeSet<AtomicId>>,
}

/// Ring index for events recorded outside a known worker (retirement on the
/// deposit path, recovery, controller injections). [`Telemetry::record`]
/// clamps it to the external ring; all such recording happens under the
/// engine lock, so the ring's single-writer contract holds.
pub(crate) const EXTERNAL_RING: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThState {
    Active,
    Parked(BarrierId),
    Done,
}

/// What a thread is waiting to have granted.
pub(crate) enum PendingWant {
    /// Initial sub-thread of a (just-spawned) thread.
    Start,
    /// A synchronization operation returned by its last step.
    Op(Step),
    /// Barrier continuation of generation `gen`.
    Resume(BarrierId, u64),
    /// The exclusive step following a granted [`Step::Serialized`].
    SerializedRun,
    /// Re-creation of an un-spawned child after recovery, preserving its
    /// original thread id.
    Respawn {
        child: ThreadId,
        group: GroupId,
        weight: u32,
        program: Box<dyn DynThread>,
    },
}

impl std::fmt::Debug for PendingWant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PendingWant::Start => write!(f, "Start"),
            PendingWant::Op(s) => write!(f, "Op({s:?})"),
            PendingWant::Resume(b, g) => write!(f, "Resume({b}, gen {g})"),
            PendingWant::SerializedRun => write!(f, "SerializedRun"),
            PendingWant::Respawn { child, .. } => write!(f, "Respawn({child})"),
        }
    }
}

/// Reinstatable description of what opened a sub-thread (for squash/redo).
pub(crate) enum OpeningWant {
    Start,
    Lock(LockId),
    Push(ChannelId, Payload),
    Pop(ChannelId),
    FetchAdd(AtomicId, u64),
    SpawnParent {
        child: ThreadId,
        group: GroupId,
        weight: u32,
    },
    JoinParent(ThreadId),
    Resume(BarrierId, u64),
    SerializedRun,
}

impl std::fmt::Debug for OpeningWant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpeningWant::Start => write!(f, "Start"),
            OpeningWant::Lock(l) => write!(f, "Lock({l})"),
            OpeningWant::Push(c, _) => write!(f, "Push({c})"),
            OpeningWant::Pop(c) => write!(f, "Pop({c})"),
            OpeningWant::FetchAdd(a, d) => write!(f, "FetchAdd({a}, {d})"),
            OpeningWant::SpawnParent { child, .. } => write!(f, "SpawnParent({child})"),
            OpeningWant::JoinParent(t) => write!(f, "JoinParent({t})"),
            OpeningWant::Resume(b, g) => write!(f, "Resume({b}, gen {g})"),
            OpeningWant::SerializedRun => write!(f, "SerializedRun"),
        }
    }
}

#[derive(Debug)]
pub(crate) struct OpeningRec {
    pub want: OpeningWant,
    /// The sub-thread that preceded this one in its thread (for provenance
    /// attribution after reinstatement).
    pub prev: Option<SubThreadId>,
}

pub(crate) struct ThreadRec {
    pub program: Option<Box<dyn DynThread>>,
    pub group: GroupId,
    pub weight: u32,
    pub pending: Option<PendingWant>,
    pub current_st: Option<SubThreadId>,
    pub state: ThState,
    pub registered: bool,
    /// Final sub-thread (ending at `Exit`), for join dependence edges.
    pub final_st: Option<SubThreadId>,
    /// The parent continuation sub-thread that spawned this thread.
    pub spawned_by: Option<SubThreadId>,
}

impl std::fmt::Debug for ThreadRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRec")
            .field("group", &self.group)
            .field("state", &self.state)
            .field("pending", &self.pending)
            .field("current_st", &self.current_st)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
pub(crate) struct ChanRec {
    /// Queue of (item, producing sub-thread).
    pub items: VecDeque<(Payload, Option<SubThreadId>)>,
}

pub(crate) struct LockRec {
    pub holder: Option<SubThreadId>,
    /// Protected data; `None` while checked out to a running step.
    pub data: Option<Box<dyn Recoverable>>,
}

impl std::fmt::Debug for LockRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockRec")
            .field("holder", &self.holder)
            .field("checked_out", &self.data.is_none())
            .finish()
    }
}

#[derive(Debug)]
pub(crate) struct BarrierRec {
    pub participants: u32,
    pub waiting: Vec<ThreadId>,
    /// Arrival-ending sub-threads of the forming generation.
    pub arrival_sts: Vec<SubThreadId>,
    pub gen: u64,
}

#[derive(Debug, Default)]
pub(crate) struct GenRec {
    pub arrivals: Vec<SubThreadId>,
    pub resumes: Vec<SubThreadId>,
}

#[derive(Debug, Default)]
pub(crate) struct FileRec {
    pub name: String,
    pub committed: Vec<u8>,
    /// Writes staged by still-unretired sub-threads (output-commit delay).
    pub staged: Vec<(SubThreadId, Vec<u8>)>,
}

/// Snapshot store — the runtime's history buffer. Data-bearing rather than
/// closure-bearing (unlike [`gprs_core::history::HistoryBuffer`]) so that
/// recovery can apply snapshots against [`Inner`] while holding its lock.
#[derive(Default)]
pub(crate) struct HistoryStore {
    pub seq: u64,
    pub thread_snaps: Vec<(u64, SubThreadId, ThreadId, Box<dyn std::any::Any + Send>)>,
    pub lock_snaps: Vec<(u64, SubThreadId, LockId, Box<dyn Recoverable>)>,
    pub block_snaps: Vec<(u64, SubThreadId, u64, Vec<u8>)>,
}

impl std::fmt::Debug for HistoryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryStore")
            .field("thread_snaps", &self.thread_snaps.len())
            .field("lock_snaps", &self.lock_snaps.len())
            .field("block_snaps", &self.block_snaps.len())
            .finish()
    }
}

impl HistoryStore {
    /// Drops every snapshot belonging to a batch of retired sub-threads in
    /// one retain pass per store (vs. one pass per sub-thread).
    pub fn prune_retired_batch(&mut self, retired: &BTreeSet<SubThreadId>) {
        if retired.is_empty() {
            return;
        }
        self.thread_snaps.retain(|(_, s, _, _)| !retired.contains(s));
        self.lock_snaps.retain(|(_, s, _, _)| !retired.contains(s));
        self.block_snaps.retain(|(_, s, _, _)| !retired.contains(s));
    }
}

#[derive(Debug)]
pub(crate) struct PendingException {
    pub exception: Exception,
    pub culprit: Option<SubThreadId>,
}

/// A step ready to run on a worker, carrying everything the step needs so
/// the inner lock is not held during user code.
pub(crate) struct StepTask {
    pub thread: ThreadId,
    pub stid: SubThreadId,
    pub program: Box<dyn DynThread>,
    pub popped: Option<Payload>,
    pub atomic_prev: Option<u64>,
    pub joined: Option<Payload>,
    /// Child thread created by the spawn that opened this sub-thread.
    pub spawned: Option<ThreadId>,
    /// Lock data checked out for the critical section.
    pub lock_out: Option<(LockId, Box<dyn Recoverable>)>,
    /// History sequence number reserved at grant for the thread checkpoint
    /// the worker captures off-lock.
    pub snap_seq: u64,
    /// History sequence number reserved for the lock snapshot (only
    /// meaningful when `lock_out` is set). Reserved *before* `snap_seq` so
    /// undo order matches the old under-lock capture order.
    pub lock_snap_seq: u64,
    /// A deferred WAL record to checksum off-lock: the reserved LSN plus a
    /// copy of the logged operation.
    pub seal: Option<(Lsn, RtOp)>,
}

/// State captured by a worker outside the engine lock, handed back through
/// the worker's SPSC buffer and folded into [`Inner`] at the worker's next
/// lock acquisition (its deposit). Entries only exist between a task's
/// grant and its deposit, so at any quiescent point — in particular when
/// recovery runs — every buffer is empty and the history store / WAL are
/// complete.
pub(crate) enum HandOff {
    /// A thread checkpoint for the history buffer.
    ThreadSnap {
        seq: u64,
        stid: SubThreadId,
        thread: ThreadId,
        snap: Box<dyn std::any::Any + Send>,
    },
    /// A critical section's lock-data snapshot.
    LockSnap {
        seq: u64,
        stid: SubThreadId,
        lock: LockId,
        snap: Box<dyn Recoverable>,
    },
    /// The checksum for a WAL record appended with a deferred checksum.
    Seal { lsn: Lsn, checksum: u64 },
}

/// Everything behind the runtime mutex.
pub(crate) struct Inner {
    pub cfg: RunConfig,
    pub enforcer: OrderEnforcer,
    pub threads: BTreeMap<ThreadId, ThreadRec>,
    pub next_thread: u32,
    pub rol: ReorderList,
    pub wal: WriteAheadLog<RtOp>,
    pub hist: HistoryStore,
    pub chans: BTreeMap<ChannelId, ChanRec>,
    pub locks: BTreeMap<LockId, LockRec>,
    pub atomics: BTreeMap<AtomicId, u64>,
    pub barriers: BTreeMap<BarrierId, BarrierRec>,
    pub gens: BTreeMap<(BarrierId, u64), GenRec>,
    /// arrival-ending sub-thread -> its barrier generation.
    pub arrival_gen: BTreeMap<SubThreadId, (BarrierId, u64)>,
    pub files: BTreeMap<u64, FileRec>,
    pub blocks: BTreeMap<u64, Vec<u8>>,
    pub next_block: u64,
    /// producer/parent sub-thread -> dependent sub-threads.
    pub edges: BTreeMap<SubThreadId, Vec<SubThreadId>>,
    pub opening: BTreeMap<SubThreadId, OpeningRec>,
    pub running: BTreeMap<SubThreadId, usize>,
    pub live: usize,
    pub outputs: BTreeMap<ThreadId, Payload>,
    pub pending_exceptions: VecDeque<PendingException>,
    /// Replay gate: threads whose squashed lock/atomic operations must
    /// re-grant in their original total order. While non-empty, only the
    /// front thread may be granted a lock or atomic operation; other
    /// threads' lock/atomic requests pass their turns.
    pub redo_locks: VecDeque<ThreadId>,
    pub recovering: bool,
    pub exclusive: Option<SubThreadId>,
    pub epoch: u64,
    pub pass_streak: usize,
    pub stats: RunStats,
    /// Shared event-ring + metrics facade (Arc so contexts/controllers can
    /// record without the engine lock if ever needed).
    pub telemetry: Arc<Telemetry>,
    /// Streaming digest of the grant order; owned here because grants are
    /// serialized by this lock.
    pub sched_hash: ScheduleHash,
    /// Streaming digest of per-thread retirement sequences.
    pub retired_hash: RetiredOrderHash,
    /// Opt-in bounded raw grant trace (`TelemetryConfig::raw_trace_cap`).
    pub raw_trace: Vec<(SubThreadId, ThreadId)>,
    /// Happens-before race detector, driven at retirement (opt-in).
    pub racecheck: Option<RaceDetector>,
    /// Plain accesses recorded by running bodies, per sub-thread in program
    /// order (consumed by the detector at retirement).
    pub plain_accesses: BTreeMap<SubThreadId, Vec<(ResourceId, AccessKind)>>,
    /// Recycled access vectors for `plain_accesses` (bounded pool; misses
    /// count as `hot_path_allocs`).
    pub access_pool: Vec<Vec<(ResourceId, AccessKind)>>,
    /// Reusable batch buffer for [`Inner::retire_ready`].
    pub retire_scratch: Vec<RolEntry>,
    /// Pop sub-thread -> producing (push) sub-thread, for the detector's
    /// push→pop edge (the opening want does not carry provenance).
    pub race_pop_src: BTreeMap<SubThreadId, SubThreadId>,
    /// Arrival-ending sub-thread -> the barrier generation its close clock
    /// contributes to (recorded at arrival grant; `arrival_gen` is only
    /// assigned at release, possibly after the ender retired).
    pub race_arrivals: BTreeMap<SubThreadId, (BarrierId, u64)>,
    pub poisoned: Option<String>,
    /// Set by [`crate::session::GprsSession::cancel`]: the run was halted
    /// at a quantum boundary rather than completing. Does not fail the
    /// report (cancelled jobs return their partial report), but a sealed
    /// recording of a cancelled run must not claim `complete` — its tape
    /// is a prefix, and an honest footer lets a replay classify reaching
    /// the tape's end as a reproduction instead of a divergence.
    pub cancelled_note: Option<String>,
    /// Deterministic chaos-injection plan state (see
    /// [`gprs_core::chaos::ChaosPlan`]); `None` outside chaos runs.
    pub chaos: Option<ChaosState>,
    /// Restart-as-recovery verifier: the durable retire prefix a resumed
    /// run must reproduce step-by-step (see [`gprs_core::persist`]).
    pub verify: Option<VerifyState>,
    /// Retired count at the last durable checkpoint.
    pub last_durable_ckpt: u64,
    /// Sharded-execution context when this engine runs as one order domain
    /// of a [`crate::shard::ShardedGprs`]; `None` for ordinary runs (every
    /// sharded hook is gated on one `is_some` branch).
    pub shard: Option<crate::shard::ShardCtx>,
    /// Streaming schedule recorder (armed by `GprsBuilder::record`). Fed
    /// one event per turn-consuming grant/arrival/exit; sealed and written
    /// to `record_path` at `collect_report`.
    pub recorder: Option<gprs_core::recording::Recorder>,
    /// Destination of the sealed recording.
    pub record_path: Option<std::path::PathBuf>,
    /// Replay verifier state when this run re-executes a recording (armed
    /// by `GprsBuilder::replay`); the enforcer's policy is a
    /// [`gprs_core::recording::ReplaySchedule`] over the same event stream.
    pub replay: Option<ReplayState>,
}

/// Replay verification: every turn-consuming event the live run performs is
/// checked against the recorded stream at the same position; the first
/// mismatch poisons the run with a named divergence (never silently, never
/// by panicking).
#[derive(Debug)]
pub(crate) struct ReplayState {
    pub rec: std::sync::Arc<gprs_core::recording::Recording>,
    /// Events verified so far (the live run's event position).
    pub verified: usize,
}

/// The durable retire prefix a resumed run re-verifies during replay:
/// at retirement index `pos` the replay must retire a sub-thread of
/// `expected[pos]`'s `(thread, kind tag, running digest)` or the run is
/// poisoned — divergence from the durable log is never silent.
#[derive(Debug, Default)]
pub(crate) struct VerifyState {
    pub expected: Vec<(u32, u8, u64)>,
    pub pos: usize,
}

/// Cursor state for a [`ChaosPlan`] being executed against this engine.
///
/// Grant-keyed events fire under the engine lock right after the matching
/// grant — while that grant's deferred-checksum WAL record is still
/// unsealed, so `Newest` victims are hit mid-WAL-append and `Holder`
/// victims inside critical sections. Recovery-keyed events fire from REX
/// after the matching recovery session, before the pending queue drains —
/// the injected exception is recovered in the same quiesced pass
/// (overlapping DEX→REX).
pub(crate) struct ChaosState {
    grant_events: Vec<ChaosEvent>,
    next_grant: usize,
    recovery_events: Vec<ChaosEvent>,
    next_recovery: usize,
    /// Recovery sessions completed (culprits processed by REX).
    sessions: u64,
}

impl ChaosState {
    pub fn new(plan: &ChaosPlan) -> Self {
        ChaosState {
            grant_events: plan.grant_events(),
            next_grant: 0,
            recovery_events: plan.recovery_events(),
            next_recovery: 0,
            sessions: 0,
        }
    }
}

impl std::fmt::Debug for ChaosState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosState")
            .field("grant_events", &self.grant_events.len())
            .field("next_grant", &self.next_grant)
            .field("recovery_events", &self.recovery_events.len())
            .field("sessions", &self.sessions)
            .finish()
    }
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("live", &self.live)
            .field("rol", &self.rol.len())
            .field("running", &self.running.len())
            .field("recovering", &self.recovering)
            .finish_non_exhaustive()
    }
}

/// Number of condvar shards for nested lock waits (keyed by `LockId`).
pub(crate) const LOCK_SHARDS: usize = 16;

/// The state shared by workers, contexts and controllers: the big lock plus
/// the lock-free structures that keep hot paths off it.
pub(crate) struct Shared {
    pub inner: Mutex<Inner>,
    /// Scheduler queue: workers seeking a grant wait here. Woken one at a
    /// time (`notify_one` chains); broadcast only on finish/poison/recovery.
    pub cv: Condvar,
    /// Lock-free mirror of the enforcer's grant frontier, republished under
    /// the lock at every token movement. Advisory outside the lock: used to
    /// decide whether a deposit needs to wake a peer, never to grant.
    pub gate: Arc<OrderGate>,
    /// Set (under the lock) when the run finished or poisoned, so
    /// `Controller::is_finished` polls without taking the lock.
    pub done: AtomicBool,
    /// Keyed wait queues for blocking *nested* lock acquisition from inside
    /// running steps; `release`/`unlock` wakes only the lock's shard.
    pub lock_shards: [Condvar; LOCK_SHARDS],
    /// Per-worker SPSC hand-off buffers for off-lock captured state (see
    /// [`HandOff`]). Strict single-owner: worker `i` alone pushes to and
    /// drains `handoffs[i]`.
    pub handoffs: Vec<spsc::Channel<HandOff>>,
    /// Workers currently parked on `cv`. Mutated only while holding the
    /// engine lock (incremented before the wait releases it, decremented
    /// after the wait reacquires it), so a reader that holds the lock sees
    /// the exact count — `wake_one_seeker` skips the kernel wake syscall
    /// outright when nobody is parked, which is the common case on the
    /// grant fast path.
    pub cv_sleepers: AtomicUsize,
    /// Nested-acquire waiters parked per lock shard; same discipline as
    /// [`Shared::cv_sleepers`].
    pub shard_sleepers: [AtomicUsize; LOCK_SHARDS],
    /// Configured worker count (for the spare-CPU wake heuristic).
    pub workers: usize,
    /// Hardware parallelism at construction. Waking a peer to overlap
    /// seeking/stepping only helps when a CPU is free to run it; on an
    /// oversubscribed host the wake merely preempts the worker that would
    /// have reached the work itself (same adaptive idea as spin-then-park
    /// mutexes, which also consult the CPU count).
    pub cpus: usize,
}

impl Shared {
    pub fn new(inner: Inner) -> Self {
        let gate = inner.enforcer.gate();
        let workers = inner.cfg.workers;
        Shared {
            inner: Mutex::new(inner),
            cv: Condvar::new(),
            gate,
            done: AtomicBool::new(false),
            lock_shards: std::array::from_fn(|_| Condvar::new()),
            handoffs: (0..workers).map(|_| spsc::Channel::new(8)).collect(),
            cv_sleepers: AtomicUsize::new(0),
            shard_sleepers: std::array::from_fn(|_| AtomicUsize::new(0)),
            workers,
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Whether a woken peer would have a CPU to run on: overlap wakes are
    /// issued only while the unparked worker set undersubscribes the
    /// hardware. Liveness never depends on these wakes — a granting or
    /// depositing worker always re-scans the frontier itself after its
    /// step — so suppressing them on an oversubscribed host only removes
    /// futile preemption.
    pub fn spare_cpu(&self) -> bool {
        self.workers
            .saturating_sub(self.cv_sleepers.load(Ordering::Relaxed))
            < self.cpus
    }

    /// Which shard a nested waiter for `lock` parks on.
    pub fn shard_ix(lock: LockId) -> usize {
        lock.raw() as usize % LOCK_SHARDS
    }

    /// Wakes one worker parked on the scheduler queue. Callers hold the
    /// engine lock, so the sleeper count is exact: when it is zero no
    /// worker is parked and none can park before we release the lock (a
    /// late seeker re-scans the post-update state before waiting), so the
    /// kernel wake can be skipped entirely.
    pub fn wake_one_seeker(&self, telemetry: &Telemetry) {
        if self.cv_sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        if telemetry.enabled() {
            telemetry.metrics.wakeups_issued.inc_serialized();
        }
        self.cv.notify_one();
    }

    /// Wakes the nested waiters parked on `lock`'s shard. Same exactness
    /// argument as [`Shared::wake_one_seeker`]: callers hold the engine
    /// lock and shard waiters only mutate their count under it.
    pub fn wake_lock_shard(&self, lock: LockId, telemetry: &Telemetry) {
        let ix = Self::shard_ix(lock);
        if self.shard_sleepers[ix].load(Ordering::Relaxed) == 0 {
            return;
        }
        if telemetry.enabled() {
            telemetry.metrics.wakeups_issued.inc_serialized();
        }
        self.lock_shards[ix].notify_all();
    }

    /// Broadcast to every waiter class — finish, poison, and
    /// post-recovery, where any waiter may have become runnable.
    pub fn wake_all(&self) {
        self.cv.notify_all();
        for shard in &self.lock_shards {
            shard.notify_all();
        }
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Shared { .. }")
    }
}

pub(crate) type SharedRef = Arc<Shared>;

/// What a worker decided to do after inspecting the state.
enum Decision {
    Run {
        task: StepTask,
        /// Deferred peer wake, decided under the lock but issued after it
        /// is released: the new grant frontier already has an armed
        /// deposit a parked peer could take, and at least one peer is
        /// parked. Notifying after unlock spares the woken worker an
        /// immediate stall on the still-held mutex.
        wake_peer: bool,
    },
    Finished,
}

impl Inner {
    pub fn new(cfg: RunConfig) -> Self {
        let enforcer = OrderEnforcer::with_schedule(cfg.schedule);
        let telemetry = Arc::new(Telemetry::new(&cfg.telemetry, cfg.workers));
        let racecheck = cfg.racecheck.then(RaceDetector::new);
        Inner {
            cfg,
            enforcer,
            threads: BTreeMap::new(),
            next_thread: 0,
            rol: ReorderList::new(),
            wal: WriteAheadLog::new(),
            hist: HistoryStore::default(),
            chans: BTreeMap::new(),
            locks: BTreeMap::new(),
            atomics: BTreeMap::new(),
            barriers: BTreeMap::new(),
            gens: BTreeMap::new(),
            arrival_gen: BTreeMap::new(),
            files: BTreeMap::new(),
            blocks: BTreeMap::new(),
            next_block: 0,
            edges: BTreeMap::new(),
            opening: BTreeMap::new(),
            running: BTreeMap::new(),
            live: 0,
            outputs: BTreeMap::new(),
            pending_exceptions: VecDeque::new(),
            redo_locks: VecDeque::new(),
            recovering: false,
            exclusive: None,
            epoch: 0,
            pass_streak: 0,
            stats: RunStats::default(),
            telemetry,
            sched_hash: ScheduleHash::new(),
            retired_hash: RetiredOrderHash::new(),
            raw_trace: Vec::new(),
            racecheck,
            plain_accesses: BTreeMap::new(),
            access_pool: Vec::new(),
            retire_scratch: Vec::new(),
            race_pop_src: BTreeMap::new(),
            race_arrivals: BTreeMap::new(),
            poisoned: None,
            cancelled_note: None,
            chaos: None,
            verify: None,
            last_durable_ckpt: 0,
            shard: None,
            recorder: None,
            record_path: None,
            replay: None,
        }
    }

    /// Registers a thread (builder-time or dynamic spawn).
    pub fn add_thread(
        &mut self,
        program: Box<dyn DynThread>,
        group: GroupId,
        weight: u32,
        spawned_by: Option<SubThreadId>,
    ) -> ThreadId {
        let tid = ThreadId::new(self.next_thread);
        self.next_thread += 1;
        self.enforcer
            .register_thread(tid, group, weight)
            .expect("fresh thread id");
        self.threads.insert(
            tid,
            ThreadRec {
                program: Some(program),
                group,
                weight,
                pending: Some(PendingWant::Start),
                current_st: None,
                state: ThState::Active,
                registered: true,
                final_st: None,
                spawned_by,
            },
        );
        self.live += 1;
        tid
    }

    pub(crate) fn poison(&mut self, msg: impl Into<String>) {
        if self.poisoned.is_none() {
            self.poisoned = Some(msg.into());
        }
    }

    /// Feeds one turn-consuming event (a grant's sub-thread kind, or the
    /// structural `EVT_ARRIVE`/`EVT_EXIT` tags) to the recorder and/or the
    /// replay verifier. Under replay, the first event that does not match
    /// the recorded stream poisons the run with a named divergence.
    pub(crate) fn record_event(&mut self, thread: ThreadId, kind: u8) {
        use gprs_core::recording::event_kind_name;
        if let Some(r) = self.recorder.as_mut() {
            r.record_event(thread.raw(), kind);
        }
        let Some(rs) = self.replay.as_mut() else {
            return;
        };
        let pos = rs.verified;
        match rs.rec.events.get(pos) {
            Some(e) if e.thread == thread.raw() && e.kind == kind => rs.verified += 1,
            Some(e) => {
                let (et, ek) = (e.thread, e.kind);
                self.poison(format!(
                    "replay divergence at event {pos}: recording expects \
                     (thread {et}, {}) but the live run performed \
                     (thread {}, {})",
                    event_kind_name(ek),
                    thread.raw(),
                    event_kind_name(kind),
                ));
            }
            None => {
                let total = rs.rec.events.len();
                self.poison(format!(
                    "replay divergence: live run performed event {pos} \
                     (thread {}, {}) past the end of the {total}-event recording",
                    thread.raw(),
                    event_kind_name(kind),
                ));
            }
        }
    }

    /// Replay sanity gate, checked before the token holder's want is
    /// examined: under a faithful replay the recorded holder is always a
    /// live, registered thread, so anything else is a divergence to poison
    /// on (not an `expect` to die on).
    pub(crate) fn replay_holder_gate(&self, holder: ThreadId) -> Option<String> {
        let rs = self.replay.as_ref()?;
        let pos = rs.verified;
        match self.threads.get(&holder) {
            None => Some(format!(
                "replay divergence at event {pos}: recorded thread {} was \
                 never created in the live run",
                holder.raw()
            )),
            Some(r) if r.state != ThState::Active => Some(format!(
                "replay divergence at event {pos}: recorded thread {} is \
                 {:?} in the live run (recording expects it active)",
                holder.raw(),
                r.state
            )),
            Some(_) => None,
        }
    }

    /// The loud terminal message when the replay tape runs out while live
    /// threads remain: expected (and informative) for recordings of
    /// poisoned runs, a divergence otherwise.
    pub(crate) fn replay_exhausted_msg(&self) -> Option<String> {
        use gprs_core::recording::RecordedOutcome;
        let rs = self.replay.as_ref()?;
        if rs.verified < rs.rec.events.len() {
            return None;
        }
        Some(match &rs.rec.outcome {
            RecordedOutcome::Poisoned(orig) => format!(
                "replay reached the end of a failed recording after \
                 {} events (original failure: {orig})",
                rs.verified
            ),
            RecordedOutcome::Complete => format!(
                "replay divergence: recording ended after {} events but the \
                 live run still has {} live threads",
                rs.verified, self.live
            ),
        })
    }

    /// Seals the recorder (if armed) into a finished [`Recording`] carrying
    /// the run's final hash digests and outcome, with its destination path.
    pub(crate) fn take_recording(
        &mut self,
    ) -> Option<(std::path::PathBuf, gprs_core::recording::Recording)> {
        use gprs_core::recording::RecordedOutcome;
        let recorder = self.recorder.take()?;
        let path = self.record_path.take()?;
        let outcome = match (&self.poisoned, &self.cancelled_note) {
            (Some(msg), _) => RecordedOutcome::Poisoned(msg.clone()),
            (None, Some(note)) => RecordedOutcome::Poisoned(note.clone()),
            (None, None) => RecordedOutcome::Complete,
        };
        Some((
            path,
            recorder.finish(self.sched_hash.digest(), self.retired_hash.digest(), outcome),
        ))
    }

    /// Post-run replay self-verification: a clean replay must have consumed
    /// the whole tape and reproduced both footer digests bit-identically.
    /// Returns the failure message, if any.
    pub(crate) fn replay_verify_final(&self) -> Option<String> {
        let rs = self.replay.as_ref()?;
        if self.poisoned.is_some() {
            return None; // already diagnosed
        }
        if rs.verified != rs.rec.events.len() {
            return Some(format!(
                "replay divergence: live run finished after {} events but \
                 the recording has {}",
                rs.verified,
                rs.rec.events.len()
            ));
        }
        let (sched, retired) = (self.sched_hash.digest(), self.retired_hash.digest());
        if sched != rs.rec.sched_hash {
            return Some(format!(
                "replay self-verification failed: schedule hash {sched:016x} \
                 != recorded {:016x}",
                rs.rec.sched_hash
            ));
        }
        if retired != rs.rec.retired_hash {
            return Some(format!(
                "replay self-verification failed: retired hash {retired:016x} \
                 != recorded {:016x}",
                rs.rec.retired_hash
            ));
        }
        None
    }

    pub(crate) fn bump(&mut self) {
        self.epoch += 1;
        self.pass_streak = 0;
    }

    /// Fires any chaos events due at the current grant count. Runs under
    /// the engine lock immediately after a grant, so `Newest` resolves to
    /// the sub-thread granted this very cycle (whose deferred-checksum WAL
    /// record is still unsealed) and `Holder` to a live critical section.
    pub(crate) fn chaos_tick_grant(&mut self) {
        let Some(mut cs) = self.chaos.take() else {
            return;
        };
        while let Some(ev) = cs.grant_events.get(cs.next_grant) {
            let due = match ev.trigger {
                ChaosTrigger::AtGrant(n) => n <= self.stats.grants,
                ChaosTrigger::MidRecovery(_) => unreachable!("grant_events filtered"),
            };
            if !due {
                break;
            }
            let ev = ev.clone();
            cs.next_grant += 1;
            self.chaos_fire(&ev, false);
        }
        self.chaos = Some(cs);
    }

    /// Fires chaos events keyed to the recovery session that just finished
    /// its plan. Called from REX **inside** the recovery pass, before the
    /// pending queue drains, so the injected exception is recovered by the
    /// same quiesced pass — overlapping DEX→REX.
    pub(crate) fn chaos_tick_recovery(&mut self) {
        let Some(mut cs) = self.chaos.take() else {
            return;
        };
        cs.sessions += 1;
        while let Some(ev) = cs.recovery_events.get(cs.next_recovery) {
            let due = match ev.trigger {
                ChaosTrigger::MidRecovery(n) => n <= cs.sessions,
                ChaosTrigger::AtGrant(_) => unreachable!("recovery_events filtered"),
            };
            if !due {
                break;
            }
            let ev = ev.clone();
            cs.next_recovery += 1;
            self.chaos_fire(&ev, true);
        }
        self.chaos = Some(cs);
    }

    /// Delivers one chaos event: `burst` exceptions aimed by the victim
    /// selector, each at a distinct candidate. Mirrors
    /// `Controller::inject_on`: the culprit is marked excepted right away
    /// (an excepted entry cannot retire out from under the pending
    /// exception) and a `PendingException` is queued. Victimless global
    /// exceptions keep a `None` culprit and are counted ignored by REX,
    /// like the paper's exceptions arriving on idle contexts.
    fn chaos_fire(&mut self, ev: &ChaosEvent, in_recovery: bool) {
        let mut taken: Vec<SubThreadId> = Vec::new();
        for _ in 0..ev.burst.max(1) {
            if ev.scope == ExceptionScope::Local {
                // Handled precisely on the faulting context (§2.2): counted,
                // never queued, no global recovery.
                self.stats.exceptions += 1;
                self.stats.exceptions_ignored += 1;
                continue;
            }
            let victim = self.chaos_pick_victim(ev.victim, in_recovery, &taken);
            let context = victim
                .and_then(|v| self.running.get(&v))
                .map(|&w| w as u32)
                .unwrap_or(match ev.victim {
                    VictimSelector::Context(c) => c,
                    _ => 0,
                });
            let exception = Exception::global(ev.kind, ContextId::new(context), 0);
            if let Some(v) = victim {
                taken.push(v);
                if self.rol.mark_excepted(v, exception.clone()).is_err() {
                    // The selector races retirement only when the schedule
                    // state is already off the rails (e.g. a divergent
                    // replay); degrade loudly instead of unwinding a worker.
                    self.poison(format!(
                        "chaos victim {} vanished from the ROL before the \
                         exception landed (divergent replay or corrupted \
                         schedule state)",
                        v.raw()
                    ));
                    continue;
                }
            }
            self.pending_exceptions.push_back(PendingException {
                exception,
                culprit: victim,
            });
        }
        self.bump();
    }

    /// Picks the next distinct victim for a burst member. At a grant
    /// trigger candidates are the running sub-threads; mid-recovery the
    /// machine is quiesced (`running` empty), so candidates are the
    /// surviving ROL entries — the sub-threads recovery just chose *not*
    /// to squash.
    fn chaos_pick_victim(
        &self,
        sel: VictimSelector,
        in_recovery: bool,
        taken: &[SubThreadId],
    ) -> Option<SubThreadId> {
        let free = |id: &SubThreadId| !taken.contains(id);
        if in_recovery {
            let mut live = self.rol.iter().map(|e| e.id()).filter(free);
            return match sel {
                VictimSelector::Oldest | VictimSelector::Holder => live.next(),
                VictimSelector::Newest => live.last(),
                // No context is running anything mid-recovery.
                VictimSelector::Context(_) => None,
            };
        }
        match sel {
            VictimSelector::Oldest => self.running.keys().copied().find(free),
            VictimSelector::Newest => self.running.keys().rev().copied().find(free),
            VictimSelector::Holder => self
                .locks
                .values()
                .filter_map(|l| l.holder)
                .filter(|h| self.rol.contains(*h))
                .find(free)
                // No live critical section: fall back to the oldest, so a
                // holder-targeted storm still lands every member.
                .or_else(|| self.running.keys().copied().find(free)),
            VictimSelector::Context(c) => self
                .running
                .iter()
                .find(|&(id, &w)| w == c as usize && free(id))
                .map(|(&id, _)| id),
        }
    }

    // ---- sharded-execution hooks (see `crate::shard`) ----------------

    /// Drains cross-shard input at the top of every seek: in-edge tokens
    /// into the local channel replicas and hub-released barrier
    /// generations into local releases. Returns `true` when a peer domain
    /// aborted the run.
    pub(crate) fn shard_poll(&mut self) -> bool {
        let Some(ctx) = self.shard.take() else {
            return false;
        };
        if ctx.hub.aborted() {
            self.shard = Some(ctx);
            return true;
        }
        let mut progressed = false;
        for (&chan, q) in &ctx.in_edges {
            while let Some((_seq, item)) = q.pop() {
                // Provenance is `None`: the producing sub-thread retired in
                // its own domain, so the item can never be un-pushed here.
                self.chans
                    .entry(chan)
                    .or_default()
                    .items
                    .push_back((item, None));
                progressed = true;
            }
        }
        for &b in &ctx.edge_barriers {
            let released = ctx.hub.released(b);
            while self.barriers.get(&b).is_some_and(|bar| bar.gen < released) {
                self.release_barrier(b);
                progressed = true;
            }
        }
        self.shard = Some(ctx);
        if progressed {
            self.bump();
        }
        false
    }

    /// Gate for a sharded grant: the step must stay inside the domain the
    /// plan assigned, and dynamic topology (spawn/join) plus serialized
    /// sections are out of scope. Returns a poison diagnostic on violation.
    pub(crate) fn shard_gate(&self, holder: ThreadId, step: &Step) -> Option<String> {
        let ctx = self.shard.as_ref()?;
        let res = match step {
            Step::Lock(m) => ResourceId::Lock(m.id()),
            Step::Push(c, _) | Step::Pop(c) => ResourceId::Channel(c.id()),
            Step::FetchAdd(a, _) => ResourceId::Atomic(*a),
            Step::Barrier(b) => ResourceId::Barrier(*b),
            Step::Spawn(_) => {
                return Some(format!(
                    "sharded execution does not support dynamic spawn \
                     ({holder}); run unsharded or restructure the workload"
                ))
            }
            Step::Join(_) => {
                return Some(format!(
                    "sharded execution does not support join ({holder}); \
                     run unsharded or restructure the workload"
                ))
            }
            Step::Serialized => {
                return Some(format!(
                    "sharded execution does not support serialized \
                     sections ({holder})"
                ))
            }
            Step::Exit(_) => return None,
        };
        if ctx.allowed.contains(&res) {
            None
        } else {
            Some(format!(
                "sharded grant violation: {holder} touched {res} outside \
                 order domain {} (stale shard plan?)",
                ctx.domain
            ))
        }
    }

    /// Per-entry retirement hook: forwards a retiring cross-edge push onto
    /// its edge queue (retirement is the commit point, so the forward is
    /// squash-proof) and publishes deferred barrier arrivals. Must run
    /// *before* the entry's opening record is dropped.
    pub(crate) fn shard_on_retire(&mut self, id: SubThreadId) {
        let Some(mut ctx) = self.shard.take() else {
            return;
        };
        if let Some(OpeningRec {
            want: OpeningWant::Push(chan, _),
            ..
        }) = self.opening.get(&id)
        {
            if let Some((queue, consumer)) = ctx.out_edges.get(chan) {
                // Pushes retire in push (sub-thread) order and a producer
                // domain has no local popper, so the front staged item is
                // exactly this push's.
                let (item, producer) = self
                    .chans
                    .get_mut(chan)
                    .and_then(|c| c.items.pop_front())
                    .expect("retiring edge push is staged locally");
                debug_assert_eq!(producer, Some(id), "edges forward in retirement order");
                queue.push(item);
                ctx.hub.wake_domain(*consumer);
            }
        }
        if let Some(bars) = ctx.edge_arrivals.remove(&id) {
            for b in bars {
                if !ctx.hub.arrive(b) {
                    self.poison(format!(
                        "sharded retirement published an arrival on barrier \
                         {b} the hub does not know (divergent replay or \
                         corrupted shard plan)"
                    ));
                }
            }
        }
        self.shard = Some(ctx);
    }

    /// Publishes a local poison to the hub so peer domains stop instead of
    /// stalling on edges that will never produce again.
    pub(crate) fn shard_publish_abort(&self) {
        if let Some(ctx) = &self.shard {
            ctx.hub.abort();
        }
    }

    /// Publishes this domain's completion: closes its out-edges (consumers
    /// observe starvation instead of waiting forever) and bumps the hub's
    /// finished count. Idempotent.
    pub(crate) fn shard_finish_domain(&mut self) {
        let Some(ctx) = self.shard.as_mut() else {
            return;
        };
        if ctx.finish_published {
            return;
        }
        ctx.finish_published = true;
        for (queue, _) in ctx.out_edges.values() {
            queue.close();
        }
        ctx.hub.domain_finished();
    }

    /// Whether any live thread is parked on a cross-domain barrier: its
    /// release comes from the hub, so a holderless engine must keep
    /// waiting instead of declaring deadlock.
    pub(crate) fn shard_parked_on_edge(&self) -> bool {
        let Some(ctx) = self.shard.as_ref() else {
            return false;
        };
        self.threads.values().any(|rec| match rec.state {
            ThState::Parked(b) => ctx.edge_barriers.contains(&b),
            _ => false,
        })
    }

    /// Whether every peer domain's pool already finished (so no further
    /// cross-domain arrival can ever be published).
    pub(crate) fn shard_peers_done(&self) -> bool {
        self.shard
            .as_ref()
            .is_some_and(|ctx| ctx.hub.peers_done(ctx.domain))
    }

    /// Retires the maximal run of completed head sub-threads as one batch:
    /// per-entry dependence metadata and staged file output (the
    /// output-commit point) are handled entry by entry, but checkpoint and
    /// WAL pruning run once per batch — a single retain pass per store
    /// instead of one per retired sub-thread.
    fn retire_ready(&mut self) {
        let mut entries = std::mem::take(&mut self.retire_scratch);
        entries.clear();
        self.rol.retire_ready_into(&mut entries);
        if !entries.is_empty() {
            let mut batch: BTreeSet<SubThreadId> = BTreeSet::new();
            for entry in &entries {
                let id = entry.id();
                let thread = entry.thread();
                batch.insert(id);
                self.stats.retired += 1;
                self.retired_hash
                    .record(thread.raw(), entry.descriptor.kind.tag());
                if self.cfg.persist.is_some() || self.verify.is_some() {
                    self.durable_on_retire(
                        id.raw(),
                        thread.raw(),
                        entry.descriptor.kind.tag(),
                    );
                }
                if self.telemetry.enabled() {
                    self.telemetry.metrics.retired.inc_serialized();
                    self.telemetry.record(
                        EXTERNAL_RING,
                        TraceEvent::Retire {
                            subthread: id.raw(),
                            thread: thread.raw(),
                        },
                    );
                }
                if self.racecheck.is_some() {
                    self.race_retire(entry);
                }
                if self.shard.is_some() {
                    self.shard_on_retire(id);
                }
                self.opening.remove(&id);
                self.edges.remove(&id);
                if let Some(gen_key) = self.arrival_gen.remove(&id) {
                    if let Some(gen) = self.gens.get_mut(&gen_key) {
                        gen.arrivals.retain(|&a| a != id);
                        if gen.arrivals.is_empty() {
                            self.gens.remove(&gen_key);
                        }
                    }
                }
                for gen in self.gens.values_mut() {
                    gen.resumes.retain(|&r| r != id);
                }
                for file in self.files.values_mut() {
                    let mut staged = std::mem::take(&mut file.staged);
                    staged.retain(|(s, bytes)| {
                        if *s == id {
                            file.committed.extend_from_slice(bytes);
                            false
                        } else {
                            true
                        }
                    });
                    file.staged = staged;
                }
            }
            if self.cfg.persist.is_some() {
                // Count the records each retiring sub-thread prunes (one
                // extra pass over the retained log, durable mode only) so
                // the durable ledger mirrors the in-memory one.
                let mut counts: BTreeMap<SubThreadId, u64> = BTreeMap::new();
                for r in self.wal.iter() {
                    if batch.contains(&r.subthread) {
                        *counts.entry(r.subthread).or_insert(0) += 1;
                    }
                }
                for (stid, count) in counts {
                    self.durable_record(&DurableRecord::Prune {
                        subthread: stid.raw(),
                        count,
                    });
                }
            }
            let pruned = self.wal.prune_retired_batch(&batch);
            self.hist.prune_retired_batch(&batch);
            if self.telemetry.enabled() {
                self.telemetry.metrics.wal_prunes.add_serialized(pruned);
                self.telemetry
                    .metrics
                    .retire_batch
                    .record_serialized(entries.len() as u64);
                if pruned > 0 {
                    self.telemetry.record(
                        EXTERNAL_RING,
                        TraceEvent::WalPrune {
                            subthread: entries[0].id().raw(),
                            records: pruned,
                        },
                    );
                }
            }
        }
        entries.clear();
        self.retire_scratch = entries;
        if self.cfg.persist.is_some()
            && self.stats.retired - self.last_durable_ckpt >= self.cfg.durable_ckpt_every
        {
            self.durable_checkpoint();
        }
        self.stats.rol_peak = self.stats.rol_peak.max(self.rol.peak_occupancy());
        if self.telemetry.enabled() {
            self.telemetry
                .metrics
                .rol_occupancy_hw
                .observe_serialized(self.rol.peak_occupancy() as u64);
        }
    }

    /// Feeds one retiring sub-thread to the race detector: its opening
    /// happens-before edge (from the opening want), the locks/atomics it
    /// touched (from the ROL entry's dependence aliases), the plain
    /// accesses its body recorded, and any barrier-arrival contribution.
    /// Runs at retirement — in the deterministic total order — so the race
    /// stream is identical across runs and worker counts.
    fn race_retire(&mut self, entry: &RolEntry) {
        let id = entry.id();
        let open = match self.opening.get(&id).map(|o| &o.want) {
            Some(OpeningWant::Push(c, _)) => Some(OpenEdge::ChanPush(*c)),
            Some(OpeningWant::Pop(c)) => Some(OpenEdge::ChanPop {
                chan: *c,
                producer: self.race_pop_src.remove(&id),
            }),
            Some(OpeningWant::Resume(b, gen)) => Some(OpenEdge::BarrierResume {
                barrier: *b,
                gen: *gen,
            }),
            Some(OpeningWant::SpawnParent { child, .. }) => {
                Some(OpenEdge::Fork { child: *child })
            }
            Some(OpeningWant::JoinParent(t)) => Some(OpenEdge::Join { child: *t }),
            Some(OpeningWant::SerializedRun) => Some(OpenEdge::Serialized),
            // Lock and atomic acquire edges come from `sync_resources`.
            Some(OpeningWant::Lock(_) | OpeningWant::FetchAdd(_, _) | OpeningWant::Start)
            | None => None,
        };
        let accesses = self.plain_accesses.remove(&id).unwrap_or_default();
        let sync_resources: Vec<ResourceId> = entry
            .resources
            .iter()
            .filter(|r| matches!(r, ResourceId::Lock(_) | ResourceId::Atomic(_)))
            .copied()
            .collect();
        let arrival = self.race_arrivals.remove(&id);
        let races = self.racecheck.as_mut().expect("racecheck on").retire(RetireInfo {
            id,
            thread: entry.thread(),
            open,
            sync_resources: &sync_resources,
            accesses: &accesses,
            arrival,
        });
        if !races.is_empty() {
            self.stats.races += races.len() as u64;
            if self.telemetry.enabled() {
                self.telemetry.metrics.races_detected.add_serialized(races.len() as u64);
                for race in &races {
                    self.telemetry.record(
                        EXTERNAL_RING,
                        TraceEvent::RaceDetected {
                            subthread: race.current.subthread.raw(),
                            prior: race.prior.subthread.raw(),
                            resource: resource_code(race.resource),
                        },
                    );
                }
            }
        }
        self.recycle_access_vec(accesses);
    }

    /// Returns a consumed plain-access vector to the bounded pool.
    pub(crate) fn recycle_access_vec(&mut self, mut v: Vec<(ResourceId, AccessKind)>) {
        if self.access_pool.len() < 64 && v.capacity() > 0 {
            v.clear();
            self.access_pool.push(v);
        }
    }

    /// Records one plain access for the race detector, reusing a pooled
    /// vector when the sub-thread has none yet.
    fn record_plain_access(&mut self, stid: SubThreadId, res: ResourceId, kind: AccessKind) {
        use std::collections::btree_map::Entry;
        match self.plain_accesses.entry(stid) {
            Entry::Occupied(e) => e.into_mut().push((res, kind)),
            Entry::Vacant(e) => {
                let v = match self.access_pool.pop() {
                    Some(v) => v,
                    None => {
                        if self.telemetry.enabled() {
                            self.telemetry.metrics.hot_path_allocs.inc_serialized();
                        }
                        Vec::new()
                    }
                };
                e.insert(v).push((res, kind));
            }
        }
    }

    /// Folds one off-lock captured hand-off into the bookkeeping (see
    /// [`HandOff`]). A seal for an already-pruned record is a benign no-op:
    /// the sub-thread retired before its producer's next lock acquisition.
    pub(crate) fn apply_handoff(&mut self, h: HandOff) {
        match h {
            HandOff::ThreadSnap {
                seq,
                stid,
                thread,
                snap,
            } => self.hist.thread_snaps.push((seq, stid, thread, snap)),
            HandOff::LockSnap {
                seq,
                stid,
                lock,
                snap,
            } => self.hist.lock_snaps.push((seq, stid, lock, snap)),
            HandOff::Seal { lsn, checksum } => {
                let _ = self.wal.seal(lsn, checksum);
                if self.cfg.persist.is_some() {
                    // Mirrored even when the in-memory seal no-op'd (the
                    // record already retired): the loader tolerates a
                    // dangling durable seal the same way.
                    self.durable_record(&DurableRecord::Seal {
                        lsn: lsn.raw(),
                        checksum,
                    });
                }
            }
        }
    }

    /// Reads a shared cell without synchronization (a *plain* load): the
    /// value is returned as-is and, when the race detector is on, the
    /// access is recorded for the happens-before check at retirement.
    pub(crate) fn plain_load(&mut self, stid: SubThreadId, atomic: AtomicId) -> u64 {
        let v = *self.atomics.get(&atomic).expect("registered atomic");
        if self.racecheck.is_some() {
            self.record_plain_access(stid, ResourceId::Atomic(atomic), AccessKind::Read);
        }
        v
    }

    /// Writes a shared cell without synchronization (a *plain* store). The
    /// old value is WAL-logged so runtime self-recovery can undo it, but —
    /// unlike [`RtOp::FetchAdd`] — no dependence alias is added to the
    /// sub-thread, which is exactly the leak the race detector exists to
    /// flag.
    pub(crate) fn plain_store(
        &mut self,
        worker: usize,
        stid: SubThreadId,
        atomic: AtomicId,
        value: u64,
    ) {
        let old = self
            .atomics
            .insert(atomic, value)
            .expect("registered atomic");
        if self.cfg.elide_cells.contains(&atomic) {
            // Statically dead store: the old value can never be observed,
            // so the undo record would be pure WAL traffic. Control
            // records (locks, channels, fetch-adds) are never elided —
            // recovery's replay correctness depends on them.
            if self.telemetry.enabled() {
                self.telemetry.metrics.wal_records_elided.inc_serialized();
            }
        } else {
            self.wal_append(worker, stid, RtOp::PlainStore { atomic, old });
        }
        if self.racecheck.is_some() {
            self.record_plain_access(stid, ResourceId::Atomic(atomic), AccessKind::Write);
        }
    }

    /// Appends a WAL record and traces it.
    fn wal_append(&mut self, worker: usize, stid: SubThreadId, op: RtOp) {
        if self.cfg.persist.is_some() {
            // Mirror durably before the in-memory append consumes `op`:
            // same write-ahead discipline, one storage layer further out.
            let lsn = self.wal.next_lsn();
            let checksum = WalRecord::checksum_of(lsn, stid, &op);
            let text = format!("{op:?}");
            self.durable_record(&DurableRecord::Append {
                lsn: lsn.raw(),
                subthread: stid.raw(),
                checksum,
                op: text,
            });
        }
        self.wal.append(stid, op);
        self.trace_wal_append(worker, stid);
    }

    /// Appends a WAL record with a deferred checksum (the expensive part of
    /// record construction), returning the reserved LSN plus a copy of the
    /// operation so the granted worker can compute and hand back the
    /// checksum outside the lock. Used only on the hot grant arms.
    fn wal_append_deferred(&mut self, worker: usize, stid: SubThreadId, op: RtOp) -> (Lsn, RtOp) {
        let lsn = self.wal.append_deferred(stid, op.clone());
        if self.cfg.persist.is_some() {
            // Deferred checksum durably too: checksum 0 now, the matching
            // `Seal` record carries the late hash.
            let text = format!("{op:?}");
            self.durable_record(&DurableRecord::Append {
                lsn: lsn.raw(),
                subthread: stid.raw(),
                checksum: 0,
                op: text,
            });
        }
        self.trace_wal_append(worker, stid);
        (lsn, op)
    }

    /// Mirrors one record into the durable backend; a persistence failure
    /// poisons the run (durability was requested — losing it silently
    /// would fake precise restartability).
    pub(crate) fn durable_record(&mut self, rec: &DurableRecord) {
        let Some(p) = self.cfg.persist.clone() else {
            return;
        };
        if let Err(e) = p.record(rec) {
            self.poison(format!("durable persistence failed: {e}"));
        }
    }

    /// One retirement's durable/verification work: checks the resumed
    /// prefix (restart-as-recovery) and mirrors a `Retire` record. Called
    /// only when persistence or verification is armed.
    fn durable_on_retire(&mut self, subthread: u64, thread: u32, kind: u8) {
        let digest = self.retired_hash.digest();
        let mut verified = false;
        let mut mismatch = None;
        if let Some(v) = &mut self.verify {
            if v.pos < v.expected.len() {
                let exp = v.expected[v.pos];
                v.pos += 1;
                if exp == (thread, kind, digest) {
                    verified = true;
                } else {
                    mismatch = Some((v.pos, exp));
                }
            }
        }
        if let Some((pos, (et, ek, ed))) = mismatch {
            self.poison(format!(
                "durable prefix divergence at retirement {pos}: replay retired \
                 (thread {thread}, kind {kind}, digest {digest:016x}) but the durable \
                 log recorded (thread {et}, kind {ek}, digest {ed:016x})"
            ));
            return;
        }
        if verified && self.telemetry.enabled() {
            self.telemetry.metrics.recovered_prefix_len.inc_serialized();
        }
        if self.cfg.persist.is_some() {
            self.durable_record(&DurableRecord::Retire {
                subthread,
                thread,
                kind,
                retired: self.stats.retired,
                digest,
            });
        }
    }

    /// Writes a durable checkpoint: the retire-prefix metadata, chunked
    /// into the content-addressed store under a merkle root, anchored by a
    /// `Checkpoint` record, then group-committed with one fsync.
    fn durable_checkpoint(&mut self) {
        let Some(p) = self.cfg.persist.clone() else {
            return;
        };
        self.last_durable_ckpt = self.stats.retired;
        let meta = CheckpointMeta {
            retired: self.stats.retired,
            digest: self.retired_hash.digest(),
            threads: self.retired_hash.splits(),
        };
        let blob = meta.encode();
        let mut chunks = Vec::with_capacity(blob.len().div_ceil(CHUNK_SIZE));
        for chunk in blob.chunks(CHUNK_SIZE) {
            match p.put_chunk(chunk) {
                Ok(h) => chunks.push(h),
                Err(e) => {
                    self.poison(format!("durable checkpoint failed: {e}"));
                    return;
                }
            }
        }
        let rec = DurableRecord::Checkpoint {
            root: merkle_root(&chunks),
            retired: meta.retired,
            digest: meta.digest,
            chunks,
        };
        if let Err(e) = p.record(&rec).and_then(|()| p.sync()) {
            self.poison(format!("durable checkpoint failed: {e}"));
        }
    }

    fn trace_wal_append(&mut self, worker: usize, stid: SubThreadId) {
        if self.telemetry.enabled() {
            self.telemetry.metrics.wal_appends.inc_serialized();
            self.telemetry
                .metrics
                .wal_outstanding_hw
                .observe_serialized(self.wal.len() as u64);
            self.telemetry
                .record(worker, TraceEvent::WalAppend { subthread: stid.raw() });
        }
    }

    /// Creates the sub-thread record for a fresh grant. Returns the history
    /// sequence number reserved for the thread checkpoint: the snapshot
    /// itself is captured by the granted worker *outside* the lock (nothing
    /// touches the program between grant and step start, so the off-lock
    /// snapshot is bit-identical) and handed back via [`HandOff`].
    #[allow(clippy::too_many_arguments)]
    fn open_subthread(
        &mut self,
        stid: SubThreadId,
        thread: ThreadId,
        kind: SubThreadKind,
        opening_op: Option<SyncOp>,
        want: OpeningWant,
        worker: usize,
    ) -> u64 {
        let rec = self.threads.get_mut(&thread).expect("thread exists");
        let prev = rec.current_st;
        let group = rec.group;
        self.hist.seq += 1;
        let snap_seq = self.hist.seq;
        self.rol
            .insert(SubThread::new(stid, thread, group, kind, opening_op))
            .expect("grants are issued in total order");
        self.opening.insert(stid, OpeningRec { want, prev });
        let rec = self.threads.get_mut(&thread).expect("thread exists");
        rec.current_st = Some(stid);
        self.running.insert(stid, worker);
        self.sched_hash.record(stid.raw(), thread.raw());
        self.record_event(thread, kind.tag());
        if self.raw_trace.len() < self.cfg.telemetry.raw_trace_cap {
            self.raw_trace.push((stid, thread));
        }
        self.stats.subthreads += 1;
        if self.telemetry.enabled() {
            self.telemetry.metrics.subthreads_created.inc_serialized();
            self.telemetry.metrics.grants.inc_serialized();
            // The per-grant thread snapshot above is this sub-thread's
            // history-buffer checkpoint; snapshot sizes are opaque boxes.
            self.telemetry.metrics.checkpoints.inc_serialized();
            self.telemetry.record(
                worker,
                TraceEvent::SubThreadCreate {
                    subthread: stid.raw(),
                    thread: thread.raw(),
                    kind: kind.tag(),
                },
            );
            self.telemetry.record(
                worker,
                TraceEvent::Grant {
                    subthread: stid.raw(),
                    thread: thread.raw(),
                },
            );
            self.telemetry.record(
                worker,
                TraceEvent::CheckpointTaken {
                    subthread: stid.raw(),
                    bytes: 0,
                },
            );
        }
        snap_seq
    }

    /// Whether `want` can be granted right now; `None` means "token waits
    /// here", `Some(false)` means "pass the token (poll)".
    fn poll_or_wait(&self, holder: ThreadId, want: &PendingWant) -> Option<bool> {
        // Order-faithful redo: while squashed lock/atomic operations await
        // re-execution, they re-grant in original order and every other
        // lock/atomic request waits its turn (passes the token).
        if matches!(
            want,
            PendingWant::Op(Step::Lock(_)) | PendingWant::Op(Step::FetchAdd(_, _))
        ) && self
            .redo_locks
            .front()
            .is_some_and(|&front| front != holder)
        {
            return Some(false);
        }
        match want {
            PendingWant::Op(Step::Pop(c)) => {
                let empty = self
                    .chans
                    .get(&c.id())
                    .is_none_or(|ch| ch.items.is_empty());
                if !empty {
                    Some(true)
                } else if let Some(q) = self
                    .shard
                    .as_ref()
                    .and_then(|ctx| ctx.in_edges.get(&c.id()))
                {
                    // Cross-edge pop: tokens arrive in a fixed sequence, so
                    // the token *waits* for the next one instead of passing
                    // (a pass count varying with arrival timing would make
                    // the local grant order timing-dependent). Once the
                    // producer domain closed the drained edge, the pop can
                    // never succeed: poll so the starvation poison fires.
                    if q.is_starved() {
                        Some(false)
                    } else {
                        None
                    }
                } else {
                    Some(false) // poll: pass the token
                }
            }
            PendingWant::Op(Step::Join(t)) => {
                let done = self
                    .threads
                    .get(t)
                    .is_some_and(|r| r.state == ThState::Done);
                if done {
                    Some(true)
                } else {
                    Some(false)
                }
            }
            PendingWant::Op(Step::Lock(m)) => {
                let free = self
                    .locks
                    .get(&m.id())
                    .is_some_and(|l| l.holder.is_none() && l.data.is_some());
                if free {
                    Some(true)
                } else {
                    None // token waits for the unlock
                }
            }
            PendingWant::Op(Step::Serialized) => {
                if self.rol.is_empty() && self.running.is_empty() {
                    Some(true)
                } else {
                    None // token waits for global quiescence
                }
            }
            _ => Some(true),
        }
    }

    /// Grants the holder's pending want. Returns a task if a step must run.
    fn grant(&mut self, holder: ThreadId, worker: usize) -> Option<StepTask> {
        let rec = self.threads.get_mut(&holder).expect("holder exists");
        let want = rec.pending.take().expect("holder has a pending want");
        let prev_st = rec.current_st;
        match want {
            PendingWant::Start => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::Initial,
                    None,
                    OpeningWant::Start,
                    worker,
                );
                // Dependence on the spawning parent continuation.
                if let Some(parent) = self.threads[&holder].spawned_by {
                    if self.rol.contains(parent) {
                        self.edges.entry(parent).or_default().push(stid);
                    }
                }
                Some(self.make_task(holder, stid, snap_seq, None, None, None, None, None))
            }
            PendingWant::Resume(b, gen) => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::BarrierContinuation,
                    Some(SyncOp::BarrierWait(b)),
                    OpeningWant::Resume(b, gen),
                    worker,
                );
                if let Some(g) = self.gens.get_mut(&(b, gen)) {
                    g.resumes.push(stid);
                }
                Some(self.make_task(holder, stid, snap_seq, None, None, None, None, None))
            }
            PendingWant::SerializedRun => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::Serialized,
                    None,
                    OpeningWant::SerializedRun,
                    worker,
                );
                self.exclusive = Some(stid);
                self.stats.serialized += 1;
                Some(self.make_task(holder, stid, snap_seq, None, None, None, None, None))
            }
            PendingWant::Respawn {
                child,
                group,
                weight,
                program,
            } => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::ForkContinuation,
                    None,
                    OpeningWant::SpawnParent {
                        child,
                        group,
                        weight,
                    },
                    worker,
                );
                self.threads.insert(
                    child,
                    ThreadRec {
                        program: Some(program),
                        group,
                        weight,
                        pending: Some(PendingWant::Start),
                        current_st: None,
                        state: ThState::Active,
                        registered: true,
                        final_st: None,
                        spawned_by: Some(stid),
                    },
                );
                self.enforcer
                    .register_thread(child, group, weight)
                    .expect("child id is free again");
                self.live += 1;
                self.wal_append(worker, stid, RtOp::SpawnChild { child });
                self.stats.spawns += 1;
                Some(self.make_task(holder, stid, snap_seq, None, None, None, Some(child), None))
            }
            PendingWant::Op(step) => self.grant_op(holder, prev_st, step, worker),
        }
    }

    fn grant_op(
        &mut self,
        holder: ThreadId,
        prev_st: Option<SubThreadId>,
        step: Step,
        worker: usize,
    ) -> Option<StepTask> {
        match step {
            Step::Lock(m) => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                if self.redo_locks.front() == Some(&holder) {
                    self.redo_locks.pop_front();
                }
                let lock = m.id();
                let seal = self.wal_append_deferred(worker, stid, RtOp::LockAcquire { lock });
                let l = self.locks.get_mut(&lock).expect("registered lock");
                l.holder = Some(stid);
                let data = l.data.take().expect("lock data present when free");
                // The lock-data snapshot is cloned by the worker off-lock;
                // reserve its history slot *before* the thread checkpoint's
                // so undo order matches the old under-lock capture order.
                self.hist.seq += 1;
                let lock_snap_seq = self.hist.seq;
                self.stats.locks_acquired += 1;
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::CriticalSection,
                    Some(SyncOp::LockAcquire(lock)),
                    OpeningWant::Lock(lock),
                    worker,
                );
                let mut task = self.make_task(
                    holder,
                    stid,
                    snap_seq,
                    None,
                    None,
                    None,
                    None,
                    Some((lock, data)),
                );
                task.lock_snap_seq = lock_snap_seq;
                task.seal = Some(seal);
                Some(task)
            }
            Step::Push(c, value) => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                let chan = c.id();
                let seal = self.wal_append_deferred(worker, stid, RtOp::Push {
                    chan,
                    item: value.clone(),
                });
                // Provenance is the *pushing* sub-thread: squashing it
                // un-pushes the item, so any consumer of the item must be in
                // its dependence closure. (The thread state that computed
                // the value is covered transitively via the same-thread
                // rule.)
                self.chans
                    .entry(chan)
                    .or_default()
                    .items
                    .push_back((value.clone(), Some(stid)));
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::ChannelAccess,
                    Some(SyncOp::ChanPush(chan)),
                    OpeningWant::Push(chan, value),
                    worker,
                );
                let mut task =
                    self.make_task(holder, stid, snap_seq, None, None, None, None, None);
                task.seal = Some(seal);
                Some(task)
            }
            Step::Pop(c) => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                let chan = c.id();
                let (item, producer) = self
                    .chans
                    .get_mut(&chan)
                    .and_then(|ch| ch.items.pop_front())
                    .expect("grantability checked non-empty");
                let seal = self.wal_append_deferred(
                    worker,
                    stid,
                    RtOp::Pop {
                        chan,
                        item: item.clone(),
                        producer,
                    },
                );
                if let Some(p) = producer {
                    if self.rol.contains(p) {
                        self.edges.entry(p).or_default().push(stid);
                    }
                    if self.racecheck.is_some() {
                        self.race_pop_src.insert(stid, p);
                    }
                }
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::ChannelAccess,
                    Some(SyncOp::ChanPop(chan)),
                    OpeningWant::Pop(chan),
                    worker,
                );
                let mut task =
                    self.make_task(holder, stid, snap_seq, Some(item), None, None, None, None);
                task.seal = Some(seal);
                Some(task)
            }
            Step::FetchAdd(a, delta) => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                if self.redo_locks.front() == Some(&holder) {
                    self.redo_locks.pop_front();
                }
                let slot = self.atomics.get_mut(&a).expect("registered atomic");
                let old = *slot;
                *slot = old.wrapping_add(delta);
                let seal = self.wal_append_deferred(worker, stid, RtOp::FetchAdd { atomic: a, old });
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::AtomicOp,
                    Some(SyncOp::Atomic(a)),
                    OpeningWant::FetchAdd(a, delta),
                    worker,
                );
                let mut task =
                    self.make_task(holder, stid, snap_seq, None, Some(old), None, None, None);
                task.seal = Some(seal);
                Some(task)
            }
            Step::Spawn(SpawnSpec {
                program,
                group,
                weight,
            }) => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                // Open the parent continuation first so the child sees it as
                // its spawner.
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::ForkContinuation,
                    None,
                    OpeningWant::SpawnParent {
                        child: ThreadId::new(self.next_thread),
                        group,
                        weight,
                    },
                    worker,
                );
                let child = self.add_thread(program, group, weight, Some(stid));
                self.wal_append(worker, stid, RtOp::SpawnChild { child });
                self.stats.spawns += 1;
                Some(self.make_task(holder, stid, snap_seq, None, None, None, Some(child), None))
            }
            Step::Join(t) => {
                let stid = self.enforcer.try_grant(holder).expect("is holder");
                let target = self.threads.get(&t).expect("join target exists");
                debug_assert_eq!(target.state, ThState::Done);
                if let Some(fst) = target.final_st {
                    if self.rol.contains(fst) {
                        self.edges.entry(fst).or_default().push(stid);
                    }
                }
                let joined = self.outputs.get(&t).cloned();
                let snap_seq = self.open_subthread(
                    stid,
                    holder,
                    SubThreadKind::JoinContinuation,
                    None,
                    OpeningWant::JoinParent(t),
                    worker,
                );
                Some(self.make_task(holder, stid, snap_seq, None, None, joined, None, None))
            }
            Step::Serialized => {
                // The serialized *marker* is granted like a normal boundary;
                // the exclusive step itself runs on the next grant.
                let rec = self.threads.get_mut(&holder).expect("holder");
                rec.pending = Some(PendingWant::SerializedRun);
                // Turn not consumed: re-evaluate immediately (the
                // SerializedRun want is gated on quiescence).
                None
            }
            Step::Barrier(b) => {
                // Arrival: consumes the turn but opens no sub-thread. Still
                // a recorded event — it mutates schedule state, so replay
                // must reproduce it in order.
                self.enforcer.consume_turn(holder);
                self.record_event(holder, gprs_core::recording::EVT_ARRIVE);
                let rec = self.threads.get_mut(&holder).expect("holder");
                rec.state = ThState::Parked(b);
                rec.registered = false;
                self.enforcer
                    .deregister_thread(holder)
                    .expect("was registered");
                // A record for an already-retired `prev` would never be
                // undone (undo filters on in-flight ids) nor pruned
                // (pruning happened at retirement): skip it.
                if let Some(prev) = prev_st.filter(|&p| self.rol.contains(p)) {
                    self.wal_append(
                        worker,
                        prev,
                        RtOp::BarrierArrive { barrier: b, thread: holder },
                    );
                }
                let bar = self.barriers.get_mut(&b).expect("registered barrier");
                bar.waiting.push(holder);
                if let Some(prev) = prev_st {
                    bar.arrival_sts.push(prev);
                }
                let forming_gen = bar.gen + 1;
                let full = bar.waiting.len() as u32 == bar.participants;
                if let Some(det) = self.racecheck.as_mut() {
                    // The arrival-ending sub-thread's close clock belongs to
                    // the forming generation. If it already retired, its
                    // thread's clock *is* that close clock — contribute it
                    // directly (joins commute; continuations of this
                    // generation retire strictly later, so the contribution
                    // lands before anyone reads it).
                    match prev_st.filter(|&p| self.rol.contains(p)) {
                        Some(prev) => {
                            self.race_arrivals.insert(prev, (b, forming_gen));
                        }
                        None => det.contribute_arrival(holder, b, forming_gen),
                    }
                }
                let cross = self
                    .shard
                    .as_ref()
                    .is_some_and(|ctx| ctx.edge_barriers.contains(&b));
                if cross {
                    // Cross-domain arrival: published to the hub exactly
                    // once, at retirement of the arrival-ending sub-thread
                    // (squashing it removes the deferred entry before the
                    // hub ever counts it; a retired `prev` can no longer
                    // squash, so immediate publication is final). The
                    // local `full` can never fire — participants count the
                    // *global* membership.
                    let pending = prev_st.filter(|&p| self.rol.contains(p));
                    let mut ctx = self.shard.take().expect("sharded");
                    match pending {
                        Some(prev) => ctx.edge_arrivals.entry(prev).or_default().push(b),
                        None => {
                            if !ctx.hub.arrive(b) {
                                self.poison(format!(
                                    "cross-domain arrival on barrier {b} the \
                                     hub does not know (divergent replay or \
                                     corrupted shard plan)"
                                ));
                            }
                        }
                    }
                    self.shard = Some(ctx);
                } else if full {
                    self.release_barrier(b);
                }
                self.bump();
                None
            }
            Step::Exit(value) => {
                // Exit: consumes the turn but opens no sub-thread (recorded
                // like the barrier arrival above).
                self.enforcer.consume_turn(holder);
                self.record_event(holder, gprs_core::recording::EVT_EXIT);
                let rec = self.threads.get_mut(&holder).expect("holder");
                rec.state = ThState::Done;
                rec.registered = false;
                rec.final_st = prev_st;
                self.enforcer
                    .deregister_thread(holder)
                    .expect("was registered");
                // Same retired-`prev` guard as the barrier arrival above: a
                // retired sub-thread can no longer be squashed, so its
                // exit record would leak to the end of the run.
                if let Some(prev) = prev_st.filter(|&p| self.rol.contains(p)) {
                    self.wal_append(worker, prev, RtOp::ThreadExit { thread: holder });
                }
                self.outputs.insert(holder, value);
                self.live -= 1;
                self.bump();
                None
            }
        }
    }

    /// Releases a barrier: all parked participants become resumable and a
    /// new generation records the arrival/continuation dependence group.
    pub(crate) fn release_barrier(&mut self, b: BarrierId) {
        let bar = self.barriers.get_mut(&b).expect("registered barrier");
        bar.gen += 1;
        let gen = bar.gen;
        let mut waiters = std::mem::take(&mut bar.waiting);
        let arrivals = std::mem::take(&mut bar.arrival_sts);
        waiters.sort_unstable();
        for &a in &arrivals {
            self.arrival_gen.insert(a, (b, gen));
        }
        self.gens.insert(
            (b, gen),
            GenRec {
                arrivals,
                resumes: Vec::new(),
            },
        );
        for w in waiters {
            let rec = self.threads.get_mut(&w).expect("waiter exists");
            rec.state = ThState::Active;
            rec.pending = Some(PendingWant::Resume(b, gen));
            rec.registered = true;
            self.enforcer
                .register_thread(w, rec.group, rec.weight)
                .expect("was deregistered");
        }
        self.stats.barrier_releases += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn make_task(
        &mut self,
        thread: ThreadId,
        stid: SubThreadId,
        snap_seq: u64,
        popped: Option<Payload>,
        atomic_prev: Option<u64>,
        joined: Option<Payload>,
        spawned: Option<ThreadId>,
        lock_out: Option<(LockId, Box<dyn Recoverable>)>,
    ) -> StepTask {
        let rec = self.threads.get_mut(&thread).expect("thread exists");
        let program = rec.program.take().expect("program present at grant");
        StepTask {
            thread,
            stid,
            program,
            popped,
            atomic_prev,
            joined,
            spawned,
            lock_out,
            snap_seq,
            lock_snap_seq: 0,
            seal: None,
        }
    }

    /// Deposits a finished step: returns the program, releases a still-held
    /// lock, stages file writes, marks the sub-thread complete and retires.
    pub(crate) fn deposit(
        &mut self,
        task_thread: ThreadId,
        stid: SubThreadId,
        program: Box<dyn DynThread>,
        result: Step,
        leftover_lock: Option<(LockId, Box<dyn Recoverable>)>,
        staged_files: Vec<(u64, Vec<u8>)>,
    ) {
        self.running.remove(&stid);
        if self.exclusive == Some(stid) {
            self.exclusive = None;
        }
        if let Some((lock, data)) = leftover_lock {
            self.return_lock(stid, lock, data);
        }
        for (file, bytes) in staged_files {
            if let Some(f) = self.files.get_mut(&file) {
                f.staged.push((stid, bytes));
            }
        }
        let rec = self.threads.get_mut(&task_thread).expect("thread exists");
        rec.program = Some(program);
        rec.pending = Some(PendingWant::Op(result));
        self.rol
            .mark_completed(stid)
            .expect("deposited sub-thread is tracked");
        self.retire_ready();
        self.bump();
    }

    /// Returns checked-out lock data (explicit unlock or end-of-step).
    pub(crate) fn return_lock(
        &mut self,
        stid: SubThreadId,
        lock: LockId,
        data: Box<dyn Recoverable>,
    ) {
        self.wal_append(EXTERNAL_RING, stid, RtOp::LockRelease { lock, holder: stid });
        let l = self.locks.get_mut(&lock).expect("registered lock");
        debug_assert_eq!(l.holder, Some(stid));
        l.holder = None;
        l.data = Some(data);
    }

    /// Nested (subsumed) lock acquisition from inside a running step.
    /// Returns the data if the lock is free.
    pub(crate) fn try_nested_acquire(
        &mut self,
        stid: SubThreadId,
        lock: LockId,
    ) -> Option<Box<dyn Recoverable>> {
        let l = self.locks.get_mut(&lock)?;
        if l.holder.is_some() || l.data.is_none() {
            return None;
        }
        l.holder = Some(stid);
        let data = l.data.take().expect("checked above");
        self.wal_append(EXTERNAL_RING, stid, RtOp::LockAcquire { lock });
        let snap = data.clone_box();
        self.hist.seq += 1;
        let seq = self.hist.seq;
        self.hist.lock_snaps.push((seq, stid, lock, snap));
        let _ = self.rol.add_resource(stid, ResourceId::Lock(lock));
        self.stats.locks_acquired += 1;
        Some(data)
    }
}

/// A finished step, carried from the off-lock execution back to the deposit
/// performed at the head of the worker's next [`seek`] — so deposit and the
/// follow-on grant share a single lock acquisition (the grant fast path).
pub(crate) enum StepOutcome {
    Done {
        thread: ThreadId,
        stid: SubThreadId,
        program: Box<dyn DynThread>,
        result: Step,
        leftover_lock: Option<(LockId, Box<dyn Recoverable>)>,
        staged: Vec<(u64, Vec<u8>)>,
    },
    Panicked {
        thread: ThreadId,
        stid: SubThreadId,
        leftover_lock: Option<(LockId, Box<dyn Recoverable>)>,
        msg: String,
    },
}

/// The worker loop body: repeatedly grant + run until the program finishes.
/// Each iteration folds the previous step's deposit into the next grant
/// search, so the common cadence is one lock acquisition per step.
pub(crate) fn worker_loop(shared: &SharedRef, worker_ix: usize) {
    let mut finished: Option<StepOutcome> = None;
    loop {
        match seek(shared, worker_ix, finished.take()) {
            Decision::Finished => return,
            Decision::Run { task, wake_peer } => {
                if wake_peer {
                    // The guard dropped when `seek` returned; the woken
                    // peer can acquire the lock without colliding with us.
                    shared.cv.notify_one();
                }
                finished = Some(execute_task(shared, worker_ix, task));
            }
        }
    }
}

/// One lock acquisition: drain this worker's hand-off buffer, deposit the
/// finished step (if any), then search for the next grant.
fn seek(shared: &SharedRef, worker_ix: usize, finished: Option<StepOutcome>) -> Decision {
    // Advisory pre-lock read of the published grant frontier: if the token
    // already rests on the thread whose step we just finished, our deposit
    // feeds our own grant (fast path) and no peer needs waking; otherwise
    // the deposit may unblock the token elsewhere (a returned lock, a
    // quiescence gate), so overlap one peer's seek with ours.
    let prenotify = match &finished {
        Some(StepOutcome::Done { thread, .. }) => !shared.gate.is_next(*thread),
        _ => false,
    };
    let mut g = shared.inner.lock();
    while let Some(h) = shared.handoffs[worker_ix].pop() {
        g.apply_handoff(h);
    }
    // Whether a grant below is reached from this worker's own deposit in
    // the same lock acquisition, without a condvar sleep in between.
    let mut fast = false;
    match finished {
        Some(StepOutcome::Done {
            thread,
            stid,
            program,
            result,
            leftover_lock,
            staged,
        }) => {
            let released = leftover_lock.as_ref().map(|(l, _)| *l);
            g.deposit(thread, stid, program, result, leftover_lock, staged);
            if let Some(lock) = released {
                shared.wake_lock_shard(lock, &g.telemetry);
            }
            if prenotify {
                // Overlap a peer's seek with ours only when the frontier
                // thread already has a deposit armed; a frontier whose
                // step is still in flight fuses with its own deposit.
                let armed = g
                    .enforcer
                    .holder()
                    .and_then(|h| g.threads.get(&h))
                    .is_some_and(|r| r.pending.is_some());
                if armed && shared.spare_cpu() {
                    shared.wake_one_seeker(&g.telemetry);
                }
            }
            fast = true;
        }
        Some(StepOutcome::Panicked {
            thread,
            stid,
            leftover_lock,
            msg,
        }) => {
            g.running.remove(&stid);
            if let Some((lock, data)) = leftover_lock {
                g.return_lock(stid, lock, data);
                shared.wake_lock_shard(lock, &g.telemetry);
            }
            g.poison(format!("step of {thread} panicked: {msg}"));
        }
        None => {}
    }
    // Set when this worker returns from a wait; cleared on progress. Still
    // set at the next wait ⇒ the wakeup found nothing to do.
    let mut woke_idle = false;
    // Edge-connected shard domains bound their scheduler waits: peers
    // notify best-effort *without* taking this engine's lock (no
    // cross-engine lock order exists), so an unbounded wait could miss a
    // wake forever. Isolated domains — and unsharded runs — keep
    // indefinite waits and pay nothing.
    let edge_wait = g.shard.as_ref().is_some_and(|c| c.has_cross_edges());
    macro_rules! wait_here {
        ($g:ident) => {{
            if woke_idle && $g.telemetry.enabled() {
                $g.telemetry.metrics.wakeups_spurious.inc_serialized();
            }
            fast = false;
            woke_idle = true;
            shared.cv_sleepers.fetch_add(1, Ordering::Relaxed);
            if edge_wait {
                let _ = shared
                    .cv
                    .wait_for(&mut $g, std::time::Duration::from_micros(200));
            } else {
                shared.cv.wait(&mut $g);
            }
            shared.cv_sleepers.fetch_sub(1, Ordering::Relaxed);
        }};
    }
    loop {
        let inner = &mut *g;
        if inner.poisoned.is_some() {
            // Peer shard domains must stop too: without the abort they
            // would stall on edges this domain will never feed again.
            inner.shard_publish_abort();
            shared.done.store(true, Ordering::Release);
            shared.wake_all();
            break Decision::Finished;
        }
        if inner.shard.is_some() && inner.shard_poll() {
            // A peer domain aborted: finish this pool without poisoning
            // (the culprit domain carries the diagnostic). Out-edges stay
            // open — a sibling worker may still be depositing a step.
            shared.done.store(true, Ordering::Release);
            shared.wake_all();
            break Decision::Finished;
        }
        if inner.recovering {
            if inner.running.is_empty() {
                // Quiescence audit: every per-lock condvar-shard waiter is a
                // running step blocked inside `StepCtx::lock`, so with
                // `running` empty no shard may have sleepers — a non-zero
                // count here would mean a blocked successor recovery's
                // targeted wakeups could never reach (sleeper counts are
                // only mutated under this lock, so the reads are exact).
                debug_assert!(
                    shared
                        .shard_sleepers
                        .iter()
                        .all(|s| s.load(Ordering::Relaxed) == 0),
                    "lock-shard sleepers must be quiescent when recovery runs"
                );
                crate::rex::perform_recovery(inner);
                inner.recovering = false;
                inner.bump();
                woke_idle = false;
                // Recovery may return locks and re-arm any thread: every
                // waiter class may have become runnable (rare; broadcast).
                shared.wake_all();
                continue;
            }
            wait_here!(g);
            continue;
        }
        if !inner.pending_exceptions.is_empty() {
            // Depositing workers see this flag themselves; the last one to
            // drain `running` performs the recovery. No wakeup needed.
            inner.recovering = true;
            continue;
        }
        // Checked only after the recovery gates above: an exception raised
        // at one of the final grants must still be recovered (squashing can
        // resurrect exited threads), not dropped by an early finish with
        // its excepted entry's staged output uncommitted.
        if inner.live == 0 && inner.running.is_empty() {
            // Nothing is in flight, so no sibling deposit can race the
            // out-edge close below.
            inner.shard_finish_domain();
            shared.done.store(true, Ordering::Release);
            shared.wake_all();
            break Decision::Finished;
        }
        if inner.exclusive.is_some() {
            wait_here!(g);
            continue;
        }
        let Some(holder) = inner.enforcer.holder() else {
            if inner.running.is_empty() && inner.live > 0 {
                if inner.shard_parked_on_edge() {
                    // The release comes from the hub. Only when every peer
                    // pool already finished can no further arrival ever be
                    // published; one more drain then closes the race where
                    // the final release landed after this iteration's poll
                    // (finish counts are bumped *after* the publishing
                    // retirement, with acquire/release ordering).
                    if inner.shard_peers_done() {
                        let _ = inner.shard_poll();
                        if inner.enforcer.holder().is_some() {
                            continue;
                        }
                        inner.poison(
                            "deadlock: cross-shard barrier never released \
                             (barrier participants mismatch across domains?)",
                        );
                        continue;
                    }
                    wait_here!(g);
                    continue;
                }
                let msg = inner.replay_exhausted_msg().unwrap_or_else(|| {
                    "deadlock: live threads remain but none is runnable \
                     (barrier participants mismatch?)"
                        .into()
                });
                inner.poison(msg);
                shared.done.store(true, Ordering::Release);
                shared.wake_all();
                break Decision::Finished;
            }
            wait_here!(g);
            continue;
        };
        if inner.replay.is_some() {
            if let Some(msg) = inner.replay_holder_gate(holder) {
                inner.poison(msg);
                continue;
            }
        }
        if inner.shard.is_some() {
            // Domain fence: a step touching a resource the plan mapped
            // elsewhere (or out-of-scope dynamic topology) must fail loudly
            // *before* polling — a foreign lock or channel has no local
            // record, so the poll would silently wait or pass forever.
            let gate_msg = inner
                .threads
                .get(&holder)
                .and_then(|rec| rec.pending.as_ref())
                .and_then(|want| match want {
                    PendingWant::Op(step) => inner.shard_gate(holder, step),
                    _ => None,
                });
            if let Some(msg) = gate_msg {
                inner.poison(msg);
                continue;
            }
        }
        let Some(rec) = inner.threads.get(&holder) else {
            // A token holder with no thread record can only come from a
            // divergent replay tape (or corrupted schedule state): degrade
            // to a named poison instead of dying on a missing-entry panic.
            inner.poison(format!(
                "token holder thread {} has no record (divergent replay or \
                 corrupted schedule state)",
                holder.raw()
            ));
            continue;
        };
        if rec.state == ThState::Done {
            // Stale registration (should not happen; exits deregister).
            if inner.enforcer.deregister_thread(holder).is_err() {
                inner.poison(format!(
                    "token holder thread {} is done but was never registered \
                     (divergent replay or corrupted schedule state)",
                    holder.raw()
                ));
            }
            continue;
        }
        let Some(want) = rec.pending.as_ref() else {
            // The holder's step is still running: the token waits, and the
            // holder's own deposit will reach this point fast-path.
            wait_here!(g);
            continue;
        };
        match inner.poll_or_wait(holder, want) {
            Some(false) => {
                // Wasted turn (empty FIFO / unfinished join).
                inner.enforcer.pass_turn(holder);
                inner.stats.polls += 1;
                inner.pass_streak += 1;
                woke_idle = false;
                if inner.pass_streak > inner.enforcer.live_threads() * 2 + 4 {
                    if inner.running.is_empty() {
                        let msg = if let Some(rs) = inner.replay.as_ref() {
                            format!(
                                "replay divergence at event {}: recorded \
                                 thread {} polls an operation the recording \
                                 granted (channel starvation under replay)",
                                rs.verified,
                                holder.raw()
                            )
                        } else {
                            "deadlock: every runnable thread is polling \
                             (channel starvation or join cycle)"
                                .into()
                        };
                        inner.poison(msg);
                        shared.done.store(true, Ordering::Release);
                        shared.wake_all();
                        break Decision::Finished;
                    }
                    wait_here!(g);
                }
                continue;
            }
            None => {
                // Token waits here (lock busy / quiescence gate). A deposit
                // that changes either wakes one seeker.
                wait_here!(g);
                continue;
            }
            Some(true) => {}
        }
        inner.pass_streak = 0;
        match inner.grant(holder, worker_ix) {
            Some(task) => {
                inner.stats.grants += 1;
                debug_assert_eq!(
                    shared.gate.holder(),
                    inner.enforcer.holder(),
                    "gate mirrors the enforcer after every grant"
                );
                inner.chaos_tick_grant();
                if fast && inner.telemetry.enabled() {
                    inner.telemetry.metrics.fast_path_grants.inc_serialized();
                }
                // Hand the new frontier to a parked peer only when it is
                // provably usable: the next holder must already have a
                // deposit armed (a holder whose step is still running will
                // reach the frontier itself, fused with its own deposit,
                // so waking anyone for it is a guaranteed spurious wakeup).
                let armed = inner
                    .enforcer
                    .holder()
                    .and_then(|h| inner.threads.get(&h))
                    .is_some_and(|r| r.pending.is_some());
                let wake_peer = armed
                    && shared.cv_sleepers.load(Ordering::Relaxed) > 0
                    && shared.spare_cpu();
                if wake_peer && inner.telemetry.enabled() {
                    inner.telemetry.metrics.wakeups_issued.inc_serialized();
                }
                break Decision::Run { task, wake_peer };
            }
            None => {
                // Structural grant (barrier arrival, exit, marker): state
                // changed; keep scanning under the same acquisition. Any
                // follow-on grants fan out via the post-grant wakeup chain.
                woke_idle = false;
                continue;
            }
        }
    }
}

/// What a cooperative driver should do next (see
/// [`crate::session::GprsSession`]).
pub(crate) enum CoopDecision {
    /// Run this step (off-lock) and feed its outcome back.
    Run(StepTask),
    /// Grant budget exhausted: the deposit was folded in, recovery (if any
    /// was pending) has completed, and nothing is in flight — the job's
    /// precise state is parked in [`Inner`] and can be resumed later.
    Parked,
    /// The program finished (or poisoned).
    Finished,
}

/// One cooperative scheduling decision for a session driven by a single
/// external thread: fold `finished` in, then grant the next step if
/// `allow_grant`. The mirror of [`seek`] for run-to-quantum execution,
/// with two structural differences:
///
/// * **Never blocks.** With exactly one driving context there is no peer
///   whose progress a condvar wait could observe, so every would-wait state
///   (busy lock, quiescence gate, token parked on a running step) is a
///   genuine deadlock and poisons the run — the same conclusion the
///   multi-worker loop reaches via its pass-streak heuristic.
/// * **Parks only at quiescent points.** `Parked` is returned after the
///   deposit is applied and any pending recovery has run, with `running`
///   empty — so a parked job's ROL/WAL/history state is exactly the
///   precise-restart state the paper's machinery maintains, and resuming
///   is just calling this function again.
pub(crate) fn coop_decide(
    shared: &SharedRef,
    finished: Option<StepOutcome>,
    allow_grant: bool,
) -> CoopDecision {
    let mut g = shared.inner.lock();
    while let Some(h) = shared.handoffs[0].pop() {
        g.apply_handoff(h);
    }
    let mut fast = false;
    match finished {
        Some(StepOutcome::Done {
            thread,
            stid,
            program,
            result,
            leftover_lock,
            staged,
        }) => {
            g.deposit(thread, stid, program, result, leftover_lock, staged);
            fast = true;
        }
        Some(StepOutcome::Panicked {
            thread,
            stid,
            leftover_lock,
            msg,
        }) => {
            g.running.remove(&stid);
            if let Some((lock, data)) = leftover_lock {
                g.return_lock(stid, lock, data);
            }
            g.poison(format!("step of {thread} panicked: {msg}"));
        }
        None => {}
    }
    loop {
        let inner = &mut *g;
        if inner.poisoned.is_some() {
            shared.done.store(true, Ordering::Release);
            break CoopDecision::Finished;
        }
        if inner.recovering {
            debug_assert!(inner.running.is_empty(), "single driver deposits before deciding");
            crate::rex::perform_recovery(inner);
            inner.recovering = false;
            inner.bump();
            continue;
        }
        if !inner.pending_exceptions.is_empty() {
            inner.recovering = true;
            continue;
        }
        // Same ordering as the worker loop: the finish check runs after the
        // recovery gates so a trailing-grant exception is never dropped.
        if inner.live == 0 && inner.running.is_empty() {
            shared.done.store(true, Ordering::Release);
            break CoopDecision::Finished;
        }
        if !allow_grant {
            break CoopDecision::Parked;
        }
        debug_assert!(inner.exclusive.is_none(), "exclusive step deposited before deciding");
        let Some(holder) = inner.enforcer.holder() else {
            let msg = inner.replay_exhausted_msg().unwrap_or_else(|| {
                "deadlock: live threads remain but none is runnable \
                 (barrier participants mismatch?)"
                    .into()
            });
            inner.poison(msg);
            shared.done.store(true, Ordering::Release);
            break CoopDecision::Finished;
        };
        if inner.replay.is_some() {
            if let Some(msg) = inner.replay_holder_gate(holder) {
                inner.poison(msg);
                continue;
            }
        }
        let Some(rec) = inner.threads.get(&holder) else {
            inner.poison(format!(
                "token holder thread {} has no record (divergent replay or \
                 corrupted schedule state)",
                holder.raw()
            ));
            continue;
        };
        if rec.state == ThState::Done {
            if inner.enforcer.deregister_thread(holder).is_err() {
                inner.poison(format!(
                    "token holder thread {} is done but was never registered \
                     (divergent replay or corrupted schedule state)",
                    holder.raw()
                ));
            }
            continue;
        }
        let Some(want) = rec.pending.as_ref() else {
            // Single driver: a holder without a pending want would mean a
            // step is in flight, which cannot happen here.
            inner.poison("cooperative driver found the token parked on a running step");
            shared.done.store(true, Ordering::Release);
            break CoopDecision::Finished;
        };
        match inner.poll_or_wait(holder, want) {
            Some(false) => {
                inner.enforcer.pass_turn(holder);
                inner.stats.polls += 1;
                inner.pass_streak += 1;
                if inner.pass_streak > inner.enforcer.live_threads() * 2 + 4 {
                    let msg = if let Some(rp) = inner.replay.as_ref() {
                        format!(
                            "replay divergence at event {}: recorded thread {} \
                             polls an operation the recording granted (channel \
                             starvation under replay)",
                            rp.verified,
                            holder.raw()
                        )
                    } else {
                        "deadlock: every runnable thread is polling \
                         (channel starvation or join cycle)"
                            .into()
                    };
                    inner.poison(msg);
                    shared.done.store(true, Ordering::Release);
                    break CoopDecision::Finished;
                }
                continue;
            }
            None => {
                // With one context the blocking condition (a busy lock, a
                // non-quiescent serialized gate) can only be our own state,
                // and we just deposited — so it can never clear.
                let msg = if let Some(rp) = inner.replay.as_ref() {
                    format!(
                        "replay divergence at event {}: recorded thread {} \
                         blocks on an operation the recording granted",
                        rp.verified,
                        holder.raw()
                    )
                } else {
                    format!(
                        "deadlock: token of {holder} waits on a condition no \
                         single-context execution can satisfy"
                    )
                };
                inner.poison(msg);
                shared.done.store(true, Ordering::Release);
                break CoopDecision::Finished;
            }
            Some(true) => {}
        }
        inner.pass_streak = 0;
        match inner.grant(holder, 0) {
            Some(task) => {
                inner.stats.grants += 1;
                debug_assert_eq!(
                    shared.gate.holder(),
                    inner.enforcer.holder(),
                    "gate mirrors the enforcer after every grant"
                );
                inner.chaos_tick_grant();
                if fast && inner.telemetry.enabled() {
                    inner.telemetry.metrics.fast_path_grants.inc_serialized();
                }
                break CoopDecision::Run(task);
            }
            None => continue,
        }
    }
}

/// Runs one granted step outside the engine lock. Before the step, the
/// off-critical-section state capture happens here: the thread checkpoint,
/// the critical section's lock snapshot, and the deferred WAL checksum are
/// produced without the lock and handed back through this worker's SPSC
/// buffer (drained at its next seek). Nothing touches the program or the
/// checked-out lock data between grant and this point, so the snapshots are
/// bit-identical to ones taken under the lock.
pub(crate) fn execute_task(shared: &SharedRef, worker_ix: usize, task: StepTask) -> StepOutcome {
    let StepTask {
        thread,
        stid,
        mut program,
        popped,
        atomic_prev,
        joined,
        spawned,
        lock_out,
        snap_seq,
        lock_snap_seq,
        seal,
    } = task;
    publish_handoff(
        shared,
        worker_ix,
        HandOff::ThreadSnap {
            seq: snap_seq,
            stid,
            thread,
            snap: program.save(),
        },
    );
    if let Some((lock, data)) = &lock_out {
        publish_handoff(
            shared,
            worker_ix,
            HandOff::LockSnap {
                seq: lock_snap_seq,
                stid,
                lock: *lock,
                snap: data.clone_box(),
            },
        );
    }
    if let Some((lsn, op)) = seal {
        let checksum = WalRecord::checksum_of(lsn, stid, &op);
        publish_handoff(shared, worker_ix, HandOff::Seal { lsn, checksum });
    }
    let mut ctx = StepCtx::new(
        crate::ctx::CtxBackend::Gprs(shared.clone()),
        thread,
        stid,
        worker_ix,
        popped,
        atomic_prev,
        joined,
        spawned,
        lock_out,
    );
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        program.step(&mut ctx)
    }));
    let (leftover_lock, staged) = ctx.into_parts();
    match outcome {
        Ok(result) => StepOutcome::Done {
            thread,
            stid,
            program,
            result,
            leftover_lock,
            staged,
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            StepOutcome::Panicked {
                thread,
                stid,
                leftover_lock,
                msg,
            }
        }
    }
}

/// Pushes one hand-off into the worker's SPSC buffer, falling back to a
/// locked apply if the buffer is full (cannot happen at the sized capacity —
/// at most three entries exist per in-flight task — but stay correct).
fn publish_handoff(shared: &SharedRef, worker_ix: usize, h: HandOff) {
    if let Err(h) = shared.handoffs[worker_ix].push(h) {
        shared.inner.lock().apply_handoff(h);
    }
}
