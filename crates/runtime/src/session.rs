//! Cooperative (run-to-quantum) execution sessions.
//!
//! [`Gprs::run`](crate::Gprs::run) owns a pool of OS workers for the whole
//! program; a [`GprsSession`] instead lets an *external* scheduler drive the
//! program in bounded quanta on whatever thread it likes — the entry point
//! a multi-tenant serving layer (`gprs-serve`) needs to multiplex many
//! independent GPRS programs over one shared worker pool.
//!
//! A quantum runs up to `max_grants` ordered grants and then **parks**: the
//! deposit of the last step is folded in, pending recovery has completed,
//! and nothing is in flight, so the job's entire precise state — reorder
//! list, write-ahead log, history-buffer checkpoints, staged file output —
//! sits quiesced inside the engine, exactly the state the paper's restart
//! machinery maintains at a recovery point. Resuming is calling
//! [`GprsSession::run_quantum`] again; restartability doubles as the
//! *scheduling* primitive, not just the fault path.
//!
//! Because grants follow the same deterministic schedule regardless of how
//! many contexts seek them (the determinism suite pins this across 1/2/4/8
//! workers), a program driven in quanta retires in the **bit-identical
//! order** of a solo [`Gprs::run`] — multi-tenancy cannot leak into
//! determinism, which `gprs-serve`'s golden tests assert per job.

use crate::engine::{coop_decide, execute_task, CoopDecision, SharedRef, StepOutcome};
use crate::report::{RunError, RunReport};
use crate::Controller;

/// A point-in-time dump of a session's **precise state** — the quiesced
/// machine a parked quantum leaves behind: where every thread stands, who
/// holds which lock, how the WAL ledger balances, and how far the
/// deterministic grant stream has advanced. This is what `gprs-replay
/// state` prints after replaying a recording to a chosen grant index:
/// time-travel debugging's "what did the world look like right here".
#[derive(Debug, Clone)]
pub struct PreciseState {
    /// Ordered grants issued so far.
    pub grants: u64,
    /// Recorded events verified so far, when the session is replaying a
    /// recording (`None` on live runs). Counts every turn-consuming event
    /// — grants, barrier arrivals, thread exits — i.e. positions in the
    /// recording's event stream, which `grants` alone undercounts.
    pub replayed: Option<u64>,
    /// Streaming schedule-hash digest at this point.
    pub schedule_digest: u64,
    /// Streaming retired-order digest at this point.
    pub retired_digest: u64,
    /// Threads that have not yet exited.
    pub live_threads: u64,
    /// Per-thread lines: `(thread, state, pending want, current sub-thread)`.
    pub threads: Vec<(u32, String, Option<String>, Option<u64>)>,
    /// Per-lock lines: `(lock, holding sub-thread)`.
    pub locks: Vec<(u64, Option<u64>)>,
    /// In-flight (un-retired) sub-threads in the reorder list.
    pub rol_len: u64,
    /// Live (un-pruned, un-undone) write-ahead-log records.
    pub wal_len: u64,
    /// Total WAL records ever appended.
    pub wal_appended: u64,
    /// WAL records pruned by retirement.
    pub wal_pruned: u64,
    /// The poison message, if the run has already failed.
    pub poisoned: Option<String>,
}

impl std::fmt::Display for PreciseState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grants {}  schedule {:016x}  retired {:016x}",
            self.grants, self.schedule_digest, self.retired_digest
        )?;
        match self.replayed {
            Some(n) => writeln!(f, "  replayed {n} events")?,
            None => writeln!(f)?,
        }
        writeln!(
            f,
            "live {}  rol {}  wal {} live / {} appended / {} pruned",
            self.live_threads, self.rol_len, self.wal_len, self.wal_appended, self.wal_pruned
        )?;
        for (tid, state, pending, st) in &self.threads {
            write!(f, "thread {tid}: {state}")?;
            if let Some(p) = pending {
                write!(f, ", wants {p}")?;
            }
            if let Some(s) = st {
                write!(f, ", in sub-thread {s}")?;
            }
            writeln!(f)?;
        }
        for (lock, holder) in &self.locks {
            match holder {
                Some(st) => writeln!(f, "lock {lock}: held by sub-thread {st}")?,
                None => writeln!(f, "lock {lock}: free")?,
            }
        }
        if let Some(msg) = &self.poisoned {
            writeln!(f, "poisoned: {msg}")?;
        }
        Ok(())
    }
}

/// Why [`GprsSession::run_quantum`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumOutcome {
    /// The grant budget was exhausted; the job parked at a quiescent point
    /// and can be resumed with another `run_quantum` call.
    Yielded,
    /// The program finished (all threads exited) or poisoned; call
    /// [`GprsSession::finish`] for the report.
    Finished,
}

/// A program being executed cooperatively, quantum by quantum, on the
/// caller's thread. Created by [`crate::Gprs::into_session`].
///
/// A session is single-driver: one thread at a time calls `run_quantum`
/// (the type is `Send` but deliberately exposes only `&mut` execution), so
/// between calls the machine is always quiesced. Exceptions can still be
/// injected concurrently through a [`Controller`]; they are recovered at
/// the next quantum boundary the engine reaches — including the final one,
/// via the same trailing-grant gate ordering as the pooled worker loop.
#[derive(Debug)]
pub struct GprsSession {
    pub(crate) shared: SharedRef,
    pub(crate) analysis: Option<gprs_analyze::AnalysisReport>,
    pub(crate) done: bool,
    pub(crate) cancelled: bool,
}

impl GprsSession {
    /// Runs up to `max_grants` ordered grants (minimum 1) on the calling
    /// thread. Returns [`QuantumOutcome::Yielded`] with the job parked at a
    /// quiescent point, or [`QuantumOutcome::Finished`] when the program
    /// completed (or poisoned). Calling again after `Finished` is a no-op
    /// returning `Finished`.
    pub fn run_quantum(&mut self, max_grants: u64) -> QuantumOutcome {
        if self.done {
            return QuantumOutcome::Finished;
        }
        let mut budget = max_grants.max(1);
        let mut finished: Option<StepOutcome> = None;
        loop {
            match coop_decide(&self.shared, finished.take(), budget > 0) {
                CoopDecision::Run(task) => {
                    budget -= 1;
                    finished = Some(execute_task(&self.shared, 0, task));
                }
                CoopDecision::Parked => return QuantumOutcome::Yielded,
                CoopDecision::Finished => {
                    self.done = true;
                    return QuantumOutcome::Finished;
                }
            }
        }
    }

    /// Runs the program to completion on the calling thread (an unbounded
    /// sequence of quanta).
    pub fn run_to_completion(&mut self) {
        while self.run_quantum(u64::MAX) != QuantumOutcome::Finished {}
    }

    /// Cancels the job at the current (parked) quantum boundary: every
    /// in-flight sub-thread is squashed through the ordinary basic-restart
    /// path — WAL records undone, history checkpoints applied, staged file
    /// output dropped — so the ledger balances
    /// (`wal_appends == wal_undos + wal_prunes`) and everything already
    /// retired stays committed. The synthetic exception is accounted as a
    /// [`ResourceRevocation`](gprs_core::exception::ExceptionKind) in the
    /// job's stats. After `cancel`, [`finish`](Self::finish) returns the
    /// partial report. No-op on a finished session.
    pub fn cancel(&mut self) {
        if self.done {
            return;
        }
        let mut g = self.shared.inner.lock();
        debug_assert!(
            g.running.is_empty(),
            "cancel is called between quanta, with the session quiesced"
        );
        crate::rex::cancel_inflight(&mut g);
        g.cancelled_note = Some(format!(
            "run cancelled at a quantum boundary after {} grants",
            g.stats.grants
        ));
        drop(g);
        self.shared
            .done
            .store(true, std::sync::atomic::Ordering::Release);
        self.done = true;
        self.cancelled = true;
    }

    /// Whether the program has run to completion (or was cancelled).
    pub fn is_finished(&self) -> bool {
        self.done
    }

    /// Whether the session was cancelled (vs. running to completion).
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Ordered grants issued so far (scheduling diagnostics).
    pub fn grants(&self) -> u64 {
        self.shared.inner.lock().stats.grants
    }

    /// Captures the session's quiesced [`PreciseState`]. Valid whenever no
    /// quantum is in flight — between `run_quantum` calls, or after the
    /// session finished (including by poisoning), which is exactly when a
    /// replay driver wants to inspect the reconstructed world.
    pub fn precise_state(&self) -> PreciseState {
        let g = self.shared.inner.lock();
        PreciseState {
            grants: g.stats.grants,
            replayed: g.replay.as_ref().map(|rs| rs.verified as u64),
            schedule_digest: g.sched_hash.digest(),
            retired_digest: g.retired_hash.digest(),
            live_threads: g.live as u64,
            threads: g
                .threads
                .iter()
                .map(|(tid, rec)| {
                    (
                        tid.raw(),
                        format!("{:?}", rec.state),
                        rec.pending.as_ref().map(|p| format!("{p:?}")),
                        rec.current_st.map(|s| s.raw()),
                    )
                })
                .collect(),
            locks: g
                .locks
                .iter()
                .map(|(id, rec)| (id.raw(), rec.holder.map(|s| s.raw())))
                .collect(),
            rol_len: g.rol.len() as u64,
            wal_len: g.wal.len() as u64,
            wal_appended: g.wal.appended(),
            wal_pruned: g.wal.pruned(),
            poisoned: g.poisoned.clone(),
        }
    }

    /// A controller for injecting exceptions while the session runs.
    pub fn controller(&self) -> Controller {
        Controller {
            shared: self.shared.clone(),
        }
    }

    /// Assembles the final [`RunReport`]. For a completed session this is
    /// identical to what [`crate::Gprs::run`] would have produced; for a
    /// cancelled session it reports whatever retired before the cancel.
    ///
    /// # Errors
    /// [`RunError::Poisoned`] if a step panicked or the program deadlocked.
    pub fn finish(self) -> Result<RunReport, RunError> {
        crate::collect_report(&self.shared, self.analysis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::StepCtx;
    use crate::handles::MutexHandle;
    use crate::program::{Step, ThreadProgram};
    use crate::GprsBuilder;
    use gprs_core::history::Checkpoint;
    use gprs_core::ids::GroupId;

    struct Worker {
        mutex: MutexHandle<u64>,
        rounds: u32,
        done: u32,
    }
    impl Checkpoint for Worker {
        type Snapshot = u32;
        fn checkpoint(&self) -> u32 {
            self.done
        }
        fn restore(&mut self, s: &u32) {
            self.done = *s;
        }
    }
    impl ThreadProgram for Worker {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            if self.done > 0 {
                ctx.with_lock(&self.mutex, |n| *n += 1);
            }
            if self.done == self.rounds {
                return Step::exit_unit();
            }
            self.done += 1;
            self.mutex.lock()
        }
    }

    fn build(rounds: u32) -> (crate::Gprs, MutexHandle<u64>) {
        let mut b = GprsBuilder::new().job(7, 3);
        let m = b.mutex(0u64);
        for _ in 0..2 {
            b.thread(
                Worker {
                    mutex: m,
                    rounds,
                    done: 0,
                },
                GroupId::new(0),
                1,
            );
        }
        (b.build(), m)
    }

    #[test]
    fn session_matches_pooled_run() {
        let pooled = build(8).0.run().unwrap();
        let mut session = build(8).0.into_session();
        let mut quanta = 0u32;
        while session.run_quantum(3) == QuantumOutcome::Yielded {
            quanta += 1;
            assert!(quanta < 10_000, "session must terminate");
        }
        assert!(quanta > 1, "a 3-grant quantum must yield at least once");
        let report = session.finish().unwrap();
        assert_eq!(report.job_id, 7);
        assert_eq!(report.submit_seq, 3);
        assert_eq!(
            report.telemetry.retired_hash,
            pooled.telemetry.retired_hash,
            "quantum-driven execution retires in the pooled order"
        );
        assert_eq!(report.stats.locks_acquired, pooled.stats.locks_acquired);
    }

    #[test]
    fn cancel_balances_the_ledger() {
        let mut session = build(64).0.into_session();
        assert_eq!(session.run_quantum(5), QuantumOutcome::Yielded);
        session.cancel();
        assert!(session.is_finished() && session.was_cancelled());
        let report = session.finish().unwrap();
        let t = &report.telemetry;
        assert!(t.counter("wal_appends") > 0, "the quantum did DEX work");
        assert_eq!(
            t.counter("wal_appends"),
            t.counter("wal_undos") + t.counter("wal_prunes"),
            "cancelled job leaves no WAL imbalance"
        );
    }
}
