//! Write-ahead-log operations protecting the runtime's own structures
//! (`§3.2`, "Managing the Runtime State").
//!
//! Every mutation of a runtime structure — channel queues, lock table,
//! atomics, thread table, allocator — is logged *before* being applied, on
//! behalf of the sub-thread whose grant caused it. Recovery walks the
//! squashed sub-threads' records newest-first and applies the inverse of
//! each; retirement prunes them.

use crate::program::Payload;
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, LockId, SubThreadId, ThreadId};
use std::fmt;

/// One undoable runtime operation.
#[derive(Clone)]
pub(crate) enum RtOp {
    /// An item was enqueued (undo: remove that very item, identified by
    /// pointer equality, searching from the back).
    Push { chan: ChannelId, item: Payload },
    /// An item was dequeued (undo: return `item` to the queue front with
    /// its original provenance).
    Pop {
        chan: ChannelId,
        item: Payload,
        producer: Option<SubThreadId>,
    },
    /// Atomic fetch-add (undo: store `old`).
    FetchAdd { atomic: AtomicId, old: u64 },
    /// Unsynchronized store to a shared cell (undo: store `old`). Unlike
    /// `FetchAdd` this adds *no* dependence alias to the sub-thread — the
    /// data-race hazard the racecheck subsystem detects.
    PlainStore { atomic: AtomicId, old: u64 },
    /// Lock acquired (undo: mark free).
    LockAcquire { lock: LockId },
    /// Lock released (undo: mark held by `holder` again).
    LockRelease { lock: LockId, holder: SubThreadId },
    /// Thread arrived at a barrier (undo: remove it from the waiting list
    /// if the barrier has not released).
    BarrierArrive { barrier: BarrierId, thread: ThreadId },
    /// A child thread was created (undo: deregister the child and hand its
    /// program back to the reinstated spawn request).
    SpawnChild { child: ThreadId },
    /// A thread exited (undo: resurrect it and discard its output).
    ThreadExit { thread: ThreadId },
    /// Pool allocation (undo: free the block).
    Alloc { block: u64 },
    /// Pool free (undo: restore the block with its former contents).
    Free { block: u64, data: Vec<u8> },
}

impl fmt::Debug for RtOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtOp::Push { chan, .. } => write!(f, "Push({chan})"),
            RtOp::Pop { chan, producer, .. } => {
                write!(f, "Pop({chan}, producer {producer:?})")
            }
            RtOp::FetchAdd { atomic, old } => write!(f, "FetchAdd({atomic}, old {old})"),
            RtOp::PlainStore { atomic, old } => write!(f, "PlainStore({atomic}, old {old})"),
            RtOp::LockAcquire { lock } => write!(f, "LockAcquire({lock})"),
            RtOp::LockRelease { lock, holder } => write!(f, "LockRelease({lock}, by {holder})"),
            RtOp::BarrierArrive { barrier, thread } => {
                write!(f, "BarrierArrive({barrier}, {thread})")
            }
            RtOp::SpawnChild { child } => write!(f, "SpawnChild({child})"),
            RtOp::ThreadExit { thread } => write!(f, "ThreadExit({thread})"),
            RtOp::Alloc { block } => write!(f, "Alloc(#{block})"),
            RtOp::Free { block, data } => write!(f, "Free(#{block}, {} bytes)", data.len()),
        }
    }
}
