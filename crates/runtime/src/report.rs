//! Run statistics and the final report.

use crate::program::{payload_to, Payload};
use gprs_core::ids::{SubThreadId, ThreadId};
use gprs_core::racecheck::Race;
use gprs_telemetry::TelemetrySummary;
use std::collections::BTreeMap;

/// Counters accumulated over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Sub-threads created (including re-executions after squash).
    pub subthreads: u64,
    /// Sub-threads retired.
    pub retired: u64,
    /// Ordered grants issued.
    pub grants: u64,
    /// Wasted turns: empty-FIFO polls and unfinished-join retries.
    pub polls: u64,
    /// Exceptions delivered to the REX.
    pub exceptions: u64,
    /// Exceptions whose culprit had already retired or was idle.
    pub exceptions_ignored: u64,
    /// Sub-threads squashed by recovery.
    pub squashed: u64,
    /// Recovery episodes executed.
    pub recoveries: u64,
    /// Lock acquisitions (opening + nested).
    pub locks_acquired: u64,
    /// Dynamic thread spawns (including respawns during recovery).
    pub spawns: u64,
    /// Barrier releases.
    pub barrier_releases: u64,
    /// Serialized (exclusive) sections executed.
    pub serialized: u64,
    /// Pool allocations.
    pub allocs: u64,
    /// Peak reorder-list occupancy.
    pub rol_peak: usize,
    /// Data races flagged by the happens-before detector (0 when the
    /// detector is off).
    pub races: u64,
    /// Selective restarts widened to basic because the culprit's thread
    /// participated in a detected race.
    pub hybrid_escalations: u64,
}

/// Result of a completed run.
pub struct RunReport {
    /// Stable identity of the job this run executed. Zero for solo runs;
    /// a serving layer (`gprs-serve`) assigns each submission a unique id
    /// via [`crate::GprsBuilder::job`] so streamed reports can be matched
    /// back to their submissions.
    pub job_id: u64,
    /// Monotonic submission sequence number (admission order). Zero for
    /// solo runs. Distinct from [`RunReport::job_id`]: ids are stable
    /// handles, sequence numbers order submissions across a serving
    /// session.
    pub submit_seq: u64,
    /// Final statistics.
    pub stats: RunStats,
    /// Thread outputs (from their `Step::Exit` values).
    pub outputs: BTreeMap<ThreadId, Payload>,
    /// Committed contents of every registered file, by registration index.
    pub files: BTreeMap<u64, (String, Vec<u8>)>,
    /// End-of-run telemetry: determinism hashes (the streaming
    /// `schedule_hash` replaces the old capped `grant_trace` vector and is
    /// identical across runs with the same exception schedule regardless of
    /// worker count), metrics, and the drained event trace.
    pub telemetry: TelemetrySummary,
    /// The first data race in retired order, when
    /// [`crate::GprsBuilder::racecheck`] was enabled and one was found.
    /// Deterministic: the same program and seed yield the same report
    /// regardless of worker count.
    pub first_race: Option<Race>,
    /// The ahead-of-run static analysis report, when
    /// [`crate::GprsBuilder::analyze`] was enabled and a model attached.
    pub analysis: Option<gprs_analyze::AnalysisReport>,
    /// Per-domain ledgers of a sharded run (`crate::ShardedGprs`), in
    /// domain order; empty for ordinary runs. The per-shard retired-hash
    /// values wrapping-sum to [`TelemetrySummary::retired_hash`], and each
    /// shard's WAL ledger must balance (`wal_appends == wal_undos +
    /// wal_prunes`) — the invariants the chaos oracle audits per domain.
    pub shards: Vec<ShardSummary>,
}

/// One execution domain's slice of a sharded run's ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    /// Execution-domain index (matches the coalesced plan's order).
    pub domain: usize,
    /// Sub-threads retired by this domain's engine.
    pub retired: u64,
    /// The domain's commutative retired-order digest.
    pub retired_hash: u64,
    /// Grants issued by the domain's order enforcer.
    pub grants: u64,
    /// WAL records appended under this domain's engine lock.
    pub wal_appends: u64,
    /// WAL undo records consumed by this domain's recoveries.
    pub wal_undos: u64,
    /// WAL records pruned at this domain's retirements.
    pub wal_prunes: u64,
}

impl RunReport {
    /// The opt-in bounded raw grant trace `(sub-thread, thread)`, re-typed.
    /// Empty unless `GprsBuilder::trace_cap` (or
    /// `TelemetryConfig::raw_trace_cap`) was set.
    pub fn grant_trace(&self) -> Vec<(SubThreadId, ThreadId)> {
        self.telemetry
            .raw_grant_trace
            .iter()
            .map(|&(s, t)| (SubThreadId::new(s), ThreadId::new(t)))
            .collect()
    }

    /// Typed access to a thread's exit value.
    ///
    /// # Panics
    /// Panics if the thread produced no output or on a type mismatch.
    pub fn output<T: Clone + Send + Sync + 'static>(&self, thread: ThreadId) -> T {
        let p = self
            .outputs
            .get(&thread)
            .unwrap_or_else(|| panic!("{thread} produced no output"));
        payload_to(p)
    }

    /// Committed bytes of a file by handle index.
    pub fn file_contents(&self, index: u64) -> &[u8] {
        self.files
            .get(&index)
            .map(|(_, bytes)| bytes.as_slice())
            .unwrap_or(&[])
    }
}

impl std::fmt::Debug for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReport")
            .field("job_id", &self.job_id)
            .field("submit_seq", &self.submit_seq)
            .field("stats", &self.stats)
            .field("outputs", &self.outputs.len())
            .field("files", &self.files.len())
            .field("analysis", &self.analysis.is_some())
            .finish()
    }
}

/// Errors terminating a run abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// A step panicked; the runtime was poisoned.
    Poisoned(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Poisoned(msg) => write!(f, "runtime poisoned: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn typed_output_access() {
        let mut outputs: BTreeMap<ThreadId, Payload> = BTreeMap::new();
        outputs.insert(ThreadId::new(0), Arc::new(41u64));
        let report = RunReport {
            job_id: 0,
            submit_seq: 0,
            stats: RunStats::default(),
            outputs,
            files: BTreeMap::new(),
            telemetry: TelemetrySummary::default(),
            first_race: None,
            analysis: None,
            shards: Vec::new(),
        };
        assert_eq!(report.output::<u64>(ThreadId::new(0)), 41);
        assert!(report.file_contents(0).is_empty());
        assert!(report.grant_trace().is_empty());
    }

    #[test]
    fn run_error_displays() {
        let e = RunError::Poisoned("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
