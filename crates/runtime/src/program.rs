//! The thread programming model.
//!
//! GPRS must be able to re-execute any sub-thread from its beginning, which
//! requires reinstating the thread's execution state at the sub-thread
//! boundary. The paper checkpoints the call stack and registers of its C
//! threads; safe Rust cannot capture a foreign stack, so threads are written
//! in *trampoline style* instead: a [`ThreadProgram`] is an explicit state
//! machine whose [`step`](ThreadProgram::step) runs exactly one sub-thread —
//! from one synchronization point to the next — and returns the
//! synchronization operation ([`Step`]) it arrived at. The state the program
//! carries **is** its stack, and the [`Checkpoint`] supertrait supplies the
//! paper's application-level checkpoint function for it.
//!
//! The correspondence with the paper's interception points:
//!
//! | Pthreads / gcc call | trampoline equivalent |
//! |---|---|
//! | `pthread_create(f, group)` | return [`Step::spawn`] |
//! | `pthread_join` | return [`Step::join`] |
//! | `pthread_mutex_lock` | return [`crate::handles::MutexHandle::lock`]; the critical section is the *next* step, which may call [`crate::ctx::StepCtx::unlock`] anywhere and keep computing (the unlock-subsumption optimization) |
//! | `__sync_fetch_and_add` | return [`crate::handles::AtomicHandle::fetch_add`] |
//! | `pthread_barrier_wait` | return [`crate::handles::BarrierHandle::wait`] |
//! | lock-protected FIFO access | return [`crate::handles::ChannelHandle::push`] / [`crate::handles::ChannelHandle::pop`] |
//! | `pthread_exit(v)` | return [`Step::exit`] |

use crate::handles::{RawChannel, RawMutex};
use gprs_core::history::Checkpoint;
use gprs_core::ids::{AtomicId, BarrierId, GroupId, ThreadId};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A type-erased, immutably shared value traveling through channels,
/// join results and thread outputs.
///
/// Values are shared rather than moved so that an undone channel pop can
/// return the *same* item to the queue front without cloning.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// The synchronization operation a step arrived at — the boundary that ends
/// the current sub-thread and opens the next.
pub enum Step {
    /// Acquire a mutex; the next step runs as the critical section (access
    /// the protected data with [`crate::ctx::StepCtx::with_lock`], release
    /// early with [`crate::ctx::StepCtx::unlock`]).
    Lock(RawMutex),
    /// Enqueue a value into a FIFO channel.
    Push(RawChannel, Payload),
    /// Dequeue a value; the thread deterministically re-polls while the
    /// channel is empty. Read it with [`crate::ctx::StepCtx::popped`].
    Pop(RawChannel),
    /// Atomic fetch-add; the previous value is available to the next step
    /// via [`crate::ctx::StepCtx::atomic_prev`].
    FetchAdd(AtomicId, u64),
    /// Wait on a barrier.
    Barrier(BarrierId),
    /// Create a new thread (the extended `pthread_create` carrying the
    /// balance-aware group and weight).
    Spawn(SpawnSpec),
    /// Wait for a thread to exit; its output is available to the next step
    /// via [`crate::ctx::StepCtx::joined`].
    Join(ThreadId),
    /// Execute the next step strictly serialized: all preceding sub-threads
    /// retire first and nothing runs concurrently. This is how functions
    /// with unknown mod sets and `start_cpr`/`end_cpr` hybrid regions
    /// execute (`§3.2`, `§3.4`).
    Serialized,
    /// Terminate the thread with an output value.
    Exit(Payload),
}

impl Step {
    /// Builds a [`Step::Spawn`] from a typed program.
    pub fn spawn<P: ThreadProgram>(program: P, group: GroupId, weight: u32) -> Step {
        Step::Spawn(SpawnSpec {
            program: Box::new(program),
            group,
            weight,
        })
    }

    /// Builds a [`Step::Join`].
    pub fn join(thread: ThreadId) -> Step {
        Step::Join(thread)
    }

    /// Builds a [`Step::Exit`] carrying a typed output.
    pub fn exit<T: Send + Sync + 'static>(value: T) -> Step {
        Step::Exit(Arc::new(value))
    }

    /// Builds a [`Step::Exit`] with no output.
    pub fn exit_unit() -> Step {
        Step::Exit(Arc::new(()))
    }
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Lock(m) => write!(f, "Lock({})", m.id()),
            Step::Push(c, _) => write!(f, "Push({})", c.id()),
            Step::Pop(c) => write!(f, "Pop({})", c.id()),
            Step::FetchAdd(a, n) => write!(f, "FetchAdd({a}, {n})"),
            Step::Barrier(b) => write!(f, "Barrier({b})"),
            Step::Spawn(s) => write!(f, "Spawn(group {})", s.group),
            Step::Join(t) => write!(f, "Join({t})"),
            Step::Serialized => write!(f, "Serialized"),
            Step::Exit(_) => write!(f, "Exit"),
        }
    }
}

/// A new thread's program plus its balance-aware placement.
pub struct SpawnSpec {
    /// The erased program.
    pub(crate) program: Box<dyn DynThread>,
    /// Balance-aware scheduling group (`§3.2`).
    pub group: GroupId,
    /// Group weight under the weighted schedule.
    pub weight: u32,
}

impl fmt::Debug for SpawnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpawnSpec")
            .field("group", &self.group)
            .field("weight", &self.weight)
            .finish_non_exhaustive()
    }
}

/// A restartable logical thread.
///
/// Implementors hold all state that must survive across synchronization
/// points; [`Checkpoint`] (the supertrait) saves and restores it — this is
/// the paper's user-provided application-level checkpoint function, so
/// `checkpoint` should capture exactly the mod set.
///
/// `step` must be deterministic given the program state and the values the
/// runtime delivers through [`crate::ctx::StepCtx`]; it must not communicate
/// through ambient channels (globals, files, real time) — those would be
/// data races in the paper's model too.
///
/// # Examples
/// ```
/// use gprs_runtime::program::{Step, ThreadProgram};
/// use gprs_runtime::ctx::StepCtx;
/// use gprs_core::history::Checkpoint;
///
/// /// Sums 0..n with an exit at the end: a single-sub-thread program.
/// struct Summer { n: u64, acc: u64 }
/// impl Checkpoint for Summer {
///     type Snapshot = u64;
///     fn checkpoint(&self) -> u64 { self.acc }
///     fn restore(&mut self, s: &u64) { self.acc = *s; }
/// }
/// impl ThreadProgram for Summer {
///     fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
///         self.acc = (0..self.n).sum();
///         Step::exit(self.acc)
///     }
/// }
/// ```
pub trait ThreadProgram: Checkpoint + Send + 'static
where
    Self::Snapshot: Sized,
{
    /// Executes from the current point to the next synchronization point —
    /// exactly one sub-thread body — and returns the operation that ends it.
    fn step(&mut self, ctx: &mut crate::ctx::StepCtx<'_>) -> Step;
}

/// Object-safe erasure of [`ThreadProgram`] + [`Checkpoint`].
pub(crate) trait DynThread: Send {
    fn step(&mut self, ctx: &mut crate::ctx::StepCtx<'_>) -> Step;
    fn save(&self) -> Box<dyn Any + Send>;
    fn restore_from(&mut self, snap: &(dyn Any + Send));
}

impl<P> DynThread for P
where
    P: ThreadProgram,
    P::Snapshot: Sized,
{
    fn step(&mut self, ctx: &mut crate::ctx::StepCtx<'_>) -> Step {
        ThreadProgram::step(self, ctx)
    }

    fn save(&self) -> Box<dyn Any + Send> {
        Box::new(self.checkpoint())
    }

    fn restore_from(&mut self, snap: &(dyn Any + Send)) {
        let typed = <dyn Any>::downcast_ref::<P::Snapshot>(snap)
            .expect("snapshot type matches the program that produced it");
        self.restore(typed);
    }
}

/// Extracts a typed copy of a payload.
///
/// # Panics
/// Panics if the payload holds a different type — a wiring bug between
/// producer and consumer, analogous to a type-confused `void*` in the C
/// original.
pub fn payload_to<T: Clone + Send + Sync + 'static>(p: &Payload) -> T {
    p.downcast_ref::<T>()
        .unwrap_or_else(|| panic!("payload is not a {}", std::any::type_name::<T>()))
        .clone()
}

/// A convenience [`ThreadProgram`] built from a one-shot closure: runs it as
/// a single sub-thread and exits with its result. Useful for fork/join
/// helpers and tests.
pub struct OneShot<F, T> {
    f: F,
    _out: std::marker::PhantomData<fn() -> T>,
}

impl<F, T> OneShot<F, T>
where
    F: FnMut() -> T + Send + 'static,
    T: Send + Sync + 'static,
{
    /// Wraps the closure. It must be re-runnable (`FnMut`): recovery may
    /// re-execute the sub-thread, and conventional CPR may re-execute it
    /// after a rollback.
    pub fn new(f: F) -> Self {
        OneShot {
            f,
            _out: std::marker::PhantomData,
        }
    }
}

impl<F: Send + 'static, T> Checkpoint for OneShot<F, T> {
    type Snapshot = ();
    fn checkpoint(&self) {}
    fn restore(&mut self, _snap: &()) {}
}

impl<F, T> ThreadProgram for OneShot<F, T>
where
    F: FnMut() -> T + Send + 'static,
    T: Send + Sync + 'static,
{
    fn step(&mut self, _ctx: &mut crate::ctx::StepCtx<'_>) -> Step {
        Step::exit((self.f)())
    }
}

#[allow(dead_code)]
fn _asserts() {
    fn assert_send<T: Send>() {}
    assert_send::<Step>();
    assert_send::<SpawnSpec>();
}
