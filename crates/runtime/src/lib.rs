//! **gprs-runtime** — a globally precise-restartable execution runtime for
//! parallel programs, reproducing Gupta, Sridharan & Sohi (PLDI 2014).
//!
//! The runtime executes suitably-written parallel programs (see
//! [`program::ThreadProgram`]) deterministically and recovers from
//! *discretionary exceptions* — soft faults, voltage emergencies,
//! approximation errors, resource revocations — with **selective restart**:
//! only the excepting sub-thread and the sub-threads that could have
//! consumed its data are squashed and re-executed; everything else keeps
//! running. The architecture follows the paper's Figure 4:
//!
//! * **DEX** (deterministic execution engine): intercepts every
//!   synchronization operation, divides threads into ordered sub-threads,
//!   checkpoints their state into a history store, and logs its own
//!   structure mutations to a write-ahead log.
//! * **REX** (restart engine): retires sub-threads from the
//!   reorder-list head and executes recovery plans.
//! * A **load-balancing scheduler**: a pool of OS
//!   workers that actively seek granted sub-threads.
//! * **Services**: a logged pool allocator and recoverable, output-commit-
//!   delayed file I/O ([`ctx::StepCtx`]).
//! * A **coordinated-CPR baseline executor** ([`cpr`]) running the same
//!   programs with conventional checkpoint-and-recovery, for comparison.
//!
//! # Quickstart
//!
//! ```
//! use gprs_runtime::prelude::*;
//!
//! // Two threads increment a shared counter under a mutex, twice each.
//! struct Worker { mutex: MutexHandle<u64>, rounds: u32, done: u32 }
//! impl Checkpoint for Worker {
//!     type Snapshot = u32;
//!     fn checkpoint(&self) -> u32 { self.done }
//!     fn restore(&mut self, s: &u32) { self.done = *s; }
//! }
//! impl ThreadProgram for Worker {
//!     fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
//!         if self.done > 0 {
//!             // We hold the mutex: this step is the critical section.
//!             ctx.with_lock(&self.mutex, |n| *n += 1);
//!         }
//!         if self.done == self.rounds {
//!             return Step::exit_unit();
//!         }
//!         self.done += 1;
//!         self.mutex.lock()
//!     }
//! }
//!
//! let mut b = GprsBuilder::new().workers(2);
//! let counter = b.mutex(0u64);
//! for _ in 0..2 {
//!     b.thread(Worker { mutex: counter, rounds: 2, done: 0 },
//!              GroupId::new(0), 1);
//! }
//! let gprs = b.build();
//! let report = gprs.run().unwrap();
//! assert_eq!(report.stats.locks_acquired, 4);
//! ```

#![warn(missing_docs)]

pub mod cpr;
pub mod ctx;
pub(crate) mod engine;
pub mod handles;
pub(crate) mod ops;
pub mod program;
pub mod report;
pub(crate) mod rex;
pub mod session;
pub(crate) mod shard;

pub use crate::shard::ShardedGprs;

use crate::engine::{Inner, PendingException, RunConfig, Shared, SharedRef};
use crate::handles::{
    AtomicHandle, BarrierHandle, ChannelHandle, FileHandle, MutexHandle, RawChannel, RawMutex,
};
use crate::program::ThreadProgram;
use crate::report::{RunError, RunReport};
use gprs_core::exception::{Exception, ExceptionKind};
use gprs_core::ids::{AtomicId, BarrierId, ChannelId, ContextId, GroupId, LockId, ThreadId};
use gprs_core::order::ScheduleKind;
use gprs_core::persist::{DurableImage, DurableRecord, PersistBackend};
use gprs_telemetry::{Telemetry, TelemetryConfig};
use std::marker::PhantomData;
use std::sync::Arc;

pub use crate::engine::RecoveryPolicy;

/// Default retirements between durable checkpoints (see
/// [`GprsBuilder::durable_checkpoint_every`]).
pub const DEFAULT_DURABLE_CKPT_EVERY: u64 = 64;

/// Configures and assembles a GPRS runtime.
#[derive(Debug)]
pub struct GprsBuilder {
    schedule: ScheduleKind,
    workers: usize,
    recovery: RecoveryPolicy,
    telemetry: TelemetryConfig,
    racecheck: bool,
    analyze: bool,
    elide: bool,
    model: Option<gprs_core::workload::Workload>,
    job_id: u64,
    submit_seq: u64,
    persist: Option<Arc<dyn PersistBackend>>,
    durable_ckpt_every: u64,
    durable_spec: Option<String>,
    resume_prefix: Vec<(u32, u8, u64)>,
    shard_plan_json: Option<String>,
    record_path: Option<std::path::PathBuf>,
    record_meta: Option<(String, u64)>,
    record_spec: Option<String>,
    chaos_text: Option<String>,
    replay_rec: Option<Arc<gprs_core::recording::Recording>>,
    inner: Inner,
    next_lock: u64,
    next_chan: u64,
    next_atomic: u64,
    next_barrier: u64,
    next_file: u64,
}

impl Default for GprsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GprsBuilder {
    /// A builder with the paper's defaults: balance-aware (basic) ordering,
    /// selective restart, 4 workers.
    pub fn new() -> Self {
        let cfg = RunConfig {
            schedule: ScheduleKind::BalanceBasic,
            workers: 4,
            recovery: RecoveryPolicy::Selective,
            telemetry: TelemetryConfig::default(),
            racecheck: false,
            job_id: 0,
            submit_seq: 0,
            persist: None,
            durable_ckpt_every: DEFAULT_DURABLE_CKPT_EVERY,
            elide_cells: Arc::new(std::collections::BTreeSet::new()),
        };
        GprsBuilder {
            schedule: cfg.schedule,
            workers: cfg.workers,
            recovery: cfg.recovery,
            telemetry: cfg.telemetry,
            racecheck: cfg.racecheck,
            analyze: false,
            elide: false,
            model: None,
            job_id: 0,
            submit_seq: 0,
            persist: None,
            durable_ckpt_every: DEFAULT_DURABLE_CKPT_EVERY,
            durable_spec: None,
            resume_prefix: Vec::new(),
            shard_plan_json: None,
            record_path: None,
            record_meta: None,
            record_spec: None,
            chaos_text: None,
            replay_rec: None,
            inner: Inner::new(cfg),
            next_lock: 0,
            next_chan: 0,
            next_atomic: 0,
            next_barrier: 0,
            next_file: 0,
        }
    }

    /// Number of OS workers (hardware contexts).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// The deterministic ordering schedule.
    pub fn schedule(mut self, kind: ScheduleKind) -> Self {
        self.schedule = kind;
        self
    }

    /// The recovery policy.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Stamps the run with a stable job identity and monotonic submission
    /// sequence number, reported back in
    /// [`RunReport::job_id`](crate::report::RunReport) /
    /// [`RunReport::submit_seq`](crate::report::RunReport). Solo runs leave
    /// both at 0; a serving layer assigns them at admission so streamed
    /// reports can be matched to their submissions.
    pub fn job(mut self, id: u64, seq: u64) -> Self {
        self.job_id = id;
        self.submit_seq = seq;
        self
    }

    /// Keeps the first `cap` raw `(sub-thread, thread)` grants verbatim in
    /// the report alongside the streaming schedule hash (determinism
    /// diagnostics; 0 — the default — keeps none).
    pub fn trace_cap(mut self, cap: usize) -> Self {
        self.telemetry.raw_trace_cap = cap;
        self
    }

    /// Full telemetry configuration (event rings, metrics, raw trace).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = cfg;
        self
    }

    /// Enables happens-before data-race detection over the retired order
    /// (see [`gprs_core::racecheck`]). Races are counted in
    /// [`RunStats::races`](crate::report::RunStats), the first one is
    /// reported in [`RunReport::first_race`](crate::report::RunReport), and
    /// a selective restart whose culprit's thread raced escalates to a
    /// basic restart (the race broke the dependence-closure assumption).
    pub fn racecheck(mut self, on: bool) -> Self {
        self.racecheck = on;
        self
    }

    /// Runs the static analyzer (`gprs-analyze`) over the attached
    /// [`model`](Self::model) when the runtime is built. A proven-DRF
    /// verdict elides the dynamic race detector; a potential-race verdict
    /// arms it regardless of [`racecheck`](Self::racecheck). Without an
    /// attached model this is a no-op — the runtime executes arbitrary
    /// closures, so the analysis needs the program's trace-level
    /// description.
    pub fn analyze(mut self, on: bool) -> Self {
        self.analyze = on;
        self
    }

    /// Uses the static restartability proofs over the attached
    /// [`model`](Self::model) to elide WAL undo records for proven dead
    /// stores: plain cells the model writes but never observes (no plain
    /// read, no read-modify-write anywhere). A squash can leave such a cell
    /// stale without any execution noticing, and deterministic re-execution
    /// overwrites it, so `PlainStore` undo records for those cells are
    /// skipped and counted in the `wal_records_elided` metric instead.
    /// Implies [`analyze`](Self::analyze); the proofs are only trusted when
    /// the analysis verdict is race-free, and without an attached model
    /// this is a no-op.
    pub fn elide(mut self, on: bool) -> Self {
        self.elide = on;
        self
    }

    /// Attaches the trace-level model of the program for ahead-of-run
    /// analysis (see [`analyze`](Self::analyze)). The model is the
    /// `gprs_core::workload::Workload` describing the same synchronization
    /// structure the registered thread programs perform.
    pub fn model(mut self, w: gprs_core::workload::Workload) -> Self {
        self.model = Some(w);
        self
    }

    /// Attaches a committed shard-plan artifact (the JSON text produced by
    /// `gprs_analyze::ShardPlan::to_json`) for [`build_sharded`]
    /// (Self::build_sharded). The artifact is re-validated against the
    /// attached [`model`](Self::model) at build time; a stale or mismatched
    /// plan fails the run loudly with a `stale shard plan` diagnostic
    /// instead of silently re-deriving domains. Without an artifact the
    /// plan is computed fresh from the model.
    pub fn shard_plan_artifact(mut self, json: impl Into<String>) -> Self {
        self.shard_plan_json = Some(json.into());
        self
    }

    /// Attaches a durable persistence backend (see
    /// [`gprs_core::persist`]): the runtime's WAL traffic, retirement
    /// order and periodic checkpoints are mirrored through it so a run
    /// killed mid-flight can restart in a fresh process and recover.
    /// Without a backend (the default) nothing changes — every durable
    /// hook is behind one branch, keeping the volatile hot paths intact.
    pub fn durable(mut self, backend: Arc<dyn PersistBackend>) -> Self {
        self.persist = Some(backend);
        self
    }

    /// The opaque spec text recorded as the durable epoch marker — what
    /// a restarted process needs to rebuild this job (e.g. the serve
    /// submit line). Recorded at [`build`](Self::build) when a
    /// [`durable`](Self::durable) backend is attached.
    pub fn durable_spec(mut self, text: impl Into<String>) -> Self {
        self.durable_spec = Some(text.into());
        self
    }

    /// Retirements between durable checkpoints (default
    /// [`DEFAULT_DURABLE_CKPT_EVERY`]). Each checkpoint group-commits the
    /// outstanding log with one fsync, so smaller is more durable and
    /// slower.
    pub fn durable_checkpoint_every(mut self, n: u64) -> Self {
        self.durable_ckpt_every = n.max(1);
        self
    }

    /// Resumes (restart-as-recovery) against a loaded [`DurableImage`]:
    /// the run re-executes deterministically from the beginning and every
    /// retirement in the image's durable prefix is verified — `(thread,
    /// kind, running digest)` at each index — poisoning the run on any
    /// divergence instead of silently drifting from the pre-crash
    /// execution. The verified length is reported as the
    /// `recovered_prefix_len` counter.
    pub fn resume(mut self, image: &DurableImage) -> Self {
        self.resume_prefix = image
            .retires
            .iter()
            .map(|r| (r.thread, r.kind, r.digest))
            .collect();
        self
    }

    /// Attaches a deterministic chaos-injection plan (see
    /// [`gprs_core::chaos::ChaosPlan`]). Grant-keyed events fire under the
    /// engine lock right after the matching grant; recovery-keyed events
    /// fire while the matching recovery pass is still in flight,
    /// exercising overlapping DEX→REX recovery. An empty plan is a no-op.
    pub fn chaos(mut self, plan: &gprs_core::chaos::ChaosPlan) -> Self {
        self.inner.chaos = (!plan.is_empty()).then(|| engine::ChaosState::new(plan));
        // Keep the plan's canonical text so an armed recorder can stamp the
        // injection overlay into its header (replay must re-arm the same
        // faults to reproduce the schedule).
        self.chaos_text = (!plan.is_empty()).then(|| plan.to_text());
        self
    }

    /// Records the run's complete grant schedule — every turn-consuming
    /// event in deterministic total order, with a running digest — into a
    /// recording file written at report collection (even when the run
    /// poisons). The recording replays through
    /// [`replay`](Self::replay) or the `gprs-replay` CLI. Recording adds
    /// one branch per grant; a recording is written for poisoned runs too
    /// (that is the time-travel-debugging point).
    pub fn record(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.record_path = Some(path.into());
        self
    }

    /// Stamps the recording header with the registered workload's name and
    /// the seed that parameterized it, so `gprs-replay` can rebuild the
    /// program from the recording alone. Without this the header carries
    /// `custom`/0 and the CLI refuses to rebuild.
    pub fn record_meta(mut self, workload: impl Into<String>, seed: u64) -> Self {
        self.record_meta = Some((workload.into(), seed));
        self
    }

    /// Attaches an opaque spec line (e.g. the serve submit line) to the
    /// recording header, mirroring [`durable_spec`](Self::durable_spec).
    pub fn record_spec(mut self, text: impl Into<String>) -> Self {
        self.record_spec = Some(text.into());
        self
    }

    /// Drives this run under the recorded schedule instead of a live
    /// ordering policy: the token follows the recording's grant order
    /// exactly, every turn-consuming event is verified against the tape,
    /// and the first divergence poisons the run with a named
    /// `replay divergence` message. The caller must rebuild the same
    /// program (workload, seed, chaos plan) the recording was captured
    /// from — `gprs-replay` does this from the header.
    pub fn replay(mut self, rec: Arc<gprs_core::recording::Recording>) -> Self {
        self.replay_rec = Some(rec);
        self
    }

    /// Registers a mutex owning `init`.
    pub fn mutex<T: Clone + Send + 'static>(&mut self, init: T) -> MutexHandle<T> {
        let id = LockId::new(self.next_lock);
        self.next_lock += 1;
        self.inner.locks.insert(
            id,
            engine::LockRec {
                holder: None,
                data: Some(Box::new(init)),
            },
        );
        MutexHandle {
            raw: RawMutex(id),
            _t: PhantomData,
        }
    }

    /// Registers a FIFO channel.
    pub fn channel<T: Send + Sync + 'static>(&mut self) -> ChannelHandle<T> {
        let id = ChannelId::new(self.next_chan);
        self.next_chan += 1;
        self.inner.chans.insert(id, engine::ChanRec::default());
        ChannelHandle {
            raw: RawChannel(id),
            _t: PhantomData,
        }
    }

    /// Registers an atomic `u64`.
    pub fn atomic(&mut self, init: u64) -> AtomicHandle {
        let id = AtomicId::new(self.next_atomic);
        self.next_atomic += 1;
        self.inner.atomics.insert(id, init);
        AtomicHandle(id)
    }

    /// Registers a barrier for `participants` threads.
    pub fn barrier(&mut self, participants: u32) -> BarrierHandle {
        let id = BarrierId::new(self.next_barrier);
        self.next_barrier += 1;
        self.inner.barriers.insert(
            id,
            engine::BarrierRec {
                participants,
                waiting: Vec::new(),
                arrival_sts: Vec::new(),
                gen: 0,
            },
        );
        BarrierHandle(id, participants)
    }

    /// Registers a recoverable output file.
    pub fn file(&mut self, name: impl Into<String>) -> FileHandle {
        let id = self.next_file;
        self.next_file += 1;
        self.inner.files.insert(
            id,
            engine::FileRec {
                name: name.into(),
                committed: Vec::new(),
                staged: Vec::new(),
            },
        );
        FileHandle(id)
    }

    /// Registers an initial thread; fork order defines the deterministic
    /// registration order.
    pub fn thread<P>(&mut self, program: P, group: GroupId, weight: u32) -> ThreadId
    where
        P: ThreadProgram,
        P::Snapshot: Sized,
    {
        self.inner.add_thread(Box::new(program), group, weight, None)
    }

    /// Finalizes the configuration.
    pub fn build(mut self) -> Gprs {
        // Ahead-of-run static analysis: run before the detector is (re)built
        // so the verdict can arm or elide it.
        let analysis = if self.analyze || self.elide {
            self.model.as_ref().map(gprs_analyze::analyze)
        } else {
            None
        };
        if let Some(rep) = &analysis {
            if self.analyze {
                if rep.race_free() {
                    self.racecheck = false;
                } else if rep.advice == gprs_analyze::RecoveryAdvice::HybridCpr {
                    self.racecheck = true;
                }
            }
        }
        // WAL elision trusts the dead-store proof only under a race-free
        // verdict: a racy model means the trace-level summaries may not
        // describe the actual access pattern, so keep every undo record.
        let elide_cells = match &analysis {
            Some(rep) if self.elide && rep.race_free() => {
                Arc::new(rep.restart.dead_cells.iter().copied().collect())
            }
            _ => Arc::new(std::collections::BTreeSet::new()),
        };
        self.inner.cfg = RunConfig {
            schedule: self.schedule,
            workers: self.workers,
            recovery: self.recovery,
            telemetry: self.telemetry,
            racecheck: self.racecheck,
            job_id: self.job_id,
            submit_seq: self.submit_seq,
            persist: self.persist.take(),
            durable_ckpt_every: self.durable_ckpt_every,
            elide_cells,
        };
        // Record/replay arming. One run cannot both follow and produce a
        // tape, and a replayed run must not mutate a durable epoch or
        // verify a resume prefix (both assume a live schedule): reject the
        // combinations loudly instead of guessing a precedence.
        if self.record_path.is_some() && self.replay_rec.is_some() {
            self.inner
                .poison("cannot record and replay in the same run");
            self.record_path = None;
            self.replay_rec = None;
        }
        if self.replay_rec.is_some()
            && (self.inner.cfg.persist.is_some() || !self.resume_prefix.is_empty())
        {
            self.inner.poison(
                "replay does not compose with durable persistence or resume \
                 (a replayed run must not rewrite the durable epoch)",
            );
            self.replay_rec = None;
        }
        if let Some(path) = self.record_path.take() {
            let (workload, seed) =
                self.record_meta.take().unwrap_or_else(|| ("custom".into(), 0));
            self.inner.recorder =
                Some(gprs_core::recording::Recorder::new(gprs_core::recording::RecordingHeader {
                    workload,
                    seed,
                    // Provisional: stamped for real when the drive mode is
                    // known, at `Gprs::run` / `Gprs::into_session`.
                    mode: gprs_core::recording::DriveMode::Pool,
                    schedule: self.schedule.tag().to_string(),
                    workers: self.workers as u32,
                    spec: self.record_spec.take(),
                    chaos: self.chaos_text.take(),
                }));
            self.inner.record_path = Some(path);
        }
        if let Some(rec) = self.replay_rec.take() {
            self.inner.replay = Some(engine::ReplayState { rec, verified: 0 });
        }
        if !self.resume_prefix.is_empty() {
            self.inner.verify = Some(engine::VerifyState {
                expected: std::mem::take(&mut self.resume_prefix),
                pos: 0,
            });
        }
        // Open the durable epoch: the Spec record marks where this run's
        // records start (a resumed run supersedes the prior epoch) and is
        // synced immediately so even a run killed before its first
        // retirement leaves a well-formed epoch on disk.
        if let Some(p) = self.inner.cfg.persist.clone() {
            let spec = DurableRecord::Spec {
                text: self.durable_spec.take().unwrap_or_default(),
            };
            if let Err(e) = p.record(&spec).and_then(|()| p.sync()) {
                self.inner.poison(format!("durable persistence failed: {e}"));
            }
        }
        // The telemetry facade was sized for the default config; rebuild it
        // for the final worker count and switches. Likewise the detector,
        // which `Inner::new` created from the default (off) config.
        self.inner.telemetry = Arc::new(Telemetry::new(&self.telemetry, self.workers));
        self.inner.racecheck = self
            .racecheck
            .then(gprs_core::racecheck::RaceDetector::new);
        if let Some(rep) = &analysis {
            let elided = rep.race_free() && self.inner.racecheck.is_none();
            let tel = &self.inner.telemetry;
            if tel.enabled() {
                let m = &tel.metrics;
                m.analysis_runs.inc();
                m.analysis_cells.add(rep.cells.len() as u64);
                m.analysis_potential_races.add(rep.potential_races() as u64);
                m.analysis_diagnostics.add(rep.diagnostics.len() as u64);
                if elided {
                    m.analysis_racecheck_elided.inc();
                }
                tel.record(
                    usize::MAX, // external ring: not attributable to a worker
                    gprs_telemetry::TraceEvent::AnalysisVerdict {
                        cells: rep.cells.len() as u32,
                        potential_races: rep.potential_races() as u32,
                        diagnostics: rep.diagnostics.len() as u32,
                        advice: matches!(
                            rep.advice,
                            gprs_analyze::RecoveryAdvice::HybridCpr
                        ) as u8,
                        elided: elided as u8,
                    },
                );
            }
        }
        // The schedule may have changed after threads registered: re-seed
        // the enforcer with the final schedule — or, under replay, with the
        // tape itself as the ordering policy (the recorded grant order IS
        // the schedule; wasted polls hold the cursor in place).
        let mut enforcer = match self.inner.replay.as_ref() {
            Some(rs) => gprs_core::order::OrderEnforcer::new(Box::new(
                gprs_core::recording::ReplaySchedule::from_recording(&rs.rec),
            )),
            None => gprs_core::order::OrderEnforcer::with_schedule(self.schedule),
        };
        for (tid, rec) in &self.inner.threads {
            enforcer
                .register_thread(*tid, rec.group, rec.weight)
                .expect("unique ids");
        }
        self.inner.enforcer = enforcer;
        // `Shared::new` mirrors the final enforcer's grant frontier into
        // the lock-free gate, so it must run after the re-seed above.
        Gprs {
            shared: Arc::new(Shared::new(self.inner)),
            analysis,
        }
    }

    /// Finalizes the configuration into a sharded runtime: one engine —
    /// one `OrderGate`, reorder list, WAL and checkpoint store — per domain
    /// of the shard plan, with cross-domain channel and barrier edges
    /// rendezvousing through a lock-free hub. The plan comes from an
    /// attached [`shard_plan_artifact`](Self::shard_plan_artifact) (re-
    /// validated against the model) or is derived fresh from the
    /// [`model`](Self::model)'s interference proof. A single-domain plan
    /// degenerates to the unmodified engine, bit-identical to
    /// [`build`](Self::build).
    ///
    /// Sharded execution composes with analysis-driven WAL elision and the
    /// full telemetry stack, but not with features that assume one global
    /// retirement stream: durable persistence/resume and the dynamic race
    /// detector are rejected at build time (the error surfaces from
    /// [`ShardedGprs::run`]).
    pub fn build_sharded(mut self) -> ShardedGprs {
        let Some(model) = self.model.clone() else {
            return ShardedGprs::failed(
                "sharded execution requires an attached model (GprsBuilder::model)".into(),
            );
        };
        if self.persist.is_some() {
            return ShardedGprs::failed(
                "sharded execution does not support durable persistence".into(),
            );
        }
        if !self.resume_prefix.is_empty() {
            return ShardedGprs::failed(
                "sharded execution does not support durable resume".into(),
            );
        }
        if self.record_path.is_some() || self.replay_rec.is_some() {
            return ShardedGprs::failed(
                "sharded execution does not support schedule record/replay \
                 (per-domain gates have no single global grant order)"
                    .into(),
            );
        }
        // Resolve the shard plan: committed artifact (re-validated, loud
        // failure on staleness) or fresh derivation from the model.
        let plan = match self.shard_plan_json.take() {
            Some(text) => {
                let plan = match gprs_analyze::ShardPlan::from_json(&text) {
                    Ok(p) => p,
                    Err(e) => {
                        return ShardedGprs::failed(format!(
                            "stale shard plan for {:?}: unreadable artifact: {e}",
                            model.name
                        ))
                    }
                };
                if let Err(e) = plan.validate_against(&model) {
                    return ShardedGprs::failed(e);
                }
                plan
            }
            None => gprs_analyze::shard_plan(&model),
        };
        let exec = plan.coalesce_for_execution(&model);
        // Same ahead-of-run analysis as `build`, but a verdict that would
        // arm the dynamic detector is a hard error: per-domain detectors
        // cannot see cross-shard races, so a maybe-racy model must not run
        // sharded.
        let analysis = if self.analyze || self.elide {
            Some(gprs_analyze::analyze(&model))
        } else {
            None
        };
        if let Some(rep) = &analysis {
            if self.analyze && !rep.race_free()
                && rep.advice == gprs_analyze::RecoveryAdvice::HybridCpr
            {
                self.racecheck = true;
            }
        }
        if self.racecheck {
            return ShardedGprs::failed(
                "sharded execution does not support the dynamic race detector \
                 (per-domain detectors cannot order cross-shard accesses)"
                    .into(),
            );
        }
        let elide_cells = match &analysis {
            Some(rep) if self.elide && rep.race_free() => {
                Arc::new(rep.restart.dead_cells.iter().copied().collect())
            }
            _ => Arc::new(std::collections::BTreeSet::new()),
        };
        self.inner.cfg = RunConfig {
            schedule: self.schedule,
            workers: self.workers,
            recovery: self.recovery,
            telemetry: self.telemetry,
            racecheck: false,
            job_id: self.job_id,
            submit_seq: self.submit_seq,
            persist: None,
            durable_ckpt_every: self.durable_ckpt_every,
            elide_cells,
        };
        // Mirror `build`'s facade rebuild: the telemetry was sized for the
        // default config. `assemble` re-derives per-domain facades from
        // this cfg; the single-domain shortcut uses this one as-is.
        self.inner.telemetry = Arc::new(Telemetry::new(&self.telemetry, self.workers));
        self.inner.racecheck = None;
        shard::assemble(self.inner, &model, &exec, self.workers, analysis)
    }
}

/// A fully configured runtime, ready to run.
#[derive(Debug)]
pub struct Gprs {
    shared: SharedRef,
    /// Ahead-of-run analysis report, carried into the [`RunReport`].
    analysis: Option<gprs_analyze::AnalysisReport>,
}

impl Gprs {
    /// Stamps the recorder with the actual drive mode, and rejects a
    /// cross-mode replay loudly: a pool recording replayed through a
    /// session (or vice versa) would verify event-for-event yet reproduce
    /// none of the original run's context interleaving, so the mismatch
    /// poisons before the first grant instead of silently "succeeding".
    fn stamp_mode(&self, mode: gprs_core::recording::DriveMode) {
        let mut inner = self.shared.inner.lock();
        if let Some(r) = inner.recorder.as_mut() {
            r.set_mode(mode);
        }
        let mismatch = inner.replay.as_ref().and_then(|rs| {
            (rs.rec.header.mode != mode).then(|| {
                format!(
                    "replay mode mismatch: recording was captured in {} mode \
                     but this run drives in {} mode",
                    rs.rec.header.mode, mode
                )
            })
        });
        if let Some(msg) = mismatch {
            inner.poison(msg);
        }
    }

    /// A controller for injecting exceptions while the program runs.
    pub fn controller(&self) -> Controller {
        Controller {
            shared: self.shared.clone(),
        }
    }

    /// Runs the program to completion on the configured worker pool,
    /// shepherding it through any injected exceptions.
    ///
    /// # Errors
    /// Returns [`RunError::Poisoned`] if a step panicked or the program
    /// deadlocked (ill-formed barrier participation or channel starvation).
    pub fn run(self) -> Result<RunReport, RunError> {
        self.stamp_mode(gprs_core::recording::DriveMode::Pool);
        let workers = self.shared.inner.lock().cfg.workers;
        let mut joins = Vec::with_capacity(workers);
        for ix in 0..workers {
            let shared = self.shared.clone();
            joins.push(
                std::thread::Builder::new()
                    .name(format!("gprs-worker-{ix}"))
                    .spawn(move || crate::engine::worker_loop(&shared, ix))
                    .expect("spawn worker"),
            );
        }
        for j in joins {
            j.join().expect("workers do not panic");
        }
        collect_report(&self.shared, self.analysis)
    }

    /// Converts the runtime into a cooperative [`session::GprsSession`]
    /// driven in bounded quanta on the caller's thread instead of a
    /// dedicated worker pool — the entry point the `gprs-serve`
    /// multi-tenant scheduler multiplexes jobs through. The configured
    /// [`workers`](GprsBuilder::workers) count is ignored; a session always
    /// has exactly one driving context (determinism hashes are
    /// worker-count-independent, so reports still match pooled runs).
    pub fn into_session(self) -> session::GprsSession {
        self.stamp_mode(gprs_core::recording::DriveMode::Session);
        session::GprsSession {
            shared: self.shared,
            analysis: self.analysis,
            done: false,
            cancelled: false,
        }
    }
}

/// Drains the engine's final state into a [`RunReport`]. Shared by
/// [`Gprs::run`] (after the pool joins) and
/// [`session::GprsSession::finish`] (after the driver observes
/// completion), so both execution modes report identically.
pub(crate) fn collect_report(
    shared: &SharedRef,
    analysis: Option<gprs_analyze::AnalysisReport>,
) -> Result<RunReport, RunError> {
    let mut inner = shared.inner.lock();
    if let Some(p) = inner.cfg.persist.clone() {
        // Group-commit the epoch's tail and mirror the backend's
        // operational counters into the report.
        if let Err(e) = p.sync() {
            inner.poison(format!("durable persistence failed: {e}"));
        }
        if inner.telemetry.enabled() {
            let s = p.stats();
            inner.telemetry.metrics.wal_segments_sealed.add(s.segments_sealed);
            inner.telemetry.metrics.fsyncs.add(s.fsyncs);
        }
    }
    // A replay that consumed the whole tape must also land on the recorded
    // final digests — a hash mismatch with an event-for-event match means
    // the recording was tampered with or the program diverged outside the
    // schedule, and either deserves a loud failure.
    if let Some(msg) = inner.replay_verify_final() {
        inner.poison(msg);
    }
    // Seal and write the recording BEFORE the poison early-return: a
    // recording of a failed run is the whole point of time-travel
    // debugging, so the file must exist exactly when the report does not.
    if let Some((path, rec)) = inner.take_recording() {
        if let Err(e) = rec.save(&path) {
            inner.poison(format!(
                "failed to write recording to {}: {e}",
                path.display()
            ));
        }
    }
    if let Some(msg) = inner.poisoned.take() {
        return Err(RunError::Poisoned(msg));
    }
    let files = inner
        .files
        .iter()
        .map(|(&id, f)| (id, (f.name.clone(), f.committed.clone())))
        .collect();
    let raw_trace = std::mem::take(&mut inner.raw_trace);
    let telemetry = inner.telemetry.summarize(
        &inner.sched_hash,
        &inner.retired_hash,
        raw_trace.iter().map(|&(s, t)| (s.raw(), t.raw())).collect(),
    );
    let first_race = inner
        .racecheck
        .as_ref()
        .and_then(|det| det.first_race().cloned());
    Ok(RunReport {
        job_id: inner.cfg.job_id,
        submit_seq: inner.cfg.submit_seq,
        stats: inner.stats,
        outputs: std::mem::take(&mut inner.outputs),
        files,
        telemetry,
        first_race,
        analysis,
        shards: Vec::new(),
    })
}

/// Injects discretionary exceptions into a running program — the paper's
/// signal thread (`§4`, "System Assumptions").
#[derive(Debug, Clone)]
pub struct Controller {
    shared: SharedRef,
}

impl Controller {
    /// Raises a global exception on the given hardware context (worker).
    /// The sub-thread running there becomes the culprit; if the context is
    /// idle the exception is ignored, as the paper's emulation does.
    pub fn inject_on(&self, kind: ExceptionKind, context: u32) {
        let mut g = self.shared.inner.lock();
        let culprit = g
            .running
            .iter()
            .find(|(_, &w)| w == context as usize)
            .map(|(&s, _)| s);
        let exception = Exception::global(kind, ContextId::new(context), 0);
        if let Some(c) = culprit {
            // Attribute immediately: an excepted entry cannot retire, so
            // the culprit is still rollback-able when recovery quiesces.
            g.rol
                .mark_excepted(c, exception.clone())
                .expect("running sub-thread is in the ROL");
        }
        g.pending_exceptions
            .push_back(PendingException { exception, culprit });
        g.bump();
        drop(g);
        self.shared.cv.notify_all();
    }

    /// Raises a global exception on whichever context currently runs the
    /// oldest in-flight sub-thread (guaranteeing a culprit if anything is
    /// running). Returns whether a culprit was found.
    pub fn inject_on_busy(&self, kind: ExceptionKind) -> bool {
        let mut g = self.shared.inner.lock();
        let culprit = g.running.iter().map(|(&s, &w)| (s, w)).min();
        let Some((stid, worker)) = culprit else {
            return false;
        };
        let exception = Exception::global(kind, ContextId::new(worker as u32), 0);
        g.rol
            .mark_excepted(stid, exception.clone())
            .expect("running sub-thread is in the ROL");
        g.pending_exceptions.push_back(PendingException {
            exception,
            culprit: Some(stid),
        });
        g.bump();
        drop(g);
        self.shared.cv.notify_all();
        true
    }

    /// Whether the program has finished (all threads exited).
    pub fn is_finished(&self) -> bool {
        // Lock-free fast path: workers publish completion (or poisoning)
        // before exiting, so injector loops polling this don't contend the
        // engine lock.
        if self.shared.done.load(std::sync::atomic::Ordering::Acquire) {
            return true;
        }
        let g = self.shared.inner.lock();
        g.live == 0 && g.running.is_empty()
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::ctx::{BlockHandle, StepCtx};
    pub use crate::handles::{
        AtomicHandle, BarrierHandle, ChannelHandle, FileHandle, MutexHandle,
    };
    pub use crate::program::{payload_to, OneShot, Step, ThreadProgram};
    pub use crate::report::{RunError, RunReport, RunStats};
    pub use crate::session::{GprsSession, PreciseState, QuantumOutcome};
    pub use crate::{Controller, Gprs, GprsBuilder, RecoveryPolicy, ShardedGprs};
    pub use gprs_core::chaos::{ChaosEvent, ChaosPlan, ChaosTrigger, VictimSelector};
    pub use gprs_core::exception::{ExceptionKind, ExceptionScope};
    pub use gprs_core::history::Checkpoint;
    pub use gprs_core::ids::{GroupId, ThreadId};
    pub use gprs_analyze::{AnalysisReport, CellVerdict, RecoveryAdvice};
    pub use gprs_core::racecheck::{AccessKind, Race};
    pub use gprs_core::order::ScheduleKind;
    pub use gprs_telemetry::{TelemetryConfig, TelemetrySummary};
}
