//! Sharded order domains: one ordering/retirement engine per proven
//! [`ShardPlan`] domain, joined by lock-free cross-shard edges.
//!
//! The interference analysis (`gprs-analyze`) proves which threads can
//! never affect each other through locks, read-modify-write atomics, or
//! written plain cells. [`ShardPlan::coalesce_for_execution`] additionally
//! unions every channel's producer domains (and its consumer domains) so
//! each residual cross-domain channel is strictly SPSC. This module splits
//! the single built [`Inner`] along those execution domains:
//!
//! * each domain gets its own `OrderEnforcer` + `OrderGate`, reorder list,
//!   WAL, history store, telemetry facade and worker subset — the entire
//!   grant/retire hot path runs under a *per-domain* lock, so domains that
//!   never interfere never contend;
//! * cross-domain channels become [`EdgeQueue`] rendezvous points: a push
//!   is forwarded onto the edge only when the pushing sub-thread *retires*
//!   (retirement-committed, hence squash-proof), stamped with a sequence
//!   number the consumer asserts — deterministic transfer order by
//!   construction;
//! * cross-domain barriers go through the [`EdgeHub`]: arrivals are
//!   published at retirement of the arrival-ending sub-thread, the hub
//!   counts them per generation, and each domain applies releases locally
//!   in generation order.
//!
//! The global retired-order digest is recovered exactly: per-thread
//! retirement streams are invariant under domain placement and
//! [`gprs_telemetry::RetiredOrderHash`] combines them with wrapping
//! addition, so the merged digest is the wrapping sum of the per-domain
//! digests — bit-identical to an unsharded run of the same program, clean
//! or faulted.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use gprs_analyze::ShardPlan;
use gprs_core::ids::{BarrierId, ChannelId, ResourceId, SubThreadId, ThreadId};
use gprs_core::order::EdgeQueue;
use gprs_core::workload::{SimOp, Workload};

use crate::engine::{BarrierRec, FileRec, Inner, Shared, SharedRef};
use crate::program::Payload;
use crate::report::{RunError, RunReport, RunStats, ShardSummary};
use parking_lot::Mutex;

/// One cross-domain barrier's hub-side state. `arrived` counts published
/// arrivals of the forming generation (arrivals are published exactly once,
/// at retirement of the arrival-ending sub-thread, so a squashed arrival is
/// never counted); `released` is the number of completed generations, only
/// ever incremented — domains apply releases locally by comparing it with
/// their local barrier generation.
#[derive(Debug)]
pub(crate) struct HubBarrier {
    participants: u32,
    arrived: AtomicU32,
    released: AtomicU64,
}

/// One cross-domain channel's hub-side state: the SPSC edge queue plus its
/// producer/consumer domains (unique by execution coalescing).
pub(crate) struct EdgeState {
    pub queue: Arc<EdgeQueue<Payload>>,
    pub from: usize,
    pub to: usize,
}

impl std::fmt::Debug for EdgeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeState")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("forwarded", &self.queue.forwarded())
            .finish()
    }
}

/// The rendezvous fabric between domain engines. The hub owns no program
/// state and takes no engine lock: it only mutates atomics and issues
/// best-effort condvar wakes, so a domain can publish to it while holding
/// its own `Inner` lock without any cross-engine lock ordering.
#[derive(Debug)]
pub(crate) struct EdgeHub {
    domains: usize,
    pub edges: BTreeMap<ChannelId, EdgeState>,
    barriers: BTreeMap<BarrierId, HubBarrier>,
    /// Set when any domain poisons; every other domain finishes its pool
    /// without poisoning itself (the merged report surfaces the culprit's
    /// diagnostic).
    aborted: AtomicBool,
    /// Domains whose pools have finished (live threads drained).
    finished: AtomicUsize,
    /// Engines to wake on cross-domain progress, registered just before
    /// the pools spawn. `Weak` so a hub outliving its run cannot leak them.
    members: Mutex<Vec<Option<Weak<Shared>>>>,
}

impl EdgeHub {
    pub fn new(domains: usize) -> Self {
        EdgeHub {
            domains,
            edges: BTreeMap::new(),
            barriers: BTreeMap::new(),
            aborted: AtomicBool::new(false),
            finished: AtomicUsize::new(0),
            members: Mutex::new(vec![None; domains]),
        }
    }

    pub fn add_edge(&mut self, chan: ChannelId, from: usize, to: usize) {
        self.edges.insert(
            chan,
            EdgeState {
                queue: Arc::new(EdgeQueue::new()),
                from,
                to,
            },
        );
    }

    pub fn add_barrier(&mut self, b: BarrierId, participants: u32) {
        self.barriers.insert(
            b,
            HubBarrier {
                participants,
                arrived: AtomicU32::new(0),
                released: AtomicU64::new(0),
            },
        );
    }

    pub fn register_member(&self, domain: usize, member: Weak<Shared>) {
        self.members.lock()[domain] = Some(member);
    }

    /// Best-effort wake of one domain's scheduler queue. Liveness never
    /// rests on it alone: engines with cross-edges use bounded waits.
    pub fn wake_domain(&self, domain: usize) {
        let members = self.members.lock();
        if let Some(m) = members.get(domain).and_then(|m| m.as_ref()) {
            if let Some(shared) = m.upgrade() {
                shared.cv.notify_all();
            }
        }
    }

    pub fn wake_all(&self) {
        let members = self.members.lock();
        for m in members.iter().flatten() {
            if let Some(shared) = m.upgrade() {
                shared.cv.notify_all();
            }
        }
    }

    /// Publishes one retirement-committed barrier arrival. When the forming
    /// generation is complete the release counter bumps and every domain is
    /// woken to apply it locally. Returns `false` — after aborting the whole
    /// sharded run — if the barrier is unknown to the hub: a domain whose
    /// schedule state diverged must not silently drop an arrival its peers
    /// are counting on (they would deadlock waiting for the release).
    #[must_use]
    pub fn arrive(&self, b: BarrierId) -> bool {
        let Some(bar) = self.barriers.get(&b) else {
            self.abort();
            return false;
        };
        let arrived = bar.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        debug_assert!(arrived <= bar.participants, "over-arrival on {b}");
        if arrived == bar.participants {
            bar.arrived.store(0, Ordering::Release);
            bar.released.fetch_add(1, Ordering::Release);
            self.wake_all();
        }
        true
    }

    /// Completed generations of `b` (0 for non-hub barriers).
    pub fn released(&self, b: BarrierId) -> u64 {
        self.barriers
            .get(&b)
            .map_or(0, |bar| bar.released.load(Ordering::Acquire))
    }

    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        self.wake_all();
    }

    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Marks one domain's pool finished. Ordered after that domain's last
    /// retirement (both happen under its engine lock before the pool
    /// exits), so a peer observing the new count also observes every
    /// arrival/forward the finishing domain published.
    pub fn domain_finished(&self) {
        self.finished.fetch_add(1, Ordering::AcqRel);
        self.wake_all();
    }

    pub fn peers_done(&self, me: usize) -> bool {
        let _ = me;
        self.finished.load(Ordering::Acquire) >= self.domains.saturating_sub(1)
    }
}

/// Per-engine sharding context, attached to [`Inner`] when the engine runs
/// as one domain of a sharded execution.
pub(crate) struct ShardCtx {
    /// This engine's execution-domain index.
    pub domain: usize,
    /// Cross-domain channels this domain produces into: retired pushes are
    /// forwarded here (value = edge queue + consumer domain).
    pub out_edges: BTreeMap<ChannelId, (Arc<EdgeQueue<Payload>>, usize)>,
    /// Cross-domain channels this domain consumes from: drained into the
    /// local channel at the top of every seek.
    pub in_edges: BTreeMap<ChannelId, Arc<EdgeQueue<Payload>>>,
    /// Barriers whose participants span domains; releases come from the hub.
    pub edge_barriers: BTreeSet<BarrierId>,
    /// Deferred arrival publications: arrival-ending sub-thread -> barriers
    /// to publish when it retires (squash removes the entry, re-execution
    /// re-adds it — exactly-once publication).
    pub edge_arrivals: BTreeMap<SubThreadId, Vec<BarrierId>>,
    /// Every resource the plan maps into this domain; grants touching
    /// anything else poison with a named diagnostic instead of corrupting
    /// a peer domain's state.
    pub allowed: BTreeSet<ResourceId>,
    pub hub: Arc<EdgeHub>,
    /// Whether this domain already published its finish to the hub.
    pub finish_published: bool,
}

impl std::fmt::Debug for ShardCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCtx")
            .field("domain", &self.domain)
            .field("out_edges", &self.out_edges.keys().collect::<Vec<_>>())
            .field("in_edges", &self.in_edges.keys().collect::<Vec<_>>())
            .field("edge_barriers", &self.edge_barriers)
            .finish_non_exhaustive()
    }
}

impl ShardCtx {
    /// Whether this domain exchanges anything with a peer. Edge-connected
    /// domains use bounded scheduler waits (peer notifications are
    /// best-effort; the bound closes the lost-wakeup window without taking
    /// cross-engine locks). Isolated domains — the scaling showcase — keep
    /// indefinite waits and pay nothing.
    pub fn has_cross_edges(&self) -> bool {
        !self.out_edges.is_empty() || !self.in_edges.is_empty() || !self.edge_barriers.is_empty()
    }
}

/// A sharded runtime: one engine per execution domain over disjoint worker
/// pools, producing one merged [`RunReport`] whose determinism digests are
/// bit-identical to the unsharded run.
pub struct ShardedGprs {
    pub(crate) engines: Vec<SharedRef>,
    pub(crate) hub: Option<Arc<EdgeHub>>,
    pub(crate) analysis: Option<gprs_analyze::AnalysisReport>,
    /// Build-time validation failure, surfaced as `RunError::Poisoned` from
    /// [`ShardedGprs::run`] so callers handle stale plans and unsupported
    /// configurations through one error path.
    pub(crate) error: Option<String>,
}

impl std::fmt::Debug for ShardedGprs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGprs")
            .field("domains", &self.engines.len())
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl ShardedGprs {
    pub(crate) fn failed(msg: String) -> Self {
        ShardedGprs {
            engines: Vec::new(),
            hub: None,
            analysis: None,
            error: Some(msg),
        }
    }

    /// Number of execution domains (1 when the plan collapsed to a single
    /// domain and the run is effectively unsharded).
    pub fn domains(&self) -> usize {
        self.engines.len().max(1)
    }

    /// Runs every domain's worker pool concurrently and merges the
    /// per-domain reports.
    ///
    /// # Errors
    /// Returns [`RunError::Poisoned`] for build-time validation failures
    /// (stale shard plan, unsupported configuration) and for any domain
    /// poisoning at runtime (first poisoned domain in domain order wins;
    /// peers abort without poisoning themselves).
    pub fn run(mut self) -> Result<RunReport, RunError> {
        if let Some(msg) = self.error.take() {
            return Err(RunError::Poisoned(msg));
        }
        if let Some(hub) = &self.hub {
            for (d, shared) in self.engines.iter().enumerate() {
                hub.register_member(d, Arc::downgrade(shared));
            }
        }
        let mut joins = Vec::new();
        for (d, shared) in self.engines.iter().enumerate() {
            for ix in 0..shared.workers {
                let s = shared.clone();
                joins.push(
                    std::thread::Builder::new()
                        .name(format!("gprs-shard{d}-worker{ix}"))
                        .spawn(move || crate::engine::worker_loop(&s, ix))
                        .expect("spawn worker"),
                );
            }
        }
        for j in joins {
            j.join().expect("workers do not panic");
        }
        let mut reports = Vec::new();
        let mut summaries = Vec::new();
        for (d, shared) in self.engines.iter().enumerate() {
            let report = crate::collect_report(shared, None)?;
            summaries.push(summary_of(d, &report));
            reports.push(report);
        }
        Ok(merge_reports(reports, summaries, self.analysis))
    }
}

fn summary_of(domain: usize, r: &RunReport) -> ShardSummary {
    ShardSummary {
        domain,
        retired: r.stats.retired,
        retired_hash: r.telemetry.retired_hash,
        grants: r.stats.grants,
        wal_appends: r.telemetry.counter("wal_appends"),
        wal_undos: r.telemetry.counter("wal_undos"),
        wal_prunes: r.telemetry.counter("wal_prunes"),
    }
}

fn merge_stats(a: &mut RunStats, b: &RunStats) {
    a.subthreads += b.subthreads;
    a.retired += b.retired;
    a.grants += b.grants;
    a.polls += b.polls;
    a.exceptions += b.exceptions;
    a.exceptions_ignored += b.exceptions_ignored;
    a.squashed += b.squashed;
    a.recoveries += b.recoveries;
    a.locks_acquired += b.locks_acquired;
    a.spawns += b.spawns;
    a.barrier_releases += b.barrier_releases;
    a.serialized += b.serialized;
    a.allocs += b.allocs;
    a.rol_peak = a.rol_peak.max(b.rol_peak);
    a.races += b.races;
    a.hybrid_escalations += b.hybrid_escalations;
}

fn merge_telemetry(a: &mut gprs_telemetry::TelemetrySummary, b: gprs_telemetry::TelemetrySummary) {
    a.enabled |= b.enabled;
    // Per-thread retirement streams are placement-invariant and thread sets
    // are disjoint, so the wrapping sum reproduces the unsharded digest
    // exactly. The schedule digest is summed the same way for stability
    // across merges but is order-sensitive per domain, so — like
    // worker-count variations in a single engine — it is not comparable
    // across sharded and unsharded modes.
    a.schedule_hash = a.schedule_hash.wrapping_add(b.schedule_hash);
    a.schedule_grants += b.schedule_grants;
    a.retired_hash = a.retired_hash.wrapping_add(b.retired_hash);
    a.retired_count += b.retired_count;
    for (name, v) in b.counters {
        match a.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, acc)) => *acc += v,
            None => a.counters.push((name, v)),
        }
    }
    for (name, h) in b.histograms {
        match a.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, acc)) => {
                acc.count += h.count;
                acc.sum += h.sum;
                acc.max = acc.max.max(h.max);
                if acc.buckets.len() < h.buckets.len() {
                    acc.buckets.resize(h.buckets.len(), 0);
                }
                for (i, c) in h.buckets.into_iter().enumerate() {
                    acc.buckets[i] += c;
                }
            }
            None => a.histograms.push((name, h)),
        }
    }
    a.events.extend(b.events);
    a.dropped_events += b.dropped_events;
    a.raw_grant_trace.extend(b.raw_grant_trace);
}

fn merge_reports(
    mut reports: Vec<RunReport>,
    summaries: Vec<ShardSummary>,
    analysis: Option<gprs_analyze::AnalysisReport>,
) -> RunReport {
    let mut base = reports.remove(0);
    for r in reports {
        merge_stats(&mut base.stats, &r.stats);
        base.outputs.extend(r.outputs);
        for (id, (name, bytes)) in r.files {
            let entry = base.files.entry(id).or_insert_with(|| (name, Vec::new()));
            // Committed bytes concatenate in domain order: deterministic,
            // and exact whenever a file has a single writing domain (all
            // shard-clean workloads; the plan keeps writers colocated).
            entry.1.extend(bytes);
        }
        merge_telemetry(&mut base.telemetry, r.telemetry);
        if base.first_race.is_none() {
            base.first_race = r.first_race;
        }
    }
    base.analysis = analysis;
    base.shards = summaries;
    base
}

/// Where each model resource lives, per execution domain.
struct ResourceMap {
    /// Resource -> execution domains whose threads touch it.
    touched: BTreeMap<ResourceId, BTreeSet<usize>>,
    /// Channel -> (producer domains, consumer domains).
    chan_ends: BTreeMap<ChannelId, (BTreeSet<usize>, BTreeSet<usize>)>,
}

fn map_resources(model: &Workload, exec: &ShardPlan) -> Result<ResourceMap, String> {
    let mut spec_of = BTreeMap::new();
    for spec in &model.threads {
        spec_of.insert(spec.thread, spec);
    }
    let mut touched: BTreeMap<ResourceId, BTreeSet<usize>> = BTreeMap::new();
    let mut chan_ends: BTreeMap<ChannelId, (BTreeSet<usize>, BTreeSet<usize>)> = BTreeMap::new();
    for (dix, dom) in exec.domains.iter().enumerate() {
        for tid in &dom.threads {
            let spec = spec_of.get(tid).ok_or_else(|| {
                format!("stale shard plan: {tid} is in the plan but not in the model")
            })?;
            for seg in &spec.segments {
                match seg.op {
                    SimOp::Lock { lock, .. } => {
                        touched.entry(ResourceId::Lock(lock)).or_default().insert(dix);
                    }
                    SimOp::Atomic { atomic } => {
                        touched
                            .entry(ResourceId::Atomic(atomic))
                            .or_default()
                            .insert(dix);
                    }
                    SimOp::Push { chan } => {
                        touched
                            .entry(ResourceId::Channel(chan))
                            .or_default()
                            .insert(dix);
                        chan_ends.entry(chan).or_default().0.insert(dix);
                    }
                    SimOp::Pop { chan } => {
                        touched
                            .entry(ResourceId::Channel(chan))
                            .or_default()
                            .insert(dix);
                        chan_ends.entry(chan).or_default().1.insert(dix);
                    }
                    SimOp::Barrier { barrier } => {
                        touched
                            .entry(ResourceId::Barrier(barrier))
                            .or_default()
                            .insert(dix);
                    }
                    SimOp::End => {}
                }
                if let Some(l) = seg.nested {
                    touched.entry(ResourceId::Lock(l)).or_default().insert(dix);
                }
                if let Some((cell, _)) = seg.plain {
                    touched.entry(ResourceId::Atomic(cell)).or_default().insert(dix);
                }
            }
        }
    }
    Ok(ResourceMap { touched, chan_ends })
}

/// Validates the execution plan against the built engine and splits it into
/// per-domain engines wired through an [`EdgeHub`]. `base` must be the
/// fully configured single-engine state (cfg set, threads registered).
pub(crate) fn assemble(
    mut base: Inner,
    model: &Workload,
    exec: &ShardPlan,
    total_workers: usize,
    analysis: Option<gprs_analyze::AnalysisReport>,
) -> ShardedGprs {
    // The model must cover exactly the registered threads: the plan's
    // domains are only sound for the topology the analysis saw.
    let model_threads: BTreeSet<ThreadId> = model.threads.iter().map(|t| t.thread).collect();
    let live_threads: BTreeSet<ThreadId> = base.threads.keys().copied().collect();
    if model_threads != live_threads {
        return ShardedGprs::failed(format!(
            "stale shard plan for {:?}: the attached model describes threads {:?} \
             but the builder registered {:?}",
            model.name,
            model_threads.iter().map(|t| t.raw()).collect::<Vec<_>>(),
            live_threads.iter().map(|t| t.raw()).collect::<Vec<_>>(),
        ));
    }
    let plan_threads: BTreeSet<ThreadId> = exec
        .domains
        .iter()
        .flat_map(|d| d.threads.iter().copied())
        .collect();
    if plan_threads != live_threads {
        return ShardedGprs::failed(format!(
            "stale shard plan for {:?}: plan covers {} thread(s), run has {}",
            model.name,
            plan_threads.len(),
            live_threads.len(),
        ));
    }

    let resources = match map_resources(model, exec) {
        Ok(r) => r,
        Err(e) => return ShardedGprs::failed(e),
    };

    // Single-domain plans run the unmodified engine: identical grant order,
    // hashes and goldens to an unsharded run of the same program.
    if exec.domains.len() <= 1 {
        reseed_enforcer(&mut base);
        return ShardedGprs {
            engines: vec![Arc::new(Shared::new(base))],
            hub: None,
            analysis,
            error: None,
        };
    }

    // Cross-domain rendezvous: SPSC channels and whole-domain barriers.
    let mut hub = EdgeHub::new(exec.domains.len());
    let mut spec_of = BTreeMap::new();
    for spec in &model.threads {
        spec_of.insert(spec.thread, spec);
    }
    for (&chan, (pushers, poppers)) in &resources.chan_ends {
        let cross = resources
            .touched
            .get(&ResourceId::Channel(chan))
            .is_some_and(|doms| doms.len() > 1);
        if !cross {
            continue;
        }
        if pushers.len() > 1 || poppers.len() > 1 {
            return ShardedGprs::failed(format!(
                "shard plan for {:?} is not execution-coalesced: cross-domain \
                 channel {chan} has {} producer and {} consumer domain(s)",
                model.name,
                pushers.len(),
                poppers.len(),
            ));
        }
        let (Some(&from), Some(&to)) = (pushers.iter().next(), poppers.iter().next()) else {
            return ShardedGprs::failed(format!(
                "stale shard plan for {:?}: cross-domain channel {chan} is \
                 missing a producer or consumer",
                model.name,
            ));
        };
        hub.add_edge(chan, from, to);
    }
    for (res, doms) in &resources.touched {
        let ResourceId::Barrier(b) = *res else { continue };
        if doms.len() <= 1 {
            continue;
        }
        // Determinism of the release point requires the whole domain to
        // quiesce at the rendezvous: every thread of every participating
        // domain must itself wait on the barrier.
        for &dix in doms {
            for tid in &exec.domains[dix].threads {
                let participates = spec_of[tid].segments.iter().any(
                    |s| matches!(s.op, SimOp::Barrier { barrier } if barrier == b),
                );
                if !participates {
                    return ShardedGprs::failed(format!(
                        "sharded execution requires whole-domain barrier \
                         participation: {tid} of domain {dix} does not wait \
                         on cross-domain barrier {b}",
                    ));
                }
            }
        }
        let participants = base
            .barriers
            .get(&b)
            .map_or(0, |bar| bar.participants);
        hub.add_barrier(b, participants);
    }
    let hub = Arc::new(hub);

    let workers_per_domain = (total_workers / exec.domains.len()).max(1);
    let mut engines = Vec::with_capacity(exec.domains.len());
    for (dix, dom) in exec.domains.iter().enumerate() {
        let mut cfg = base.cfg.clone();
        cfg.workers = workers_per_domain;
        let mut inner = Inner::new(cfg);
        inner.next_thread = base.next_thread;
        for &tid in &dom.threads {
            let rec = base.threads.remove(&tid).expect("thread set validated");
            inner
                .enforcer
                .register_thread(tid, rec.group, rec.weight)
                .expect("unique thread ids");
            inner.threads.insert(tid, rec);
        }
        inner.live = inner.threads.len();
        // Atomics replicate by value: RMW atomics and written plain cells
        // are domain-private by the interference proof; read-only plain
        // cells are safely duplicated.
        inner.atomics = base.atomics.clone();
        // Channels start empty everywhere; producer domains stage pushes in
        // their local replica until retirement forwards them.
        for &chan in base.chans.keys() {
            inner.chans.entry(chan).or_default();
        }
        // Barriers keep their *global* participant counts; local releases
        // for cross-domain barriers come from the hub, never from a local
        // `waiting == participants` (which cannot fire across domains).
        for (&b, bar) in &base.barriers {
            inner.barriers.insert(
                b,
                BarrierRec {
                    participants: bar.participants,
                    waiting: Vec::new(),
                    arrival_sts: Vec::new(),
                    gen: 0,
                },
            );
        }
        // Files replicate by name; the merged report concatenates committed
        // bytes in domain order.
        for (&id, f) in &base.files {
            inner.files.insert(
                id,
                FileRec {
                    name: f.name.clone(),
                    committed: Vec::new(),
                    staged: Vec::new(),
                },
            );
        }
        // Chaos plans execute against domain 0's engine (grant keys are
        // domain-local and the committed leg plans target it).
        if dix == 0 {
            inner.chaos = base.chaos.take();
        }
        let allowed: BTreeSet<ResourceId> = resources
            .touched
            .iter()
            .filter(|(_, doms)| doms.contains(&dix))
            .map(|(&res, _)| res)
            .collect();
        let mut out_edges = BTreeMap::new();
        let mut in_edges = BTreeMap::new();
        for (&chan, edge) in &hub.edges {
            if edge.from == dix {
                out_edges.insert(chan, (edge.queue.clone(), edge.to));
            }
            if edge.to == dix {
                in_edges.insert(chan, edge.queue.clone());
            }
        }
        let edge_barriers = resources
            .touched
            .iter()
            .filter_map(|(res, doms)| match res {
                ResourceId::Barrier(b) if doms.len() > 1 && doms.contains(&dix) => Some(*b),
                _ => None,
            })
            .collect();
        inner.shard = Some(ShardCtx {
            domain: dix,
            out_edges,
            in_edges,
            edge_barriers,
            edge_arrivals: BTreeMap::new(),
            allowed,
            hub: hub.clone(),
            finish_published: false,
        });
        engines.push(Arc::new(Shared::new(inner)));
    }
    // Locks move wholesale to their owning domain (the interference proof
    // makes multi-domain locks impossible); unmodeled locks stay usable in
    // domain 0.
    for (lock, rec) in std::mem::take(&mut base.locks) {
        let owner = resources
            .touched
            .get(&ResourceId::Lock(lock))
            .and_then(|doms| doms.iter().next().copied())
            .unwrap_or(0);
        engines[owner].inner.lock().locks.insert(lock, rec);
    }
    ShardedGprs {
        engines,
        hub: Some(hub),
        analysis,
        error: None,
    }
}

/// Re-seeds an engine's enforcer with its final schedule, mirroring
/// [`crate::GprsBuilder::build`] for the single-domain shortcut.
fn reseed_enforcer(inner: &mut Inner) {
    let mut enforcer = gprs_core::order::OrderEnforcer::with_schedule(inner.cfg.schedule);
    for (tid, rec) in &inner.threads {
        enforcer
            .register_thread(*tid, rec.group, rec.weight)
            .expect("unique ids");
    }
    inner.enforcer = enforcer;
}
