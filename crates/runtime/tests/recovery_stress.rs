//! Stress tests of the REX recovery paths: atomics, spawn trees,
//! serialized sections, the order-faithful redo gate, and deterministic
//! injection points.

use gprs_runtime::ctx::StepCtx;
use gprs_runtime::prelude::*;
use std::time::Duration;

fn storm(ctl: Controller, period_us: u64) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut n = 0;
        while !ctl.is_finished() {
            if ctl.inject_on_busy(ExceptionKind::SoftFault) {
                n += 1;
            }
            std::thread::sleep(Duration::from_micros(period_us));
        }
        n
    })
}

/// Adds a deterministic function of its round into an atomic; the final
/// atomic value is exact iff every squashed fetch-add was undone and redone
/// exactly once.
struct AtomicAdder {
    atomic: AtomicHandle,
    rounds: u64,
    done: u64,
    burn: u64,
}

impl Checkpoint for AtomicAdder {
    type Snapshot = u64;
    fn checkpoint(&self) -> u64 {
        self.done
    }
    fn restore(&mut self, s: &u64) {
        self.done = *s;
    }
}

impl ThreadProgram for AtomicAdder {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        // Burn cycles so injections land mid-step.
        let mut x = self.done + 1;
        for i in 0..self.burn {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(x);
        if self.done == self.rounds {
            return Step::exit_unit();
        }
        self.done += 1;
        self.atomic.fetch_add(self.done * self.done)
    }
}

#[test]
fn atomic_sums_are_exact_under_storm() {
    let rounds = 40u64;
    let threads = 3u64;
    let expected: u64 = (1..=rounds).map(|r| r * r).sum::<u64>() * threads;
    for burn in [2_000u64, 20_000] {
        let mut b = GprsBuilder::new().workers(3);
        let total = b.atomic(0);
        let probe = b.atomic(0);
        for _ in 0..threads {
            b.thread(
                AtomicAdder { atomic: total, rounds, done: 0, burn },
                GroupId::new(0),
                1,
            );
        }
        // Auditor polls `total` via fetch_add(0) until it reaches the
        // expected value (it can only reach it exactly once all adds are
        // in, since every addend is positive).
        struct Auditor {
            total: AtomicHandle,
            probe: AtomicHandle,
            expected: u64,
            ready: bool,
        }
        impl Checkpoint for Auditor {
            type Snapshot = bool;
            fn checkpoint(&self) -> bool {
                self.ready
            }
            fn restore(&mut self, s: &bool) {
                self.ready = *s;
            }
        }
        impl ThreadProgram for Auditor {
            fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
                if self.ready {
                    let seen = ctx.atomic_prev();
                    if seen >= self.expected {
                        return Step::exit(seen);
                    }
                    let _ = self.probe;
                }
                self.ready = true;
                self.total.fetch_add(0)
            }
        }
        let auditor = b.thread(
            Auditor { total, probe, expected, ready: false },
            GroupId::new(1),
            1,
        );
        let gprs = b.build();
        let injector = storm(gprs.controller(), 200);
        let report = gprs.run().unwrap();
        injector.join().unwrap();
        assert_eq!(
            report.output::<u64>(auditor),
            expected,
            "burn {burn}, stats {:?}",
            report.stats
        );
    }
}

/// A recursive spawn tree: each node spawns two children down to a depth,
/// then sums their results via joins. Exceptions land on spawn/join
/// continuations, exercising the SpawnChild/ThreadExit undo paths.
struct TreeNode {
    depth: u32,
    stage: u8,
    left: Option<ThreadId>,
    right: Option<ThreadId>,
    left_sum: u64,
}

impl TreeNode {
    fn new(depth: u32) -> Self {
        TreeNode {
            depth,
            stage: 0,
            left: None,
            right: None,
            left_sum: 0,
        }
    }
}

impl Checkpoint for TreeNode {
    type Snapshot = (u8, Option<ThreadId>, Option<ThreadId>, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.stage, self.left, self.right, self.left_sum)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.stage = s.0;
        self.left = s.1;
        self.right = s.2;
        self.left_sum = s.3;
    }
}

impl ThreadProgram for TreeNode {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.depth == 0 {
            return Step::exit(1u64);
        }
        match self.stage {
            0 => {
                self.stage = 1;
                Step::spawn(TreeNode::new(self.depth - 1), GroupId::new(self.depth), 1)
            }
            1 => {
                self.left = Some(ctx.spawned());
                self.stage = 2;
                Step::spawn(TreeNode::new(self.depth - 1), GroupId::new(self.depth), 1)
            }
            2 => {
                self.right = Some(ctx.spawned());
                self.stage = 3;
                Step::join(self.left.expect("left spawned"))
            }
            3 => {
                self.left_sum = ctx.joined();
                self.stage = 4;
                Step::join(self.right.expect("right spawned"))
            }
            _ => {
                let right_sum: u64 = ctx.joined();
                Step::exit(self.left_sum + right_sum + 1)
            }
        }
    }
}

#[test]
fn spawn_tree_is_exact_under_storm() {
    for inject in [false, true] {
        let mut b = GprsBuilder::new().workers(3);
        let root = b.thread(TreeNode::new(4), GroupId::new(9), 1);
        let gprs = b.build();
        let injector = inject.then(|| storm(gprs.controller(), 300));
        let report = gprs.run().unwrap();
        if let Some(j) = injector {
            j.join().unwrap();
        }
        // A full binary tree of depth 4: 2^5 - 1 nodes.
        assert_eq!(report.output::<u64>(root), 31, "inject={inject}");
        assert!(report.stats.spawns >= 30, "30 spawns minimum (plus respawns)");
    }
}

/// Serialized sections under a storm: the exclusive step must still run
/// alone and recovery must handle an exception attributed to it.
#[test]
fn serialized_sections_survive_storm() {
    struct SerialHop {
        atomic: AtomicHandle,
        hops: u8,
        done: u8,
        serialized_next: bool,
    }
    impl Checkpoint for SerialHop {
        type Snapshot = (u8, bool);
        fn checkpoint(&self) -> Self::Snapshot {
            (self.done, self.serialized_next)
        }
        fn restore(&mut self, s: &Self::Snapshot) {
            self.done = s.0;
            self.serialized_next = s.1;
        }
    }
    impl ThreadProgram for SerialHop {
        fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
            if self.serialized_next {
                // This is the exclusive step.
                self.serialized_next = false;
                let mut x = 0u64;
                for i in 0..10_000u64 {
                    x = x.wrapping_add(i * i);
                }
                std::hint::black_box(x);
                return self.atomic.fetch_add(1_000);
            }
            if self.done == self.hops {
                return Step::exit_unit();
            }
            self.done += 1;
            if self.done.is_multiple_of(2) {
                self.serialized_next = true;
                Step::Serialized
            } else {
                self.atomic.fetch_add(1)
            }
        }
    }
    let mut b = GprsBuilder::new().workers(3);
    let a = b.atomic(0);
    for _ in 0..2 {
        b.thread(
            SerialHop { atomic: a, hops: 8, done: 0, serialized_next: false },
            GroupId::new(0),
            1,
        );
    }
    let gprs = b.build();
    let injector = storm(gprs.controller(), 250);
    let report = gprs.run().unwrap();
    injector.join().unwrap();
    // 2 threads × 4 even hops = 8 serialized sections, each at least once;
    // a storm exception attributed to a serialized sub-thread squashes and
    // re-executes it, so the counter may legitimately exceed 8.
    assert!(
        report.stats.serialized >= 8,
        "every serialized hop must run: {}",
        report.stats.serialized
    );
    assert!(report.stats.exceptions >= report.stats.recoveries);
}

/// Deterministic single-point injection: inject on every distinct context
/// id, including idle ones, and verify the run completes exactly.
#[test]
fn targeted_context_injection() {
    let mut b = GprsBuilder::new().workers(4);
    let total = b.atomic(0);
    for _ in 0..4 {
        b.thread(
            AtomicAdder { atomic: total, rounds: 20, done: 0, burn: 30_000 },
            GroupId::new(0),
            1,
        );
    }
    let gprs = b.build();
    let ctl = gprs.controller();
    let h = std::thread::spawn(move || {
        for ctx in 0..8u32 {
            // Contexts 4..8 do not exist: those injections are ignored.
            ctl.inject_on(ExceptionKind::ResourceRevocation, ctx % 8);
            std::thread::sleep(Duration::from_micros(300));
        }
    });
    let report = gprs.run().unwrap();
    h.join().unwrap();
    // Injections racing program completion may arrive after the last worker
    // exits and never be processed; those are simply lost.
    assert!(report.stats.exceptions <= 8);
    assert!(report.stats.exceptions_ignored <= report.stats.exceptions);
    assert_eq!(report.stats.subthreads, report.stats.retired + report.stats.squashed);
}

/// The WAL and history prune to empty once everything retires.
#[test]
fn recovery_state_is_pruned_at_exit() {
    let mut b = GprsBuilder::new().workers(2);
    let total = b.atomic(0);
    for _ in 0..3 {
        b.thread(
            AtomicAdder { atomic: total, rounds: 30, done: 0, burn: 5_000 },
            GroupId::new(0),
            1,
        );
    }
    let gprs = b.build();
    let injector = storm(gprs.controller(), 400);
    let report = gprs.run().unwrap();
    injector.join().unwrap();
    let s = report.stats;
    assert_eq!(s.subthreads, s.retired + s.squashed, "{s:?}");
    assert!(s.rol_peak > 0);
}
