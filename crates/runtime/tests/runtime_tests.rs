//! End-to-end tests of the GPRS runtime: deterministic execution,
//! synchronization semantics, and precise recovery from injected
//! exceptions.

use gprs_runtime::ctx::StepCtx;
use gprs_runtime::prelude::*;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Program zoo
// ---------------------------------------------------------------------------

/// Increments a shared mutex-protected counter `rounds` times, doing some
/// local computation per round.
struct LockCounter {
    mutex: MutexHandle<u64>,
    rounds: u32,
    done: u32,
    local: u64,
}

impl Checkpoint for LockCounter {
    type Snapshot = (u32, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.done, self.local)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.done = s.0;
        self.local = s.1;
    }
}

impl ThreadProgram for LockCounter {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.done > 0 {
            ctx.with_lock(&self.mutex, |n| *n += 1);
            ctx.unlock(&self.mutex);
            // Post-unlock computation stays in the same sub-thread
            // (unlock subsumption).
            self.local = self.local.wrapping_mul(31).wrapping_add(self.done as u64);
        }
        if self.done == self.rounds {
            return Step::exit(self.local);
        }
        self.done += 1;
        self.mutex.lock()
    }
}

/// Produces `count` sequential items into a channel.
struct Producer {
    chan: ChannelHandle<u64>,
    count: u64,
    next: u64,
}

impl Checkpoint for Producer {
    type Snapshot = u64;
    fn checkpoint(&self) -> u64 {
        self.next
    }
    fn restore(&mut self, s: &u64) {
        self.next = *s;
    }
}

impl ThreadProgram for Producer {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if self.next == self.count {
            return Step::exit_unit();
        }
        let v = self.next;
        self.next += 1;
        self.chan.push(v * v)
    }
}

/// Consumes `count` items, accumulating a checksum.
struct Consumer {
    chan: ChannelHandle<u64>,
    count: u64,
    taken: u64,
    sum: u64,
    started: bool,
}

impl Consumer {
    fn new(chan: ChannelHandle<u64>, count: u64) -> Self {
        Consumer {
            chan,
            count,
            taken: 0,
            sum: 0,
            started: false,
        }
    }
}

impl Checkpoint for Consumer {
    type Snapshot = (u64, u64, bool);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.taken, self.sum, self.started)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.taken = s.0;
        self.sum = s.1;
        self.started = s.2;
    }
}

impl ThreadProgram for Consumer {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        if self.started {
            let v: u64 = ctx.popped();
            self.taken += 1;
            self.sum = self.sum.wrapping_mul(1_000_003).wrapping_add(v);
        } else {
            self.started = true;
        }
        if self.taken == self.count {
            return Step::exit(self.sum);
        }
        self.chan.pop()
    }
}

/// Iterative barrier program: `iters` phases, each adding the phase number
/// into an atomic, synchronizing on a barrier between phases.
struct BarrierWorker {
    barrier: BarrierHandle,
    atomic: AtomicHandle,
    iters: u32,
    phase: u32,
    pending_add: bool,
}

impl Checkpoint for BarrierWorker {
    type Snapshot = (u32, bool);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.phase, self.pending_add)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.phase = s.0;
        self.pending_add = s.1;
    }
}

impl ThreadProgram for BarrierWorker {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
        if !self.pending_add {
            if self.phase == self.iters {
                return Step::exit_unit();
            }
            self.phase += 1;
            self.pending_add = true;
            return self.atomic.fetch_add(self.phase as u64);
        }
        self.pending_add = false;
        if self.phase == self.iters {
            return Step::exit_unit();
        }
        self.barrier.wait()
    }
}

/// Spawns a child summer, computes locally, joins it and exits with the
/// combined result.
struct ForkJoinParent {
    n: u64,
    stage: u8,
    child: Option<ThreadId>,
    local: u64,
}

impl Checkpoint for ForkJoinParent {
    type Snapshot = (u8, Option<ThreadId>, u64);
    fn checkpoint(&self) -> Self::Snapshot {
        (self.stage, self.child, self.local)
    }
    fn restore(&mut self, s: &Self::Snapshot) {
        self.stage = s.0;
        self.child = s.1;
        self.local = s.2;
    }
}

impl ThreadProgram for ForkJoinParent {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                let n = self.n;
                Step::spawn(
                    OneShot::new(move || (0..n).sum::<u64>()),
                    GroupId::new(1),
                    1,
                )
            }
            1 => {
                self.child = Some(ctx.spawned());
                self.local = self.n * 2;
                self.stage = 2;
                Step::join(self.child.expect("just set"))
            }
            _ => {
                let child_sum: u64 = ctx.joined();
                Step::exit(child_sum + self.local)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn pipeline_builder(workers: usize, producers: u64, items: u64, consumers: u64) -> (GprsBuilder, Vec<ThreadId>) {
    let mut b = GprsBuilder::new().workers(workers);
    let chan = b.channel::<u64>();
    let mut consumer_ids = Vec::new();
    for _ in 0..producers {
        b.thread(
            Producer {
                chan,
                count: items,
                next: 0,
            },
            GroupId::new(0),
            1,
        );
    }
    let per = items * producers / consumers;
    for _ in 0..consumers {
        consumer_ids.push(b.thread(Consumer::new(chan, per), GroupId::new(1), 1));
    }
    (b, consumer_ids)
}

/// Keeps injecting exceptions at the given real-time period until the run
/// finishes.
fn inject_while_running(controller: Controller, period: Duration) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut injected = 0;
        while !controller.is_finished() {
            if controller.inject_on_busy(ExceptionKind::SoftFault) {
                injected += 1;
            }
            std::thread::sleep(period);
        }
        injected
    })
}

// ---------------------------------------------------------------------------
// Functional tests (exception-free)
// ---------------------------------------------------------------------------

#[test]
fn one_shot_threads_produce_outputs() {
    let mut b = GprsBuilder::new().workers(3);
    let mut tids = Vec::new();
    for i in 0..6u64 {
        tids.push(b.thread(OneShot::new(move || i * 10), GroupId::new(0), 1));
    }
    let report = b.build().run().unwrap();
    for (i, t) in tids.into_iter().enumerate() {
        assert_eq!(report.output::<u64>(t), i as u64 * 10);
    }
    assert_eq!(report.stats.subthreads, 6);
    assert_eq!(report.stats.retired, 6);
}

#[test]
fn mutex_counter_is_exact() {
    let mut b = GprsBuilder::new().workers(4);
    let counter = b.mutex(0u64);
    for _ in 0..4 {
        b.thread(
            LockCounter {
                mutex: counter,
                rounds: 25,
                done: 0,
                local: 1,
            },
            GroupId::new(0),
            1,
        );
    }
    // Final reader: serialized section reads the counter after all retire.
    struct FinalReader {
        mutex: MutexHandle<u64>,
        stage: u8,
    }
    impl Checkpoint for FinalReader {
        type Snapshot = u8;
        fn checkpoint(&self) -> u8 {
            self.stage
        }
        fn restore(&mut self, s: &u8) {
            self.stage = *s;
        }
    }
    impl ThreadProgram for FinalReader {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            match self.stage {
                0 => {
                    self.stage = 1;
                    self.mutex.lock()
                }
                _ => {
                    let v = ctx.with_lock(&self.mutex, |n| *n);
                    if v == 100 {
                        Step::exit(v)
                    } else {
                        // Not everyone is done yet: release and retry.
                        ctx.unlock(&self.mutex);
                        self.stage = 0;
                        self.mutex.lock()
                    }
                }
            }
        }
    }
    let reader = b.thread(FinalReader { mutex: counter, stage: 0 }, GroupId::new(1), 1);
    let report = b.build().run().unwrap();
    assert_eq!(report.output::<u64>(reader), 100);
    assert!(report.stats.locks_acquired >= 101);
}

#[test]
fn pipeline_delivers_all_items_fifo() {
    let (b, consumers) = pipeline_builder(4, 1, 40, 1);
    let report = b.build().run().unwrap();
    // Single producer, single consumer: order is exactly 0..40 squared.
    let mut expect = 0u64;
    for v in (0..40u64).map(|v| v * v) {
        expect = expect.wrapping_mul(1_000_003).wrapping_add(v);
    }
    assert_eq!(report.output::<u64>(consumers[0]), expect);
}

#[test]
fn slow_producer_forces_empty_polls() {
    // The producer interleaves an atomic op between pushes, so on half of
    // the consumer's turns the FIFO is deterministically empty and the
    // consumer must pass the token (Figure 7's wasted turns).
    struct SlowProducer {
        chan: ChannelHandle<u64>,
        atomic: AtomicHandle,
        count: u64,
        next: u64,
        breathe: bool,
    }
    impl Checkpoint for SlowProducer {
        type Snapshot = (u64, bool);
        fn checkpoint(&self) -> Self::Snapshot {
            (self.next, self.breathe)
        }
        fn restore(&mut self, s: &Self::Snapshot) {
            self.next = s.0;
            self.breathe = s.1;
        }
    }
    impl ThreadProgram for SlowProducer {
        fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
            if self.next == self.count {
                return Step::exit_unit();
            }
            if self.breathe {
                self.breathe = false;
                return self.atomic.fetch_add(1);
            }
            self.breathe = true;
            let v = self.next;
            self.next += 1;
            self.chan.push(v)
        }
    }
    let mut b = GprsBuilder::new().workers(2);
    let chan = b.channel::<u64>();
    let a = b.atomic(0);
    b.thread(
        SlowProducer { chan, atomic: a, count: 12, next: 0, breathe: true },
        GroupId::new(0),
        1,
    );
    let c = b.thread(Consumer::new(chan, 12), GroupId::new(1), 1);
    let report = b.build().run().unwrap();
    let _ = report.output::<u64>(c);
    assert!(report.stats.polls > 0, "stats: {:?}", report.stats);
}

#[test]
fn multi_consumer_pipeline_conserves_items() {
    let (b, consumers) = pipeline_builder(4, 2, 30, 3);
    let report = b.build().run().unwrap();
    for c in consumers {
        // Each consumer got its 20 items (values are data-dependent on
        // interleaving of producers, but count completion proves
        // conservation).
        let _ = report.output::<u64>(c);
    }
}

#[test]
fn barrier_phases_accumulate() {
    let threads = 4u64;
    let iters = 5u32;
    let mut b = GprsBuilder::new().workers(4);
    let bar = b.barrier(threads as u32);
    let total = b.atomic(0);
    let mut tids = Vec::new();
    for _ in 0..threads {
        tids.push(b.thread(
            BarrierWorker {
                barrier: bar,
                atomic: total,
                iters,
                phase: 0,
                pending_add: false,
            },
            GroupId::new(0),
            1,
        ));
    }
    let report = b.build().run().unwrap();
    assert_eq!(report.stats.barrier_releases as u32, iters - 1);
    for t in tids {
        let _: () = report.output(t);
    }
}

#[test]
fn fork_join_combines_results() {
    let mut b = GprsBuilder::new().workers(3);
    let parent = b.thread(
        ForkJoinParent {
            n: 100,
            stage: 0,
            child: None,
            local: 0,
        },
        GroupId::new(0),
        1,
    );
    let report = b.build().run().unwrap();
    assert_eq!(report.output::<u64>(parent), (0..100u64).sum::<u64>() + 200);
    assert_eq!(report.stats.spawns, 1);
}

#[test]
fn file_output_commits_in_retirement_order() {
    struct Writer {
        file: FileHandle,
        rounds: u8,
        done: u8,
        tag: u8,
        atomic: AtomicHandle,
    }
    impl Checkpoint for Writer {
        type Snapshot = u8;
        fn checkpoint(&self) -> u8 {
            self.done
        }
        fn restore(&mut self, s: &u8) {
            self.done = *s;
        }
    }
    impl ThreadProgram for Writer {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            ctx.write_file(self.file, &[self.tag, self.done]);
            if self.done == self.rounds {
                return Step::exit_unit();
            }
            self.done += 1;
            self.atomic.fetch_add(1)
        }
    }
    let mut b = GprsBuilder::new().workers(2);
    let file = b.file("out.bin");
    let a = b.atomic(0);
    b.thread(
        Writer { file, rounds: 3, done: 0, tag: 7, atomic: a },
        GroupId::new(0),
        1,
    );
    let report = b.build().run().unwrap();
    assert_eq!(report.file_contents(0), &[7, 0, 7, 1, 7, 2, 7, 3]);
}

#[test]
fn allocator_round_trips() {
    struct AllocUser {
        stage: u8,
        atomic: AtomicHandle,
    }
    impl Checkpoint for AllocUser {
        type Snapshot = u8;
        fn checkpoint(&self) -> u8 {
            self.stage
        }
        fn restore(&mut self, s: &u8) {
            self.stage = *s;
        }
    }
    impl ThreadProgram for AllocUser {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            let block = ctx.alloc(16);
            ctx.with_block(block, |b| b[0] = 42);
            let v = ctx.read_block(block, |b| b[0]);
            assert_eq!(v, 42);
            ctx.free(block);
            if self.stage == 2 {
                return Step::exit_unit();
            }
            self.stage += 1;
            self.atomic.fetch_add(1)
        }
    }
    let mut b = GprsBuilder::new().workers(2);
    let a = b.atomic(0);
    b.thread(AllocUser { stage: 0, atomic: a }, GroupId::new(0), 1);
    let report = b.build().run().unwrap();
    assert_eq!(report.stats.allocs, 3);
}

#[test]
fn serialized_section_runs_exclusively() {
    struct SerialUser {
        stage: u8,
    }
    impl Checkpoint for SerialUser {
        type Snapshot = u8;
        fn checkpoint(&self) -> u8 {
            self.stage
        }
        fn restore(&mut self, s: &u8) {
            self.stage = *s;
        }
    }
    impl ThreadProgram for SerialUser {
        fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Step {
            match self.stage {
                0 => {
                    self.stage = 1;
                    Step::Serialized
                }
                _ => Step::exit(99u32),
            }
        }
    }
    let mut b = GprsBuilder::new().workers(3);
    let t = b.thread(SerialUser { stage: 0 }, GroupId::new(0), 1);
    for i in 0..3u64 {
        b.thread(OneShot::new(move || i), GroupId::new(1), 1);
    }
    let report = b.build().run().unwrap();
    assert_eq!(report.output::<u32>(t), 99);
    assert_eq!(report.stats.serialized, 1);
}

#[test]
fn panicking_step_poisons_run() {
    let mut b = GprsBuilder::new().workers(2);
    b.thread(
        OneShot::new(|| -> u32 { panic!("injected test panic") }),
        GroupId::new(0),
        1,
    );
    let err = b.build().run().unwrap_err();
    assert!(matches!(err, RunError::Poisoned(msg) if msg.contains("injected test panic")));
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

#[test]
fn grant_trace_is_identical_across_worker_counts() {
    let run = |workers| {
        let (b, consumers) = pipeline_builder(workers, 2, 24, 2);
        let report = b.trace_cap(1 << 16).build().run().unwrap();
        let outs: Vec<u64> = consumers
            .iter()
            .map(|&c| report.output::<u64>(c))
            .collect();
        (
            report.telemetry.schedule_hash,
            report.grant_trace(),
            outs,
            report.stats.polls,
        )
    };
    let (hash1, trace1, out1, polls1) = run(1);
    let (hash2, trace2, out2, polls2) = run(2);
    let (hash4, trace4, out4, polls4) = run(6);
    assert_eq!(hash1, hash2);
    assert_eq!(hash2, hash4);
    assert_eq!(trace1, trace2);
    assert_eq!(trace2, trace4);
    assert_eq!(out1, out2);
    assert_eq!(out2, out4);
    assert_eq!(polls1, polls2);
    assert_eq!(polls2, polls4);
}

#[test]
fn round_robin_schedule_is_also_deterministic() {
    let run = |workers| {
        let mut b = GprsBuilder::new()
            .workers(workers)
            .schedule(ScheduleKind::RoundRobin);
        let counter = b.mutex(0u64);
        let mut tids = Vec::new();
        for _ in 0..3 {
            tids.push(b.thread(
                LockCounter {
                    mutex: counter,
                    rounds: 10,
                    done: 0,
                    local: 1,
                },
                GroupId::new(0),
                1,
            ));
        }
        let report = b.build().run().unwrap();
        let outs: Vec<u64> = tids.iter().map(|&t| report.output::<u64>(t)).collect();
        (report.telemetry.schedule_hash, outs)
    };
    assert_eq!(run(1), run(4));
}

// ---------------------------------------------------------------------------
// Exception recovery
// ---------------------------------------------------------------------------

/// Reference output of the standard pipeline with no exceptions.
fn pipeline_reference() -> Vec<u64> {
    let (b, consumers) = pipeline_builder(2, 1, 60, 1);
    let report = b.build().run().unwrap();
    consumers
        .iter()
        .map(|&c| report.output::<u64>(c))
        .collect()
}

#[test]
fn recovery_preserves_pipeline_output() {
    let reference = pipeline_reference();
    for attempt in 0..3 {
        let (b, consumers) = pipeline_builder(2, 1, 60, 1);
        let gprs = b.build();
        let controller = gprs.controller();
        let injector = inject_while_running(controller, Duration::from_micros(300 + attempt * 200));
        let report = gprs.run().unwrap();
        let injected = injector.join().unwrap();
        let outs: Vec<u64> = consumers
            .iter()
            .map(|&c| report.output::<u64>(c))
            .collect();
        assert_eq!(outs, reference, "outputs diverged after {injected} injections");
        if report.stats.squashed > 0 {
            // Real recoveries happened and the output still matches.
            assert!(report.stats.recoveries > 0);
        }
    }
}

#[test]
fn recovery_preserves_lock_counter() {
    let run = |inject: bool| {
        let mut b = GprsBuilder::new().workers(3);
        let counter = b.mutex(0u64);
        let mut tids = Vec::new();
        for _ in 0..3 {
            tids.push(b.thread(
                LockCounter {
                    mutex: counter,
                    rounds: 30,
                    done: 0,
                    local: 1,
                },
                GroupId::new(0),
                1,
            ));
        }
        let gprs = b.build();
        let controller = gprs.controller();
        let injector = inject
            .then(|| inject_while_running(controller, Duration::from_micros(400)));
        let report = gprs.run().unwrap();
        if let Some(j) = injector {
            j.join().unwrap();
        }
        let outs: Vec<u64> = tids.iter().map(|&t| report.output::<u64>(t)).collect();
        (outs, report.stats)
    };
    let (clean, _) = run(false);
    let (faulty, stats) = run(true);
    assert_eq!(clean, faulty);
    assert!(stats.exceptions >= stats.recoveries);
}

#[test]
fn recovery_preserves_barrier_program() {
    let run = |inject: bool| {
        let mut b = GprsBuilder::new().workers(3);
        let bar = b.barrier(3);
        let a = b.atomic(0);
        let mut tids = Vec::new();
        for _ in 0..3 {
            tids.push(b.thread(
                BarrierWorker {
                    barrier: bar,
                    atomic: a,
                    iters: 8,
                    phase: 0,
                    pending_add: false,
                },
                GroupId::new(0),
                1,
            ));
        }
        let gprs = b.build();
        let controller = gprs.controller();
        let injector = inject
            .then(|| inject_while_running(controller, Duration::from_micros(500)));
        let report = gprs.run().unwrap();
        if let Some(j) = injector {
            j.join().unwrap();
        }
        (tids.len(), report.stats.barrier_releases >= 7, report.stats)
    };
    let (_, clean_ok, _) = run(false);
    let (_, faulty_ok, _stats) = run(true);
    assert!(clean_ok);
    assert!(faulty_ok);
}

#[test]
fn recovery_preserves_fork_join() {
    let run = |inject: bool| {
        let mut b = GprsBuilder::new().workers(2);
        let parent = b.thread(
            ForkJoinParent {
                n: 5_000,
                stage: 0,
                child: None,
                local: 0,
            },
            GroupId::new(0),
            1,
        );
        let gprs = b.build();
        let controller = gprs.controller();
        let injector = inject
            .then(|| inject_while_running(controller, Duration::from_micros(200)));
        let report = gprs.run().unwrap();
        if let Some(j) = injector {
            j.join().unwrap();
        }
        report.output::<u64>(parent)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn basic_recovery_squashes_at_least_as_much_as_selective() {
    let run = |policy: RecoveryPolicy| {
        let (mut b, _) = pipeline_builder(2, 1, 40, 1);
        b = b.recovery(policy);
        let gprs = b.build();
        let controller = gprs.controller();
        // Deterministic single injection after a small delay.
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            controller.inject_on_busy(ExceptionKind::VoltageEmergency)
        });
        let report = gprs.run().unwrap();
        let _ = h.join().unwrap();
        report.stats
    };
    let sel = run(RecoveryPolicy::Selective);
    let basic = run(RecoveryPolicy::Basic);
    // Both complete; with an injection landed, basic discards at least as
    // many sub-threads per recovery on this serial pipeline.
    if sel.recoveries > 0 && basic.recoveries > 0 {
        assert!(
            basic.squashed * sel.recoveries >= sel.squashed * basic.recoveries,
            "basic {basic:?} vs selective {sel:?}"
        );
    }
}

#[test]
fn exception_on_idle_context_is_ignored() {
    let mut b = GprsBuilder::new().workers(4);
    let t = b.thread(OneShot::new(|| 5u32), GroupId::new(0), 1);
    let gprs = b.build();
    let controller = gprs.controller();
    // Inject on a context that will be idle long before this fires.
    let h = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1));
        controller.inject_on(ExceptionKind::SoftFault, 3);
    });
    let report = gprs.run().unwrap();
    h.join().unwrap();
    assert_eq!(report.output::<u32>(t), 5);
    assert_eq!(report.stats.exceptions, report.stats.exceptions_ignored);
}

#[test]
fn file_output_survives_recovery_uncorrupted() {
    let run = |inject: bool| {
        struct Writer {
            file: FileHandle,
            rounds: u8,
            done: u8,
            atomic: AtomicHandle,
        }
        impl Checkpoint for Writer {
            type Snapshot = u8;
            fn checkpoint(&self) -> u8 {
                self.done
            }
            fn restore(&mut self, s: &u8) {
                self.done = *s;
            }
        }
        impl ThreadProgram for Writer {
            fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
                ctx.write_file(self.file, &[self.done]);
                // Burn some cycles so injections can land mid-step.
                let mut x = 1u64;
                for i in 0..20_000u64 {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                }
                std::hint::black_box(x);
                if self.done == self.rounds {
                    return Step::exit_unit();
                }
                self.done += 1;
                self.atomic.fetch_add(1)
            }
        }
        let mut b = GprsBuilder::new().workers(2);
        let file = b.file("log");
        let a = b.atomic(0);
        b.thread(Writer { file, rounds: 20, done: 0, atomic: a }, GroupId::new(0), 1);
        let gprs = b.build();
        let controller = gprs.controller();
        let injector = inject
            .then(|| inject_while_running(controller, Duration::from_micros(150)));
        let report = gprs.run().unwrap();
        if let Some(j) = injector {
            j.join().unwrap();
        }
        (report.file_contents(0).to_vec(), report.stats)
    };
    let (clean, _) = run(false);
    let (faulty, stats) = run(true);
    assert_eq!(clean, faulty, "stats: {stats:?}");
    assert_eq!(clean, (0..=20u8).collect::<Vec<_>>());
}
